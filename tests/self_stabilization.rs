//! Cross-crate integration: every protocol stabilizes from every family of
//! adversarial initial configurations, and the stabilized configuration has
//! the properties the paper claims (unique ranking, unique leader, silence
//! where applicable).

use population::runner::{derive_seed, rng_from_seed};
use population::silence::is_silent_configuration;
use population::{RankingProtocol, Simulation};
use ssle::adversary;
use ssle::cai_izumi_wada::CaiIzumiWada;
use ssle::optimal_silent::OptimalSilentSsr;
use ssle::sublinear::SublinearTimeSsr;

const SEEDS: u64 = 5;

#[test]
fn cai_izumi_wada_stabilizes_from_random_configurations() {
    let n = 16;
    for trial in 0..SEEDS {
        let protocol = CaiIzumiWada::new(n);
        let mut rng = rng_from_seed(derive_seed(100, trial));
        let initial = adversary::random_ciw_configuration(&protocol, &mut rng);
        let mut sim = Simulation::new(protocol, initial, derive_seed(101, trial));
        let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
        assert!(outcome.is_converged());
        assert!(is_silent_configuration(sim.protocol(), sim.states()));
        assert_eq!(sim.leader_count(), 1);
    }
}

#[test]
fn optimal_silent_stabilizes_from_random_configurations() {
    let n = 16;
    for trial in 0..SEEDS {
        let protocol = OptimalSilentSsr::new(n);
        let mut rng = rng_from_seed(derive_seed(200, trial));
        let initial = adversary::random_oss_configuration(&protocol, &mut rng);
        let mut sim = Simulation::new(protocol, initial, derive_seed(201, trial));
        let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
        assert!(outcome.is_converged(), "trial {trial}");
        assert!(is_silent_configuration(sim.protocol(), sim.states()));
        assert_eq!(sim.leader_count(), 1);
    }
}

#[test]
fn sublinear_stabilizes_from_random_configurations_at_every_depth() {
    let n = 12;
    for h in 0..=2 {
        for trial in 0..3 {
            let protocol = SublinearTimeSsr::new(n, h);
            let mut rng = rng_from_seed(derive_seed(300 + h as u64, trial));
            let initial = adversary::random_sublinear_configuration(&protocol, &mut rng);
            let mut sim = Simulation::new(protocol, initial, derive_seed(301 + h as u64, trial));
            let outcome = sim.run_until_stably_ranked(400_000_000, 10 * n as u64);
            assert!(outcome.is_converged(), "h = {h}, trial {trial}: {outcome:?}");
            assert_eq!(sim.leader_count(), 1);
        }
    }
}

#[test]
fn stabilized_ranking_is_a_permutation_of_1_to_n() {
    let n = 20;
    let protocol = OptimalSilentSsr::new(n);
    let mut rng = rng_from_seed(7);
    let initial = adversary::random_oss_configuration(&protocol, &mut rng);
    let mut sim = Simulation::new(protocol, initial, 8);
    assert!(sim.run_until_stably_ranked(u64::MAX, 10 * n as u64).is_converged());
    let mut ranks: Vec<usize> =
        sim.states().iter().map(|s| sim.protocol().rank_of(s).expect("settled")).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (1..=n).collect::<Vec<_>>());
}

#[test]
fn stabilized_configuration_survives_a_long_followup() {
    // Stability, not just convergence: keep running well past stabilization
    // and verify the ranking never breaks (for the silent protocols, silence
    // means it literally cannot).
    let n = 12;
    let protocol = OptimalSilentSsr::new(n);
    let mut rng = rng_from_seed(17);
    let initial = adversary::random_oss_configuration(&protocol, &mut rng);
    let mut sim = Simulation::new(protocol, initial, 18);
    assert!(sim.run_until_stably_ranked(u64::MAX, 0).is_converged());
    for _ in 0..50 {
        sim.run(10_000);
        assert!(sim.is_ranked(), "a silent stabilized configuration must never change");
    }
}

#[test]
fn sublinear_ranked_configuration_is_safe_under_continued_interaction() {
    // The non-silent protocol keeps exchanging sync values forever; the
    // safety property says the ranking nevertheless never breaks from a
    // unique-name configuration.
    let n = 10;
    let protocol = SublinearTimeSsr::new(n, 2);
    let initial = adversary::unique_names_configuration(&protocol);
    let mut sim = Simulation::new(protocol, initial, 19);
    assert!(sim.run_until_stably_ranked(200_000_000, 0).is_converged());
    for _ in 0..20 {
        sim.run(20_000);
        assert!(sim.is_ranked(), "no false collision may ever reset a clean population");
    }
}

#[test]
fn recovery_after_mid_run_corruption() {
    // Transient-fault story: corrupt a third of the agents of a stabilized
    // population and verify re-stabilization (the crux of self-stabilization
    // versus mere convergence).
    let n = 15;
    let protocol = OptimalSilentSsr::new(n);
    let initial = adversary::ranked_oss_configuration(&protocol);
    let sim = Simulation::new(protocol, initial, 21);
    assert!(sim.is_ranked());

    let mut corrupted = sim.states().to_vec();
    let mut rng = rng_from_seed(22);
    let sample = adversary::random_oss_configuration(&protocol, &mut rng);
    for k in 0..n / 3 {
        corrupted[k * 3] = sample[k * 3];
    }
    let mut sim = Simulation::new(protocol, corrupted, 23);
    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    assert!(outcome.is_converged());
    assert_eq!(sim.leader_count(), 1);
}
