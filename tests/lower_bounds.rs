//! Empirical checks of the paper's lower bounds at test scale.
//!
//! * **Observation 2.2**: from the silent-config-plus-duplicated-leader
//!   start, a silent protocol needs the duplicates to meet directly —
//!   `(n − 1)/2 ≥ n/3` expected parallel time.
//! * **Sec. 2 barrier argument**: Silent-n-state-SSR needs `Ω(n²)` time from
//!   the barrier configuration.
//! * **Ω(log n) for any SSLE protocol**: from all-leaders, a coupon-collector
//!   argument forces `Ω(log n)` time.

use analysis::Summary;
use population::runner::derive_seed;
use population::Simulation;
use ssle::adversary::observation_2_2_configuration;
use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};
use ssle::optimal_silent::OptimalSilentSsr;

#[test]
fn observation_2_2_duplicate_meeting_takes_linear_time() {
    let n = 32;
    let trials = 40;
    let protocol = OptimalSilentSsr::new(n);
    let initial = observation_2_2_configuration(&protocol);
    let mut times = Vec::new();
    for trial in 0..trials {
        let mut sim = Simulation::new(protocol, initial.clone(), derive_seed(5, trial));
        let (w0, w1) = (initial[0], initial[n - 1]);
        while sim.states()[0] == w0 && sim.states()[n - 1] == w1 {
            sim.step();
        }
        times.push(sim.parallel_time());
    }
    let mean = Summary::from_sample(&times).expect("non-empty").mean();
    // Theory: exactly (n − 1)/2 = 15.5 expected. Allow wide sampling slack
    // but demand the Ω(n) order (≫ the O(log n) epidemic scale ≈ 3.5).
    assert!(mean > n as f64 / 4.0, "mean meet time {mean} too small for Ω(n)");
    assert!(mean < n as f64 * 2.0, "mean meet time {mean} implausibly large");
}

#[test]
fn barrier_configuration_costs_order_n_squared() {
    let trials = 15;
    let mean_time = |n: usize| -> f64 {
        let protocol = CaiIzumiWada::new(n);
        let mut times = Vec::new();
        for trial in 0..trials {
            let mut sim = Simulation::new(
                protocol,
                protocol.worst_case_configuration(),
                derive_seed(9, trial),
            );
            let outcome = sim.run_until_stably_ranked(u64::MAX, 0);
            times.push(outcome.parallel_time(n));
        }
        Summary::from_sample(&times).expect("non-empty").mean()
    };
    let t8 = mean_time(8);
    let t32 = mean_time(32);
    // Quadratic growth predicts ×16; linear would predict ×4. Demand ≥ ×7.
    assert!(
        t32 / t8 > 7.0,
        "barrier time grew only {t8} → {t32} (×{:.1}), not quadratic",
        t32 / t8
    );
}

#[test]
fn all_leaders_respects_the_log_n_lower_bound() {
    // From the all-rank-0 ("all leaders") configuration, the paper's coupon
    // collector argument gives an Ω(log n) lower bound on the time to reach
    // a single leader, for *any* SSLE protocol. The pairwise-elimination
    // dynamics of Silent-n-state-SSR actually take Θ(n) here; the test
    // verifies the measured times sit above the log n floor at every size.
    let trials = 20;
    let mean_time = |n: usize| -> f64 {
        let protocol = CaiIzumiWada::new(n);
        let mut times = Vec::new();
        for trial in 0..trials {
            let mut sim =
                Simulation::new(protocol, vec![CiwState::new(0); n], derive_seed(11, trial));
            let outcome = sim
                .run_until(u64::MAX, |states| states.iter().filter(|s| s.rank == 0).count() == 1);
            times.push(outcome.parallel_time(n));
        }
        Summary::from_sample(&times).expect("non-empty").mean()
    };
    for n in [16usize, 64, 256] {
        let t = mean_time(n);
        let floor = (n as f64).ln() / 2.0;
        assert!(t > floor, "n = {n}: mean time {t} violates the Ω(log n) floor {floor}");
    }
}
