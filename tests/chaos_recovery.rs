//! Cross-crate integration tests for the chaos harness: fault injection on
//! the paper's real protocols.
//!
//! Pins the three load-bearing claims of the subsystem:
//!
//! 1. **Zero perturbation** (see `population::observer`): attaching an
//!    observer never changes the execution, with or without a fault plan —
//!    checked as a property over random seeds and population sizes.
//! 2. **Determinism**: a chaos run is a pure function of
//!    `(protocol, plan, seed)` — bit-identical states and fault logs on
//!    rerun, independent of the trial-runner worker count.
//! 3. **Recovery scaling**: Silent-n-state-SSR repairs ranks in place, so
//!    recovery from one corrupted agent is far cheaper than stabilizing from
//!    an adversarial configuration; the time-optimal reset-based protocols
//!    instead pay detection plus a full global reset at any fault size —
//!    the measured price of their Θ(n) worst-case optimality.

use population::{FaultAction, FaultPlan, FaultSize, Simulation, TelemetryObserver};
use proptest::prelude::*;
use ssle::adversary;
use ssle::{CaiIzumiWada, OptimalSilentSsr, SublinearTimeSsr};
use ssle_bench::{measure_recovery_ciw_trials, measure_recovery_oss_trials};

/// A plan that exercises every trigger family against a running protocol.
fn busy_plan(n: usize, plan_seed: u64) -> FaultPlan {
    FaultPlan::new(plan_seed)
        .at_interaction(3 * n as u64, FaultAction::DuplicateLeader)
        .after_convergence(n as u64, FaultAction::CorruptRandom(FaultSize::Exact(1)))
        .every_parallel_time(50.0, FaultAction::PartialReset(FaultSize::Sqrt))
}

proptest! {
    /// Observed and unobserved executions of Optimal-Silent-SSR are
    /// bit-identical, with and without a fault plan attached.
    #[test]
    fn observers_do_not_perturb_chaos_runs(seed in 0u64..1_000_000, n in 4usize..12) {
        let protocol = OptimalSilentSsr::new(n);
        let mut rng = population::runner::rng_from_seed(seed);
        let initial = adversary::random_oss_configuration(&protocol, &mut rng);
        let budget = 100 * (n as u64) * (n as u64);

        // Plain runs, no fault plan.
        let mut bare = Simulation::new(protocol, initial.clone(), seed);
        bare.run_until(budget, |_| false);
        let mut watched =
            Simulation::new(protocol, initial.clone(), seed).observe(TelemetryObserver::new());
        watched.run_until(budget, |_| false);
        prop_assert_eq!(bare.states(), watched.states());

        // Chaos runs under the same plan.
        let plan = busy_plan(n, seed ^ 0xc0ffee);
        let mut bare =
            Simulation::new(protocol, initial.clone(), seed).with_fault_plan(&plan);
        let bare_report = bare.run_chaos(budget);
        let mut watched = Simulation::new(protocol, initial, seed)
            .observe(TelemetryObserver::new())
            .with_fault_plan(&plan);
        let watched_report = watched.run_chaos(budget);
        prop_assert_eq!(bare.states(), watched.states());
        prop_assert_eq!(&bare_report, &watched_report);
        // The observer saw exactly the faults the report recorded.
        prop_assert_eq!(
            watched.observer().faults.get(),
            watched_report.faults.len() as u64
        );
    }
}

/// Runs one chaos execution and returns the final states plus the report.
fn chaos_run<P: population::Corruptor + Clone>(
    protocol: P,
    initial: Vec<P::State>,
    plan: &FaultPlan,
    seed: u64,
    budget: u64,
) -> (Vec<P::State>, population::ChaosReport) {
    let mut sim = Simulation::new(protocol, initial, seed).with_fault_plan(plan);
    let report = sim.run_chaos(budget);
    (sim.into_states(), report)
}

#[test]
fn chaos_runs_are_bit_identical_across_reruns() {
    let n = 32;
    let seed = 11;
    let plan = busy_plan(n, 99);
    let mut rng = population::runner::rng_from_seed(seed);

    let ciw = CaiIzumiWada::new(n);
    let ciw_init = adversary::random_ciw_configuration(&ciw, &mut rng);
    let a = chaos_run(ciw, ciw_init.clone(), &plan, seed, 1_000_000);
    let b = chaos_run(ciw, ciw_init, &plan, seed, 1_000_000);
    assert_eq!(a, b, "ciw chaos run must be deterministic");

    let oss = OptimalSilentSsr::new(n);
    let oss_init = adversary::random_oss_configuration(&oss, &mut rng);
    let a = chaos_run(oss, oss_init.clone(), &plan, seed, 1_000_000);
    let b = chaos_run(oss, oss_init, &plan, seed, 1_000_000);
    assert_eq!(a, b, "oss chaos run must be deterministic");
    assert!(a.1.first_ranked.is_some(), "oss must rank within the budget");
    assert!(!a.1.faults.is_empty(), "the busy plan must fire");

    let sub = SublinearTimeSsr::new(n, 1);
    let sub_init = adversary::random_sublinear_configuration(&sub, &mut rng);
    let a = chaos_run(sub.clone(), sub_init.clone(), &plan, seed, 1_000_000);
    let b = chaos_run(sub, sub_init, &plan, seed, 1_000_000);
    assert_eq!(a, b, "sublinear chaos run must be deterministic");
}

#[test]
fn recovery_batches_are_independent_of_the_worker_count() {
    let one = measure_recovery_oss_trials(24, FaultSize::Sqrt, 4, 7, 1);
    let four = measure_recovery_oss_trials(24, FaultSize::Sqrt, 4, 7, 4);
    let strip = |o: &population::ChaosTrialOutcome| (o.trial, o.n, o.report.clone());
    assert_eq!(
        one.iter().map(strip).collect::<Vec<_>>(),
        four.iter().map(strip).collect::<Vec<_>>(),
    );
}

/// Mean full-stabilization and recovery parallel times of a recovery batch.
fn stab_and_recovery(outcomes: &[population::ChaosTrialOutcome]) -> (f64, f64) {
    let mut stab = Vec::new();
    let mut recovery = Vec::new();
    for o in outcomes {
        assert!(o.report.fully_recovered(), "every trial must recover");
        stab.push(o.report.first_ranked_parallel_time().expect("must stabilize"));
        recovery.push(o.report.mean_recovery_parallel_time().expect("one fault fired"));
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    (mean(&stab), mean(&recovery))
}

/// Acceptance criterion of the chaos harness, pinned to what the harness
/// actually measures (see EXPERIMENTS.md): Silent-n-state-SSR repairs ranks
/// in place, so recovery from one corrupted agent is much cheaper than full
/// stabilization from an adversarial configuration, and the cost grows with
/// the fault size. The same run measures both times, so the comparison is
/// seed-for-seed fair.
#[test]
fn ciw_single_agent_recovery_is_much_cheaper_than_full_stabilization() {
    let n = 64;
    let (stab, rec_one) =
        stab_and_recovery(&measure_recovery_ciw_trials(n, FaultSize::Exact(1), 6, 3, 2));
    let (_, rec_all) = stab_and_recovery(&measure_recovery_ciw_trials(n, FaultSize::All, 6, 3, 2));
    assert!(
        rec_one < 0.75 * stab,
        "recovery from k=1 ({rec_one:.1}) must be well below full stabilization ({stab:.1})"
    );
    assert!(
        rec_one < rec_all,
        "recovery cost must grow with the fault size ({rec_one:.1} vs k=n {rec_all:.1})"
    );
}

/// The measured counterpart for the paper's time-optimal protocol: any
/// detected inconsistency triggers a **global** Propagate-Reset, so recovery
/// from even one corrupted agent costs detection plus a full re-stabilization
/// — there is no graceful degradation to trade for the Θ(n) optimality. Pin
/// recovery to the same order as full stabilization (and bounded by it).
#[test]
fn oss_recovery_costs_a_full_reset_at_any_fault_size() {
    let n = 128;
    let (stab, recovery) =
        stab_and_recovery(&measure_recovery_oss_trials(n, FaultSize::Exact(1), 5, 3, 2));
    assert!(
        recovery > 0.25 * stab && recovery < 4.0 * stab,
        "oss recovery ({recovery:.1}) must cost on the order of a full \
         stabilization ({stab:.1})"
    );
}
