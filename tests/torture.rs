//! Torture sweep: every self-stabilizing protocol, many independent
//! adversarial starting configurations, moderate populations — the blunt
//! instrument that catches interaction-ordering bugs the targeted tests
//! miss. Sizes are chosen so the whole file stays fast in debug builds.

use population::runner::{derive_seed, rng_from_seed};
use population::{RankingProtocol, Simulation};
use rand::Rng;
use ssle::adversary;
use ssle::cai_izumi_wada::CaiIzumiWada;
use ssle::composition::{ComposedState, LeaderAligned};
use ssle::optimal_silent::OptimalSilentSsr;
use ssle::sublinear::SublinearTimeSsr;

const SWEEP: u64 = 12;

#[test]
fn ciw_sweep() {
    for trial in 0..SWEEP {
        let n = 6 + (trial as usize % 7);
        let protocol = CaiIzumiWada::new(n);
        let mut rng = rng_from_seed(derive_seed(0xc1, trial));
        let initial = adversary::random_ciw_configuration(&protocol, &mut rng);
        let mut sim = Simulation::new(protocol, initial, derive_seed(0xc2, trial));
        assert!(
            sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged(),
            "trial {trial} (n = {n})"
        );
        assert_eq!(sim.leader_count(), 1);
    }
}

#[test]
fn oss_sweep() {
    for trial in 0..SWEEP {
        let n = 6 + (trial as usize % 7);
        let protocol = OptimalSilentSsr::new(n);
        let mut rng = rng_from_seed(derive_seed(0xa1, trial));
        let initial = adversary::random_oss_configuration(&protocol, &mut rng);
        let mut sim = Simulation::new(protocol, initial, derive_seed(0xa2, trial));
        assert!(
            sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged(),
            "trial {trial} (n = {n})"
        );
    }
}

#[test]
fn sublinear_sweep_over_depths() {
    for trial in 0..SWEEP {
        let n = 6 + (trial as usize % 4);
        let h = (trial % 3) as u32;
        let protocol = SublinearTimeSsr::new(n, h);
        let mut rng = rng_from_seed(derive_seed(0xb1, trial));
        let initial = adversary::random_sublinear_configuration(&protocol, &mut rng);
        let mut sim = Simulation::new(protocol, initial, derive_seed(0xb2, trial));
        assert!(
            sim.run_until_stably_ranked(600_000_000, 6 * n as u64).is_converged(),
            "trial {trial} (n = {n}, h = {h})"
        );
    }
}

#[test]
fn composed_sweep() {
    for trial in 0..SWEEP / 2 {
        let n = 8;
        let upstream = OptimalSilentSsr::new(n);
        let protocol = LeaderAligned::new(upstream);
        let mut rng = rng_from_seed(derive_seed(0xd1, trial));
        let initial: Vec<_> = adversary::random_oss_configuration(&upstream, &mut rng)
            .into_iter()
            .map(|s| ComposedState { upstream: s, parity: rng.gen() })
            .collect();
        let mut sim = Simulation::new(protocol, initial, derive_seed(0xd2, trial));
        let outcome = sim.run_until(u64::MAX, |states| {
            LeaderAligned::<OptimalSilentSsr>::is_aligned(states) && {
                let mut seen = vec![false; n];
                states.iter().all(|s| match upstream.rank_of(&s.upstream) {
                    Some(r) => !std::mem::replace(&mut seen[r - 1], true),
                    None => false,
                })
            }
        });
        assert!(outcome.is_converged(), "trial {trial}");
    }
}

#[test]
fn starvation_epoch_sweep_converges_every_protocol() {
    // The epoch adversary periodically starves a rotating agent set; it is
    // fairness-preserving, so every self-stabilizing protocol must still
    // converge — only slower. Sweep all three ranking protocols under
    // varying starved-set sizes and epoch lengths.
    use population::AnyScheduler;

    for trial in 0..SWEEP / 2 {
        let n = 6 + (trial as usize % 5);
        let k = 1 + (trial as usize % 3).min(n / 2);
        let epoch = 32 << (trial % 3);
        let spec = format!("starve:{k}:{epoch}");

        let protocol = CaiIzumiWada::new(n);
        let mut rng = rng_from_seed(derive_seed(0xe1, trial));
        let initial = adversary::random_ciw_configuration(&protocol, &mut rng);
        let policy = AnyScheduler::from_spec(&spec, n).unwrap();
        let mut sim = Simulation::with_policy(protocol, initial, policy, derive_seed(0xe2, trial));
        assert!(
            sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged(),
            "ciw trial {trial} (n = {n}, {spec})"
        );
        assert_eq!(sim.leader_count(), 1);

        let protocol = OptimalSilentSsr::new(n);
        let mut rng = rng_from_seed(derive_seed(0xe3, trial));
        let initial = adversary::random_oss_configuration(&protocol, &mut rng);
        let policy = AnyScheduler::from_spec(&spec, n).unwrap();
        let mut sim = Simulation::with_policy(protocol, initial, policy, derive_seed(0xe4, trial));
        assert!(
            sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged(),
            "oss trial {trial} (n = {n}, {spec})"
        );

        let h = (trial % 2) as u32;
        let protocol = SublinearTimeSsr::new(n, h);
        let mut rng = rng_from_seed(derive_seed(0xe5, trial));
        let initial = adversary::random_sublinear_configuration(&protocol, &mut rng);
        let policy = AnyScheduler::from_spec(&spec, n).unwrap();
        let mut sim = Simulation::with_policy(protocol, initial, policy, derive_seed(0xe6, trial));
        assert!(
            sim.run_until_stably_ranked(600_000_000, 6 * n as u64).is_converged(),
            "sublinear trial {trial} (n = {n}, h = {h}, {spec})"
        );
    }
}

#[test]
fn repeated_faults_never_wedge_the_population() {
    // Inject waves of corruption into a live run; after the last wave the
    // population must still stabilize (self-stabilization is memoryless).
    let n = 10;
    let protocol = OptimalSilentSsr::new(n);
    let mut fault_rng = rng_from_seed(0xfae);
    let initial = adversary::random_oss_configuration(&protocol, &mut fault_rng);
    let mut sim = Simulation::new(protocol, initial, 0xfad);
    for _wave in 0..8 {
        sim.run(5_000);
        let victims = fault_rng.gen_range(1..=n / 2);
        for _ in 0..victims {
            let v = fault_rng.gen_range(0..n);
            let state = adversary::random_oss_configuration(&protocol, &mut fault_rng)[0];
            sim.inject_fault(v, state);
        }
    }
    assert!(sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged());
    assert_eq!(sim.leader_count(), 1);
}
