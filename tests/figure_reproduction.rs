//! Integration reproduction of the paper's two figures at the full-protocol
//! level (the collision-module unit tests cover them at the data-structure
//! level).

use population::{RankingProtocol, Simulation};
use ssle::optimal_silent::{OptimalSilentSsr, OssState};
use ssle::sublinear::collision::check_path_consistency;
use ssle::sublinear::{SubState, SublinearTimeSsr};

/// Figure 1: leader-driven ranking with n = 12 builds the full binary tree
/// `1..=12` with children `2i`, `2i + 1`.
#[test]
fn figure1_rank_assignment_builds_the_binary_tree() {
    let n = 12;
    let protocol = OptimalSilentSsr::new(n);
    let mut initial = vec![OssState::unsettled(protocol.e_max()); n];
    initial[0] = OssState::settled(1, 0);
    let mut sim = Simulation::new(protocol, initial, 1);
    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    assert!(outcome.is_converged());

    // Every parent's children counter matches the number of existing child
    // ranks in the full binary tree with 12 nodes.
    for s in sim.states() {
        let OssState::Settled { rank, children } = s else {
            panic!("all agents settle in Figure 1, got {s:?}")
        };
        let expected = [2 * rank, 2 * rank + 1].iter().filter(|&&c| c <= n as u32).count() as u8;
        assert_eq!(
            *children, expected,
            "rank {rank} should have recruited exactly {expected} children"
        );
    }
    let mut ranks: Vec<usize> =
        sim.states().iter().map(|s| sim.protocol().rank_of(s).unwrap()).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (1..=n).collect::<Vec<_>>());
}

/// Figure 1's caption: the ranks left to fill are assigned by the settled
/// agents whose child slots are open, never by leaves.
#[test]
fn figure1_leaves_never_recruit() {
    let n = 12;
    let protocol = OptimalSilentSsr::new(n);
    // Snapshot from the figure: ranks 1..=8 settled, 4 unsettled agents.
    let mut states: Vec<OssState> = (1..=8u32)
        .map(|rank| {
            let assigned = [2 * rank, 2 * rank + 1].iter().filter(|&&c| c <= 8).count() as u8;
            OssState::settled(rank, assigned)
        })
        .collect();
    states.extend(std::iter::repeat_n(OssState::unsettled(protocol.e_max()), 4));
    let mut sim = Simulation::new(protocol, states, 2);
    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    assert!(outcome.is_converged());
    let mut ranks: Vec<usize> =
        sim.states().iter().map(|s| sim.protocol().rank_of(s).unwrap()).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (1..=n).collect::<Vec<_>>(), "ranks 9..=12 get filled");
}

fn fresh_agents(protocol: &SublinearTimeSsr, n: usize) -> Vec<SubState> {
    (0..n).map(|k| protocol.uniform_named_state(k as u64)).collect()
}

/// Figure 2, left execution: a-b, b-c, c-d; then the d-vs-a check passes.
#[test]
fn figure2_left_execution() {
    let protocol = SublinearTimeSsr::new(4, 3);
    let mut sim = Simulation::new(protocol.clone(), fresh_agents(&protocol, 4), 3);
    sim.force_pair(0, 1);
    sim.force_pair(1, 2);
    sim.force_pair(2, 3);

    let states = sim.states();
    let d = states[3].collecting().unwrap();
    let a = states[0].collecting().unwrap();
    // d holds the three-hop chain d → c → b → a.
    let paths = d.tree.paths_to(states[0].name);
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0].len(), 3);
    let names: Vec<_> = paths[0].iter().map(|e| e.node.name).collect();
    assert_eq!(names, vec![states[2].name, states[1].name, states[0].name]);
    // The paper: consistency established on the *first* checked edge (a's
    // record of b still carries the same sync d heard about).
    assert!(check_path_consistency(&a.tree, states[3].name, &paths[0]));
    assert_eq!(a.tree.children().len(), 1, "a only knows about b");
}

/// Figure 2, right execution: a-b, b-c, a-b, c-d; consistency is
/// established one edge deeper because a's record of b was refreshed.
#[test]
fn figure2_right_execution() {
    let protocol = SublinearTimeSsr::new(4, 3);
    let mut sim = Simulation::new(protocol.clone(), fresh_agents(&protocol, 4), 4);
    sim.force_pair(0, 1);
    sim.force_pair(1, 2);
    let sync_ab_old = sim.states()[0].collecting().unwrap().tree.children()[0].sync;
    sim.force_pair(0, 1);
    sim.force_pair(2, 3);

    let states = sim.states();
    let a = states[0].collecting().unwrap();
    let d = states[3].collecting().unwrap();

    // a's tree is now a → b → c (fresh sync on the first edge, and the b–c
    // sync heard through b on the second).
    let ab = &a.tree.children()[0];
    assert_eq!(ab.node.name, states[1].name);
    assert_ne!(ab.sync, sync_ab_old, "the second a-b interaction regenerated the sync");
    assert_eq!(ab.node.children.len(), 1);
    assert_eq!(ab.node.children[0].node.name, states[2].name);

    // d's chain still references the *old* a-b sync, yet the check passes
    // via the matching b-c edge — exactly the figure's right-hand caption.
    let paths = d.tree.paths_to(states[0].name);
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0][2].sync, sync_ab_old);
    assert!(check_path_consistency(&a.tree, states[3].name, &paths[0]));
}

/// After either execution, a full a-d interaction reports no collision and
/// the population (with unique names) proceeds to a stable ranking.
#[test]
fn figure2_population_stabilizes_afterwards() {
    let n = 4;
    let protocol = SublinearTimeSsr::new(n, 3);
    let mut sim = Simulation::new(protocol.clone(), fresh_agents(&protocol, n), 5);
    for (i, j) in [(0, 1), (1, 2), (0, 1), (2, 3), (0, 3)] {
        sim.force_pair(i, j);
    }
    assert!(
        sim.states().iter().all(|s| s.collecting().is_some()),
        "no reset may be triggered from a clean execution"
    );
    let outcome = sim.run_until_stably_ranked(10_000_000, 10 * n as u64);
    assert!(outcome.is_converged());
}
