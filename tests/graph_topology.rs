//! The paper assumes a **complete** interaction graph and calls it "the most
//! difficult case"; related work (\[25\], \[57\]) studies other topologies.
//! These tests demonstrate *why* the paper's protocols are stated for the
//! complete graph: on a ring, Silent-n-state-SSR can freeze in an incorrect
//! configuration, because the colliding agents may simply never meet.

use population::silence::is_silent_configuration;
use population::{InteractionGraph, Simulation};
use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};

/// On a ring, two agents with equal ranks placed on opposite sides are
/// never scheduled together; if every *adjacent* pair has distinct ranks,
/// the configuration is frozen forever despite being incorrect.
#[test]
fn cai_izumi_wada_freezes_incorrect_on_a_ring() {
    let n = 6;
    let protocol = CaiIzumiWada::new(n);
    // Ranks around the ring: 0, 1, 2, 0, 1, 2 — adjacent pairs all differ,
    // equal pairs are 3 hops apart.
    let initial: Vec<CiwState> = (0..n).map(|k| CiwState::new(k as u32 % 3)).collect();
    let mut sim = Simulation::with_graph(protocol, initial.clone(), InteractionGraph::Ring, 1);
    sim.run(2_000_000);
    assert_eq!(sim.states(), initial.as_slice(), "no adjacent pair can ever fire");
    assert!(!sim.is_ranked(), "the frozen configuration is incorrect");
}

/// The same configuration on the complete graph resolves: the duplicates do
/// meet, and the protocol walks to the full permutation.
#[test]
fn the_same_configuration_resolves_on_the_complete_graph() {
    let n = 6;
    let protocol = CaiIzumiWada::new(n);
    let initial: Vec<CiwState> = (0..n).map(|k| CiwState::new(k as u32 % 3)).collect();
    let mut sim = Simulation::new(protocol, initial, 1);
    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    assert!(outcome.is_converged());
}

/// A correct permutation is silent on any topology — restricting the graph
/// only removes transitions.
#[test]
fn permutations_are_silent_on_rings_too() {
    let n = 8;
    let protocol = CaiIzumiWada::new(n);
    let initial: Vec<CiwState> = (0..n as u32).map(CiwState::new).collect();
    assert!(is_silent_configuration(&protocol, &initial));
    let mut sim = Simulation::with_graph(protocol, initial, InteractionGraph::Ring, 2);
    sim.run(100_000);
    assert!(sim.is_ranked());
}

/// Sparse arbitrary graphs exhibit the same failure: with the two
/// duplicates in different components of frequent interaction, the ranking
/// stalls until the graph actually connects them.
#[test]
fn duplicates_must_share_an_edge_to_resolve_on_sparse_graphs() {
    let n = 4;
    let protocol = CaiIzumiWada::new(n);
    // A path 0 – 1 – 2 – 3; agents 0 and 3 share rank 0 but no edge.
    let graph = InteractionGraph::from_edges(n, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
    let initial = vec![CiwState::new(0), CiwState::new(1), CiwState::new(2), CiwState::new(0)];
    let mut sim = Simulation::with_graph(protocol, initial.clone(), graph, 3);
    sim.run(1_000_000);
    assert_eq!(sim.states(), initial.as_slice(), "all edges join distinct ranks — frozen");
    assert!(!sim.is_ranked());
}
