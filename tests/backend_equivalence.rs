//! Agent-array vs count-based backend: statistical equivalence.
//!
//! Both backends simulate the same lumped Markov chain — a configuration is
//! a multiset of states, and the uniform-random-pair scheduler's transition
//! probabilities depend only on that multiset. They consume randomness
//! differently (per-agent draws vs hypergeometric batch splits), so
//! individual trajectories differ even under the same seed; what must agree
//! is the *distribution* of convergence times. These tests compare empirical
//! quantiles of parallel stabilization time between the two backends at
//! small n, where both are fast enough to gather real samples.
//!
//! A 35% relative tolerance on p25/p50/p75 is loose enough that the tests
//! are not flaky at ~100 trials, but tight enough to catch a backend whose
//! dynamics are systematically wrong (e.g. a biased pair sampler or a batch
//! scheduler that double-counts collisions shifts the median far more).

use analysis::quantile;
use population::TrialOutcome;
use ssle_bench::{
    measure_ciw_counts_trials, measure_ciw_trials, measure_oss_counts_trials, measure_oss_trials,
    CiwStart, OssStart,
};

/// Parallel times of converged trials; panics if any trial exhausted its
/// budget (the budgets below are generous, so exhaustion means a bug).
fn converged_times(trials: &[TrialOutcome], label: &str) -> Vec<f64> {
    let times: Vec<f64> = trials
        .iter()
        .filter(|t| matches!(t.outcome, population::RunOutcome::Converged { .. }))
        .map(TrialOutcome::parallel_time)
        .collect();
    assert_eq!(
        times.len(),
        trials.len(),
        "{label}: {} of {} trials exhausted their budget",
        trials.len() - times.len(),
        trials.len()
    );
    times
}

/// Asserts p25/p50/p75 of the two samples agree within `tol` relative error.
fn assert_quantiles_agree(agents: &[f64], counts: &[f64], tol: f64, label: &str) {
    for q in [0.25, 0.50, 0.75] {
        let a = quantile(agents, q).expect("agent sample is non-empty and finite");
        let c = quantile(counts, q).expect("counts sample is non-empty and finite");
        let rel = (a - c).abs() / a.max(c);
        assert!(
            rel <= tol,
            "{label}: p{:.0} disagrees by {:.0}% (agents {a:.2}, counts {c:.2}, tol {:.0}%)",
            q * 100.0,
            rel * 100.0,
            tol * 100.0
        );
    }
}

#[test]
fn ciw_convergence_distributions_match_across_backends() {
    let (n, trials, seed) = (48, 96, 11);
    let agents = measure_ciw_trials(n, CiwStart::Random, trials, seed, 2);
    let counts = measure_ciw_counts_trials(n, CiwStart::Random, trials, seed, 2);
    assert_quantiles_agree(
        &converged_times(&agents, "ciw agents"),
        &converged_times(&counts, "ciw counts"),
        0.35,
        "ciw n=48",
    );
}

#[test]
fn oss_convergence_distributions_match_across_backends() {
    let (n, trials, seed) = (64, 96, 12);
    let agents = measure_oss_trials(n, OssStart::Random, trials, seed, 2);
    let counts = measure_oss_counts_trials(n, OssStart::Random, trials, seed, 2);
    assert_quantiles_agree(
        &converged_times(&agents, "oss agents"),
        &converged_times(&counts, "oss counts"),
        0.35,
        "oss n=64",
    );
}

#[test]
fn counts_backend_is_deterministic_in_the_seed() {
    let a = measure_oss_counts_trials(64, OssStart::Random, 8, 7, 1);
    let b = measure_oss_counts_trials(64, OssStart::Random, 8, 7, 3);
    let key = |ts: &[TrialOutcome]| -> Vec<(u64, usize, population::RunOutcome)> {
        ts.iter().map(|t| (t.trial, t.n, t.outcome)).collect()
    };
    assert_eq!(key(&a), key(&b), "outcomes must not depend on the thread count");
}

#[test]
fn worst_case_starts_agree_too() {
    // The Barrier start is CIW's adversarial configuration; equivalence must
    // hold from *every* start family, not just random ones.
    let (n, trials, seed) = (32, 64, 13);
    let agents = measure_ciw_trials(n, CiwStart::Barrier, trials, seed, 2);
    let counts = measure_ciw_counts_trials(n, CiwStart::Barrier, trials, seed, 2);
    assert_quantiles_agree(
        &converged_times(&agents, "ciw barrier agents"),
        &converged_times(&counts, "ciw barrier counts"),
        0.35,
        "ciw barrier n=32",
    );
}
