//! Experiment E9 — **Theorem 2.1**'s strong-nonuniformity demonstration.
//!
//! The paper's argument: a protocol claimed correct for population size `n₁`
//! cannot use the same transitions at a larger size `n₂`. Concretely for the
//! `n₁`-state protocol of Cai–Izumi–Wada: in a population of `n₂ > n₁`
//! agents there are more agents than states, so any "single-leader"
//! configuration contains duplicated ranks (pigeonhole); the duplicates keep
//! interacting and their ranks wrap modulo `n₁` until a *second* rank-0
//! leader appears. The allegedly stable configuration is not stable — which
//! is why every SSLE protocol must hardcode the exact population size.

use population::Simulation;
use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};

#[test]
fn protocol_for_smaller_population_breaks_in_larger_one() {
    let n1 = 6; // the size the transitions were designed for
    let n2 = 10; // the size they actually run at

    // A single-leader configuration of n2 agents over the n1-state space:
    // one agent at rank 0, the rest spread over ranks 1..n1 (duplicates are
    // unavoidable by pigeonhole).
    let small_rules = CaiIzumiWada::new(n1);
    let initial: Vec<CiwState> =
        (0..n2).map(|k| CiwState::new(if k == 0 { 0 } else { 1 + (k as u32 - 1) % 5 })).collect();
    assert_eq!(initial.iter().filter(|s| s.rank == 0).count(), 1, "single leader initially");

    let mut sim = Simulation::new(small_rules, initial, 42);
    let outcome =
        sim.run_until(50_000_000, |states| states.iter().filter(|s| s.rank == 0).count() >= 2);
    assert!(
        outcome.is_converged(),
        "the duplicated ranks must eventually wrap around and mint a second leader"
    );
}

#[test]
fn second_leader_keeps_reappearing_forever() {
    // Not a one-off glitch: under the wrong-size transitions the population
    // can never stabilize to a single leader — whenever it gets down to one
    // leader, the surplus agents mint another.
    let n1 = 4;
    let n2 = 7;
    let small_rules = CaiIzumiWada::new(n1);
    let initial: Vec<CiwState> = (0..n2).map(|k| CiwState::new(k as u32 % n1 as u32)).collect();
    let mut sim = Simulation::new(small_rules, initial, 43);
    let mut excursions = 0;
    for _ in 0..200_000 {
        sim.step();
        if sim.states().iter().filter(|s| s.rank == 0).count() >= 2 {
            excursions += 1;
        }
    }
    assert!(
        excursions > 100,
        "multi-leader configurations should recur constantly, saw {excursions}"
    );
}

#[test]
fn knowing_exact_n_prevents_the_embedding_failure() {
    // With the correct (strongly nonuniform) protocol for n2, the same
    // single-leader shape over the *full* state space is a permutation —
    // silent and stable.
    let n2 = 10;
    let big = CaiIzumiWada::new(n2);
    let stable: Vec<CiwState> = (0..n2 as u32).map(CiwState::new).collect();
    let mut sim = Simulation::new(big, stable, 7);
    sim.run(1_000_000);
    assert_eq!(
        sim.states().iter().filter(|s| s.rank == 0).count(),
        1,
        "the true-n protocol keeps exactly one leader forever"
    );
}
