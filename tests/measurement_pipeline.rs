//! End-to-end pipeline: adversary → simulation → runner → statistics, the
//! exact path the Table 1 harness takes, validated at test scale.

use analysis::{power_law_fit, quantile, Summary};
use ssle_bench::TimeSummary;
use ssle_bench::{measure_ciw, measure_oss, measure_sublinear, CiwStart, OssStart, SubStart};

#[test]
fn table1_shape_holds_at_test_scale() {
    // Who wins: quadratic baseline ≫ linear protocol at even modest n.
    let n = 32;
    let trials = 6;
    let ciw = TimeSummary::from_sample(&measure_ciw(n, CiwStart::Random, trials, 1)).unwrap();
    let oss = TimeSummary::from_sample(&measure_oss(n, OssStart::Random, trials, 1)).unwrap();
    assert!(
        ciw.mean > oss.mean,
        "Θ(n²) baseline ({}) should already lose to Θ(n) ({}) at n = {n}",
        ciw.mean,
        oss.mean
    );
}

#[test]
fn ciw_scaling_exponent_is_near_two() {
    let ns = [8usize, 16, 32, 64];
    let trials = 8;
    let means: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let s = measure_ciw(n, CiwStart::Random, trials, 2);
            Summary::from_sample(&s.parallel_times).unwrap().mean()
        })
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let fit = power_law_fit(&xs, &means).unwrap();
    assert!(
        (1.6..=2.6).contains(&fit.exponent),
        "expected quadratic-ish exponent, got {} (r² = {})",
        fit.exponent,
        fit.r_squared
    );
}

#[test]
fn oss_scaling_exponent_is_near_one() {
    let ns = [16usize, 32, 64, 128];
    let trials = 8;
    let means: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let s = measure_oss(n, OssStart::Random, trials, 3);
            Summary::from_sample(&s.parallel_times).unwrap().mean()
        })
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let fit = power_law_fit(&xs, &means).unwrap();
    assert!(
        (0.6..=1.4).contains(&fit.exponent),
        "expected linear-ish exponent, got {} (r² = {})",
        fit.exponent,
        fit.r_squared
    );
}

#[test]
fn sublinear_beats_linear_scaling() {
    let ns = [16usize, 32, 64];
    let trials = 5;
    let means: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let s = measure_sublinear(n, 2, SubStart::PlantedCollision, trials, 4);
            Summary::from_sample(&s.parallel_times).unwrap().mean()
        })
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let fit = power_law_fit(&xs, &means).unwrap();
    assert!(
        fit.exponent < 0.75,
        "H = 2 should scale clearly sublinearly, got exponent {}",
        fit.exponent
    );
}

#[test]
fn whp_column_dominates_the_mean() {
    let s = measure_oss(32, OssStart::Random, 12, 5);
    let mean = Summary::from_sample(&s.parallel_times).unwrap().mean();
    let p95 = quantile(&s.parallel_times, 0.95).unwrap();
    assert!(p95 >= mean, "a 95th percentile below the mean is impossible here");
}

#[test]
fn measurements_are_deterministic_given_the_seed() {
    let a = measure_oss(16, OssStart::AllRankOne, 4, 99);
    let b = measure_oss(16, OssStart::AllRankOne, 4, 99);
    assert_eq!(a, b);
    let c = measure_oss(16, OssStart::AllRankOne, 4, 100);
    assert_ne!(a, c, "different seeds should give different samples");
}
