//! Scheduler-robustness pins: omission-rate monotonicity on the one-way
//! epidemic, convergence of the ranking protocols under every non-uniform
//! scheduler family, and the stabilization-certificate checker telling a
//! correctly-sized protocol from the Theorem 2.1 wrong-size embedding.

use population::epidemic::{Infection, OneWayEpidemic};
use population::runner::{derive_seed, rng_from_seed};
use population::{
    certify_leader_closure, certify_ranking_closure, AnyScheduler, Reliability, Simulation,
};
use ssle::adversary;
use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};
use ssle::optimal_silent::OptimalSilentSsr;

/// Mean interactions to full infection of the one-way epidemic under an
/// omission rate `q`, averaged over `trials` seeded runs.
fn epidemic_mean_interactions(n: usize, q: f64, trials: u64) -> f64 {
    let total: u64 = (0..trials)
        .map(|trial| {
            let mut sim = Simulation::new(
                OneWayEpidemic,
                OneWayEpidemic::seeded_configuration(n),
                derive_seed(0x0e, 2 * trial + 1),
            )
            .with_reliability(Reliability::with_omission(q));
            let outcome =
                sim.run_until(50_000_000, |s| s.iter().all(|x| *x == Infection::Infected));
            assert!(outcome.is_converged(), "epidemic exhausted at q = {q}, trial {trial}");
            outcome.interactions()
        })
        .sum();
    total as f64 / trials as f64
}

/// A dropped interaction is a wasted scheduler draw, so the expected number
/// of interactions to full infection scales as `1 / (1 − q)` — in
/// particular it is **monotone** in the omission rate. Pin the monotone
/// ordering (with a small tolerance) over a chain of rates.
#[test]
fn omission_rate_monotonically_slows_the_one_way_epidemic() {
    let n = 96;
    let trials = 12;
    let means: Vec<f64> =
        [0.0, 0.3, 0.6].iter().map(|&q| epidemic_mean_interactions(n, q, trials)).collect();
    for w in means.windows(2) {
        assert!(w[1] > w[0] * 1.05, "omission must slow the epidemic: means {means:?}");
    }
    // The scaling law itself, loosely: q = 0.6 means 2.5x the draws of a
    // perfect channel; allow wide sampling slack but pin the magnitude.
    let ratio = means[2] / means[0];
    assert!((1.6..4.0).contains(&ratio), "expected ~2.5x slowdown, got {ratio:.2}x");
}

/// Every spec-addressable scheduler family is fairness-preserving, so both
/// hashable ranking protocols converge under each of them (the bound they
/// lose is time, not correctness).
#[test]
fn ranking_protocols_converge_under_every_scheduler_family() {
    for (trial, spec) in ["zipf:1.0", "starve:2:64", "clustered:2:0.2"].iter().enumerate() {
        let n = 8;
        let trial = trial as u64;

        let protocol = CaiIzumiWada::new(n);
        let mut rng = rng_from_seed(derive_seed(0x51, trial));
        let initial = adversary::random_ciw_configuration(&protocol, &mut rng);
        let policy = AnyScheduler::from_spec(spec, n).unwrap();
        let mut sim = Simulation::with_policy(protocol, initial, policy, derive_seed(0x52, trial));
        assert!(
            sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged(),
            "ciw under {spec}"
        );

        let protocol = OptimalSilentSsr::new(n);
        let mut rng = rng_from_seed(derive_seed(0x53, trial));
        let initial = adversary::random_oss_configuration(&protocol, &mut rng);
        let policy = AnyScheduler::from_spec(spec, n).unwrap();
        let mut sim = Simulation::with_policy(protocol, initial, policy, derive_seed(0x54, trial));
        assert!(
            sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged(),
            "oss under {spec}"
        );
    }
}

/// The per-edge-rate family (not spec-addressable — it needs explicit
/// rates) is fair whenever every edge rate is positive, however skewed;
/// a 100:1 rate spread still converges the ranking.
#[test]
fn heterogeneous_edge_rates_still_converge_the_ranking() {
    use population::graph::EdgeList;
    use population::scheduler::EdgeRates;

    let n = 6usize;
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j));
        }
    }
    let rates: Vec<f64> = (0..edges.len()).map(|e| if e % 2 == 0 { 100.0 } else { 1.0 }).collect();
    let policy = EdgeRates::new(EdgeList::from_edges(n, edges).unwrap(), &rates);

    let protocol = OptimalSilentSsr::new(n);
    let mut rng = rng_from_seed(derive_seed(0x61, 0));
    let initial = adversary::random_oss_configuration(&protocol, &mut rng);
    let mut sim = Simulation::with_policy(protocol, initial, policy, 11);
    assert!(sim.run_until_stably_ranked(u64::MAX, 6 * n as u64).is_converged());
}

/// The certificate checker refutes the Theorem 2.1 embedding at a size the
/// exhaustive model checker cannot reach: `n₁ = 6` transitions in an
/// `n₂ = 10` population pass through single-leader configurations but mint
/// a second leader inside the confirmation window.
#[test]
fn certificate_checker_fails_the_wrong_size_embedding() {
    let n1 = 6usize;
    let n2 = 10usize;
    let initial: Vec<CiwState> =
        (0..n2).map(|k| CiwState::new(if k == 0 { 0 } else { 1 + (k as u32 - 1) % 5 })).collect();
    let mut sim = Simulation::new(CaiIzumiWada::new(n1), initial, 42);
    let cert = certify_leader_closure(&mut sim, 200_000_000, 4.0, 50_000_000).unwrap();
    assert!(!cert.holds(), "wrong-size CIW must fail certification: {cert:?}");
    let v = cert.violation.expect("a violated certificate carries its witness");
    assert!(v.at > cert.converged_at, "the violation happens inside the window");
}

/// The same checker certifies correctly-sized protocols — including under
/// an adversarial scheduler, where the closed configuration is reached
/// later but is just as closed.
#[test]
fn certificate_checker_passes_correct_protocols() {
    let n = 8usize;
    let protocol = CaiIzumiWada::new(n);
    let mut rng = rng_from_seed(derive_seed(0x71, 0));
    let initial = adversary::random_ciw_configuration(&protocol, &mut rng);
    let mut sim = Simulation::new(protocol, initial, 7);
    let cert = certify_ranking_closure(&mut sim, u64::MAX, 6 * n as u64, 4.0, 100_000).unwrap();
    assert!(cert.holds(), "{cert:?}");

    let protocol = OptimalSilentSsr::new(n);
    let mut rng = rng_from_seed(derive_seed(0x72, 0));
    let initial = adversary::random_oss_configuration(&protocol, &mut rng);
    let policy = AnyScheduler::from_spec("zipf:1.0", n).unwrap();
    let mut sim = Simulation::with_policy(protocol, initial, policy, 7);
    let cert = certify_ranking_closure(&mut sim, u64::MAX, 6 * n as u64, 4.0, 100_000).unwrap();
    assert!(cert.holds(), "{cert:?}");
    assert_eq!(cert.scheduler, "zipf:1");
}
