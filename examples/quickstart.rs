//! Quickstart: elect a leader from a hostile initial configuration.
//!
//! Builds Optimal-Silent-SSR for a small population, lets an adversary pick
//! the initial configuration (uniformly random roles and fields), runs the
//! uniformly random scheduler until the population has stabilized to the
//! unique ranking `1..=n`, and prints what happened.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example quickstart
//! ```

use population::runner::rng_from_seed;
use population::{RankingProtocol, Simulation};
use ssle::adversary;
use ssle::optimal_silent::OptimalSilentSsr;

fn main() {
    let n = 32;
    let seed = 2021; // the venue year; any seed works
    let protocol = OptimalSilentSsr::new(n);

    // Self-stabilization means the adversary chooses where we start.
    let mut adversary_rng = rng_from_seed(seed);
    let initial = adversary::random_oss_configuration(&protocol, &mut adversary_rng);
    println!("population: {n} agents, protocol: Optimal-Silent-SSR");
    println!(
        "adversarial start: {} settled / {} unsettled / {} resetting",
        initial
            .iter()
            .filter(|s| matches!(s, ssle::optimal_silent::OssState::Settled { .. }))
            .count(),
        initial
            .iter()
            .filter(|s| matches!(s, ssle::optimal_silent::OssState::Unsettled { .. }))
            .count(),
        initial
            .iter()
            .filter(|s| matches!(s, ssle::optimal_silent::OssState::Resetting { .. }))
            .count(),
    );

    let mut sim = Simulation::new(protocol, initial, seed);
    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    println!(
        "stabilized after {:.1} parallel time units ({} interactions)",
        outcome.parallel_time(n),
        outcome.interactions()
    );

    // Every rank is now held by exactly one agent; rank 1 is the leader.
    let mut ranks: Vec<(usize, usize)> = sim
        .states()
        .iter()
        .enumerate()
        .map(|(agent, s)| (sim.protocol().rank_of(s).expect("all agents are settled"), agent))
        .collect();
    ranks.sort_unstable();
    assert_eq!(sim.leader_count(), 1);
    println!("leader: agent {}", ranks[0].1);
    println!(
        "ranking (rank → agent): {}",
        ranks.iter().map(|(r, a)| format!("{r}→{a}")).collect::<Vec<_>>().join(" ")
    );
}
