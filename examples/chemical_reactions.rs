//! Population protocols as chemical reaction networks.
//!
//! The paper's introduction lists "chemical reactions" among the dynamics
//! population protocols model (citing Gillespie's exact stochastic
//! simulation and CRN computation). This example runs the same protocol —
//! the leader fight `ℓ + ℓ → ℓ + f`, chemically a bimolecular annihilation
//! `X + X → X + Y` — under both clocks:
//!
//! * the paper's discrete uniform scheduler, measuring **parallel time**;
//! * exact continuous-time (Gillespie) semantics, measuring chemical time;
//!
//! and shows the two clocks agree (that agreement is precisely why parallel
//! time is defined as interactions / n).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example chemical_reactions
//! ```

use population::gillespie::GillespieSimulation;
use population::Simulation;
use ssle::initialized::{FightProtocol, FightState};

fn main() {
    let n = 1000;
    println!("reaction X + X → X + Y  (the leader fight), {n} molecules, all X initially\n");

    // Discrete scheduler.
    let mut discrete = Simulation::new(FightProtocol, vec![FightState::Leader; n], 11);
    let outcome = discrete
        .run_until(u64::MAX, |s| s.iter().filter(|x| **x == FightState::Leader).count() == 1);
    println!(
        "discrete scheduler : 1 copy of X left after {:>8.2} parallel time ({} interactions)",
        outcome.parallel_time(n),
        outcome.interactions()
    );

    // Continuous-time Gillespie semantics.
    let mut chemical = GillespieSimulation::new(FightProtocol, vec![FightState::Leader; n], 11);
    chemical.run_until(f64::MAX, |s| s.iter().filter(|x| **x == FightState::Leader).count() == 1);
    println!(
        "Gillespie semantics: 1 copy of X left after {:>8.2} chemical time ({} reactions)",
        chemical.time(),
        chemical.interactions()
    );

    let drift = (chemical.time() - chemical.parallel_time()).abs() / chemical.parallel_time();
    println!("\nclock agreement on this run: |chemical − parallel| / parallel = {:.3}", drift);
    println!("theory: X+X→X+Y from all-X takes Θ(n) time under either clock, and the");
    println!("two clocks coincide up to O(1/√interactions) fluctuations.");

    // Half-life style readout: the X count decays like n/(1 + t) under
    // mass-action kinetics; print a few checkpoints.
    println!("\nX(t) decay checkpoints (Gillespie):");
    let mut sim = GillespieSimulation::new(FightProtocol, vec![FightState::Leader; n], 13);
    for target in [n / 2, n / 4, n / 10, n / 100] {
        sim.run_until(f64::MAX, |s| {
            s.iter().filter(|x| **x == FightState::Leader).count() <= target
        });
        // Mass-action ODE: x' = −x²/n ⇒ t(x) = n/x − 1.
        let ode = n as f64 / target as f64 - 1.0;
        println!(
            "  X ≤ {target:>4} at t = {:>8.2}  (mass-action ODE predicts ≈ {ode:>7.2})",
            sim.time()
        );
    }
}
