//! Reproduces **Figure 1** of the paper: binary-tree rank assignment in
//! Optimal-Silent-SSR with n = 12 agents.
//!
//! Starting from an "awakening" configuration — one settled leader at rank 1
//! and eleven unsettled followers, exactly what a clean reset produces —
//! the leader-driven ranking recruits agents into the full binary tree with
//! 12 nodes: the children of rank `i` are `2i` and `2i + 1`. The example
//! tracks every recruitment and prints the resulting tree.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example figure1_rank_tree
//! ```

use population::{RankingProtocol, Simulation};
use ssle::optimal_silent::{OptimalSilentSsr, OssState};

fn main() {
    let n = 12; // the paper's figure uses 12 agents
    let protocol = OptimalSilentSsr::new(n);

    // The awakening configuration after a clean reset: the elected leader
    // settled at the root, everyone else unsettled.
    let mut initial = vec![OssState::unsettled(protocol.e_max()); n];
    initial[0] = OssState::settled(1, 0);

    let mut sim = Simulation::new(protocol, initial, 12);
    let mut assigned: Vec<(f64, usize)> = vec![(0.0, 1)]; // (time, rank)
    let mut settled = 1;
    while settled < n {
        sim.step();
        let now_settled: Vec<usize> =
            sim.states().iter().filter_map(|s| sim.protocol().rank_of(s)).collect();
        if now_settled.len() > settled {
            for &r in &now_settled {
                if !assigned.iter().any(|(_, seen)| *seen == r) {
                    assigned.push((sim.parallel_time(), r));
                }
            }
            settled = now_settled.len();
        }
    }

    println!("rank assignment order (n = {n}):");
    for (t, r) in &assigned {
        let parent = r / 2;
        if *r == 1 {
            println!("  t = {t:>6.1}  rank  1 (root — the elected leader)");
        } else {
            println!("  t = {t:>6.1}  rank {r:>2} recruited by its parent, rank {parent}");
        }
    }

    println!("\nthe full binary tree of ranks (as in Figure 1):");
    print_tree(1, n, "", true);

    assert!(sim.is_ranked());
    println!("\nall {n} ranks assigned exactly once — configuration is stable and silent.");
}

fn print_tree(rank: usize, n: usize, prefix: &str, last: bool) {
    let connector = if prefix.is_empty() {
        ""
    } else if last {
        "└── "
    } else {
        "├── "
    };
    println!("{prefix}{connector}{rank}");
    let children: Vec<usize> = [2 * rank, 2 * rank + 1].into_iter().filter(|&c| c <= n).collect();
    let child_prefix = if prefix.is_empty() {
        String::new()
    } else {
        format!("{prefix}{}", if last { "    " } else { "│   " })
    };
    for (i, &c) in children.iter().enumerate() {
        print_tree(c, n, &child_prefix, i + 1 == children.len());
    }
}
