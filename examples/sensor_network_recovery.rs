//! Domain scenario: a mobile sensor fleet that keeps recovering its
//! coordinator after memory corruption.
//!
//! The paper motivates self-stabilizing leader election with "mobile sensor
//! networks for mission critical and safety relevant applications where
//! rapid recovery from faults takes precedence over memory requirements".
//! This example plays that story out: a fleet of sensors runs
//! Optimal-Silent-SSR continuously while an environment process injects
//! transient faults — corrupting the memory of random subsets of sensors at
//! random times. After every burst the fleet re-converges to a single
//! coordinator without any external re-initialization.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example sensor_network_recovery
//! ```

use population::runner::rng_from_seed;
use population::{RankingProtocol, Simulation};
use rand::Rng;
use ssle::adversary;
use ssle::optimal_silent::OptimalSilentSsr;

fn main() {
    let n = 48;
    let bursts = 5;
    let seed = 7;
    let protocol = OptimalSilentSsr::new(n);

    let mut fault_rng = rng_from_seed(seed ^ 0xfa01);
    let initial = adversary::random_oss_configuration(&protocol, &mut fault_rng);
    let mut sim = Simulation::new(protocol, initial, seed);

    println!("fleet of {n} sensors; coordinator = agent with rank 1");
    println!("injecting {bursts} fault bursts, each corrupting a random subset of sensors\n");

    for burst in 1..=bursts {
        // Let the fleet stabilize.
        let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
        let recovery = outcome.parallel_time(n);
        let leader = sim
            .states()
            .iter()
            .position(|s| sim.protocol().is_leader(s))
            .expect("stabilized fleet has a coordinator");
        println!(
            "burst {burst:>2}: fleet stable at t = {recovery:>8.1}; coordinator = sensor {leader:>2}"
        );
        assert_eq!(sim.leader_count(), 1);

        // Transient fault: corrupt the memory of a random subset of sensors
        // in place — the fleet keeps running and recovers on its own.
        let victims = fault_rng.gen_range(1..=n / 2);
        for _ in 0..victims {
            let victim = fault_rng.gen_range(0..n);
            let corrupted = adversary::random_oss_configuration(sim.protocol(), &mut fault_rng)[0];
            sim.inject_fault(victim, corrupted);
        }
        println!("          ⚡ fault burst corrupts up to {victims} sensors");
    }

    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    println!(
        "\nfinal recovery in {:.1} parallel time; single coordinator restored: {}",
        outcome.parallel_time(n),
        sim.leader_count() == 1
    );
}
