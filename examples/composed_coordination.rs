//! Composition: a downstream task recovering on top of self-stabilizing
//! ranking.
//!
//! The paper argues (Sec. 1) that self-stabilizing protocols are easy to
//! compose: a downstream computation whose memory was scrambled while the
//! ranking below it was still converging simply re-converges afterwards.
//! Here the downstream task is *leader-parity alignment* — every sensor
//! must adopt the configuration bit of the coordinator (rank 1). We corrupt
//! both layers, watch the stack heal end-to-end, then flip the leader's bit
//! and watch the new value propagate without touching the ranking layer.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example composed_coordination
//! ```

use population::runner::rng_from_seed;
use population::{RankingProtocol, Simulation};
use rand::Rng;
use ssle::adversary;
use ssle::composition::{ComposedState, LeaderAligned};
use ssle::optimal_silent::OptimalSilentSsr;

fn alignment(states: &[ComposedState<ssle::optimal_silent::OssState>]) -> (usize, usize) {
    let ones = states.iter().filter(|s| s.parity).count();
    (ones, states.len() - ones)
}

fn main() {
    let n = 32;
    let upstream = OptimalSilentSsr::new(n);
    let protocol = LeaderAligned::new(upstream);

    // Adversarial joint state: random ranking states AND random parities.
    let mut rng = rng_from_seed(99);
    let initial: Vec<_> = adversary::random_oss_configuration(&upstream, &mut rng)
        .into_iter()
        .map(|s| ComposedState { upstream: s, parity: rng.gen() })
        .collect();
    let (ones, zeros) = alignment(&initial);
    println!("{n} sensors, both layers corrupted: parity split {ones}/{zeros}");

    let mut sim = Simulation::new(protocol, initial, 7);
    let outcome = sim.run_until(u64::MAX, |states| {
        LeaderAligned::<OptimalSilentSsr>::is_aligned(states)
            && states.iter().filter(|s| upstream.is_leader(&s.upstream)).count() == 1
    });
    let (ones, zeros) = alignment(sim.states());
    println!(
        "aligned behind the coordinator after {:.1} parallel time (parity split {ones}/{zeros})",
        outcome.parallel_time(n)
    );

    // Flip the coordinator's bit: a live reconfiguration.
    let leader_idx = sim
        .states()
        .iter()
        .position(|s| upstream.is_leader(&s.upstream))
        .expect("unique coordinator");
    let mut states = sim.states().to_vec();
    states[leader_idx].parity = !states[leader_idx].parity;
    println!("coordinator (sensor {leader_idx}) flips its configuration bit…");
    let protocol = *sim.protocol();
    let mut sim = Simulation::new(protocol, states, 8);
    let before: Vec<_> = sim.states().iter().map(|s| s.upstream).collect();
    let outcome = sim.run_until(u64::MAX, LeaderAligned::<OptimalSilentSsr>::is_aligned);
    let after: Vec<_> = sim.states().iter().map(|s| s.upstream).collect();
    println!(
        "fleet re-aligned to the new value in {:.1} parallel time; ranking layer untouched: {}",
        outcome.parallel_time(n),
        before == after
    );
}
