//! Reproduces **Figure 2** of the paper: how Detect-Name-Collision's history
//! trees grow along two scripted executions of four agents a, b, c, d.
//!
//! Left execution:  a-b, b-c, c-d.
//! Right execution: a-b, b-c, a-b (again), c-d.
//!
//! After each interaction the four trees are printed; afterwards the example
//! replays the figure's caption: when `a` and `d` finally interact, `d`
//! checks its path `d → c → b → a` against `a`'s tree and
//! Check-Path-Consistency returns `True` in both executions (on the first
//! edge on the left, on the second edge on the right).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example figure2_history_trees
//! ```

use population::Simulation;
use ssle::sublinear::collision::check_path_consistency;
use ssle::sublinear::history_tree::HistoryEdge;
use ssle::sublinear::{SubState, SublinearTimeSsr};

const A: usize = 0;
const B: usize = 1;
const C: usize = 2;
const D: usize = 3;
const LABEL: [&str; 4] = ["a", "b", "c", "d"];

fn label_of(states: &[SubState], name: ssle::Name) -> String {
    states
        .iter()
        .position(|s| s.name == name)
        .map(|i| LABEL[i].to_string())
        .unwrap_or_else(|| format!("{name}"))
}

fn print_tree(states: &[SubState], owner: usize) {
    let tree = &states[owner].collecting().expect("collecting").tree;
    println!("  {}'s tree:", LABEL[owner]);
    fn rec(states: &[SubState], edges: &[HistoryEdge], indent: usize) {
        for e in edges {
            println!(
                "  {}└─[sync {}]→ {}",
                "   ".repeat(indent),
                e.sync,
                label_of(states, e.node.name)
            );
            rec(states, &e.node.children, indent + 1);
        }
    }
    if tree.children().is_empty() {
        println!("      (root only)");
    } else {
        rec(states, tree.children(), 1);
    }
}

fn run_execution(title: &str, script: &[(usize, usize)]) {
    println!("=== {title} ===");
    let n = 4;
    // Depth 3 so a three-hop history (d → c → b → a) fits, as in the figure.
    let protocol = SublinearTimeSsr::new(n, 3);
    let initial: Vec<SubState> = (0..n).map(|k| protocol.uniform_named_state(k as u64)).collect();
    let mut sim = Simulation::new(protocol, initial, 2021);

    for &(i, j) in script {
        sim.force_pair(i, j);
        println!("\nafter {}-{} interact:", LABEL[i], LABEL[j]);
        for agent in 0..n {
            print_tree(sim.states(), agent);
        }
    }

    // The caption's check: d's path ending at a, verified against a's tree.
    let states = sim.states();
    let d_tree = &states[D].collecting().expect("collecting").tree;
    let a_tree = &states[A].collecting().expect("collecting").tree;
    let paths = d_tree.paths_to(states[A].name);
    assert_eq!(paths.len(), 1, "d holds exactly one history about a");
    let path = &paths[0];
    println!(
        "\nd checks its path d → {} against a's tree: Check-Path-Consistency = {}",
        path.iter().map(|e| label_of(states, e.node.name)).collect::<Vec<_>>().join(" → "),
        if check_path_consistency(a_tree, states[D].name, path) {
            "True ✓"
        } else {
            "Inconsistent ✗"
        }
    );
    assert!(check_path_consistency(a_tree, states[D].name, path));
    println!();
}

fn main() {
    run_execution("Figure 2, left: a-b, b-c, c-d", &[(A, B), (B, C), (C, D)]);
    run_execution("Figure 2, right: a-b, b-c, a-b, c-d", &[(A, B), (B, C), (A, B), (C, D)]);
    println!("both executions are consistent — no false collision is ever declared.");
}
