//! Loose stabilization vs. true self-stabilization, side by side.
//!
//! The paper's Theorem 2.1 says genuine self-stabilizing leader election
//! needs ≥ n states and exact knowledge of n. The loosely-stabilizing
//! alternative (Sec. 1 "Problem variants") needs only a heartbeat bound
//! T_max = Ω(log n): it recovers a unique leader fast and *holds* it for a
//! long — but finite — time. This example runs both from the same
//! leaderless disaster and reports recovery and holding behavior.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example loose_vs_self_stabilizing
//! ```

use population::{RankingProtocol, Simulation};
use ssle::loose::LooselyStabilizingLe;
use ssle::optimal_silent::{OptimalSilentSsr, OssState};

fn main() {
    let n = 48;
    println!("{n} agents, starting leaderless (the configuration that kills ℓ,ℓ → ℓ,f)\n");

    // True SSLE: Optimal-Silent-SSR from all-unsettled (nobody has a rank).
    let oss = OptimalSilentSsr::new(n);
    let mut sim = Simulation::new(oss, vec![OssState::unsettled(1); n], 21);
    let outcome = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64);
    println!(
        "Optimal-Silent-SSR     : unique leader after {:>7.1} time — held FOREVER",
        outcome.parallel_time(n)
    );
    println!(
        "                         (cost: {} states/agent, must know n exactly)",
        ssle::state_space::optimal_silent_states(&oss)
    );
    assert_eq!(sim.leader_count(), 1);
    let _ = sim.protocol().population_size();

    // Loose stabilization at a few heartbeat bounds.
    for mult in [2u32, 8] {
        let t_max = mult * (n as f64).log2().ceil() as u32;
        let p = LooselyStabilizingLe::new(t_max);
        let mut sim = Simulation::new(p, vec![p.follower_state(1); n], 22);
        let conv = sim.run_until(u64::MAX, |s| LooselyStabilizingLe::leader_count(s) == 1);
        // Measure how long the unique leader persists (capped).
        let start = sim.parallel_time();
        let cap = sim.interactions() + 200_000 * n as u64;
        let broke = sim.run_until(cap, |s| LooselyStabilizingLe::leader_count(s) > 1);
        let held = if broke.is_converged() {
            format!("{:.0} time", sim.parallel_time() - start)
        } else {
            format!("> {:.0} time (never broke)", 200_000.0)
        };
        println!(
            "Loose (T_max = {t_max:>3})   : unique leader after {:>7.1} time — held for {held}",
            conv.parallel_time(n)
        );
        println!(
            "                         (cost: {} states/agent, only needs n's order of magnitude)",
            2 * (t_max + 1)
        );
    }

    println!("\nthe trade: a handful of states and approximate n buy fast recovery with a");
    println!("finite hold; the paper's protocols pay Θ(n) states for an infinite hold.");
}
