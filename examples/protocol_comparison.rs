//! Compares all three self-stabilizing ranking protocols head to head —
//! a miniature, fast-running version of the paper's Table 1.
//!
//! All protocols start from the *same kind* of challenge: a configuration in
//! which every agent claims the same identity (rank 0 / rank 1 / one shared
//! name), the classic symmetric worst case. The non-self-stabilizing
//! baseline `ℓ, ℓ → ℓ, f` is shown first for contrast: it elects a leader
//! from its designated start, then dies from the all-follower configuration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ssle --example protocol_comparison
//! ```

use population::Simulation;
use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};
use ssle::initialized::{FightProtocol, FightState};
use ssle::optimal_silent::{OptimalSilentSsr, OssState};
use ssle::sublinear::SublinearTimeSsr;

fn main() {
    let n = 32;
    println!("population: {n} agents; adversarial start: everyone claims the same identity\n");

    // Baseline for contrast: initialized leader election.
    let mut sim = Simulation::new(FightProtocol, vec![FightState::Leader; n], 1);
    let outcome = sim.run_until(10_000_000, |states| {
        states.iter().filter(|s| **s == FightState::Leader).count() == 1
    });
    println!(
        "ℓ,ℓ → ℓ,f (initialized)      : {:>9.1} time from all-ℓ — but from all-f it never recovers:",
        outcome.parallel_time(n)
    );
    let mut dead = Simulation::new(FightProtocol, vec![FightState::Follower; n], 1);
    dead.run(100_000);
    let leaders = dead.states().iter().filter(|s| **s == FightState::Leader).count();
    println!("                               after 100k interactions from all-f: {leaders} leaders (stuck forever)\n");

    // Silent-n-state-SSR.
    let mut sim = Simulation::new(CaiIzumiWada::new(n), vec![CiwState::new(0); n], 2);
    let t_ciw = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64).parallel_time(n);
    println!("Silent-n-state-SSR  [Θ(n²)]  : {t_ciw:>9.1} parallel time");

    // Optimal-Silent-SSR.
    let oss = OptimalSilentSsr::new(n);
    let mut sim = Simulation::new(oss, vec![OssState::settled(1, 0); n], 3);
    let t_oss = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64).parallel_time(n);
    println!("Optimal-Silent-SSR  [Θ(n)]   : {t_oss:>9.1} parallel time");

    // Sublinear-Time-SSR at increasing depths.
    for h in [0u32, 1, 2] {
        let sub = SublinearTimeSsr::new(n, h);
        let initial = vec![sub.uniform_named_state(0); n];
        let mut sim = Simulation::new(sub, initial, 4);
        let t = sim.run_until_stably_ranked(u64::MAX, 10 * n as u64).parallel_time(n);
        println!("Sublinear-Time-SSR  [H = {h}]  : {t:>9.1} parallel time  (Θ(H·n^(1/{})))", h + 1);
    }

    println!("\nexpected ordering: Θ(n²) ≫ Θ(n) > sublinear.");
    println!("(an all-same-name start is caught by direct detection at any H, so the H");
    println!(" depths tie here; the benefit of H grows when the colliding agents are far");
    println!(" apart — run `cargo run -p ssle-bench --bin h_sweep` for that experiment.)");
}
