#![warn(missing_docs)]

//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest's API its test suites use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, range/tuple/[`Just`]/[`any`] strategies,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `prop::sample::Index`, [`prop_oneof!`], [`Strategy::prop_map`], and
//! [`Strategy::prop_flat_map`].
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a per-test deterministic RNG (seeded from the test name), and
//! failing cases are **not shrunk** — the failing input is reported by the
//! panic message alone. Case count defaults to [`DEFAULT_CASES`] and can be
//! raised with the `PROPTEST_CASES` environment variable.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each [`proptest!`] test runs by default.
pub const DEFAULT_CASES: u32 = 64;

/// Resolves the per-test case count (the `PROPTEST_CASES` environment
/// variable, or [`DEFAULT_CASES`]).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

/// Builds the deterministic RNG for one named test.
pub fn test_rng(test_name: &str) -> SmallRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

/// A generator of random test inputs.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value (e.g. a vector
    /// whose element bound depends on a generated size).
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut SmallRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (stand-in for proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy choosing uniformly among boxed alternatives (built by
/// [`prop_oneof!`]).
pub struct OneOf<T> {
    alternatives: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Creates a one-of strategy.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.alternatives.len());
        self.alternatives[idx].generate(rng)
    }
}

/// Sub-strategy namespaces, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::collections::BTreeSet;

        /// Strategy for `Vec`s with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
        ///
        /// As in real proptest, the target size may be missed when the
        /// element strategy cannot produce enough distinct values; generation
        /// stops after a bounded number of attempts.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
                let target = self.size.pick(rng);
                let mut set = BTreeSet::new();
                let mut attempts = 0usize;
                while set.len() < target && attempts < 10 * target + 100 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }

        impl SizeRange {
            pub(crate) fn pick(&self, rng: &mut SmallRng) -> usize {
                if self.min >= self.max {
                    self.min
                } else {
                    rng.gen_range(self.min..=self.max)
                }
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy producing `None` or `Some` of the inner strategy (3:1
        /// biased toward `Some`, as in real proptest's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
                if rng.gen_ratio(3, 4) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::Arbitrary;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// A raw index that can be projected into any non-empty collection.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Projects the raw value onto `0..len`.
            ///
            /// # Panics
            ///
            /// Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                Index(rng.gen())
            }
        }
    }
}

/// A range of collection sizes accepted by the collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        if rng.gen_ratio(3, 4) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

impl<T: Arbitrary + Ord> Arbitrary for BTreeSet<T> {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        let len = rng.gen_range(0..8usize);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test body runs [`cases`] times with fresh inputs from a
/// deterministic per-test RNG. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            let mut __proptest_rng = $crate::test_rng(stringify!($name));
            for __proptest_case in 0..$crate::cases() {
                let _ = __proptest_case;
                $(let $arg = ($strategy).generate(&mut __proptest_rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Strategy choosing uniformly among alternatives of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {{
        let alternatives: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($alternative)),+];
        $crate::OneOf::new(alternatives)
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = super::test_rng("strategies_generate_in_bounds");
        for _ in 0..200 {
            let x = (1u32..5).generate(&mut rng);
            assert!((1..5).contains(&x));
            let v = prop::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
            let s = prop::collection::btree_set(0u32..1000, 3..10).generate(&mut rng);
            assert!(s.len() >= 3);
        }
    }

    #[test]
    fn oneof_uses_every_alternative() {
        let strategy = prop_oneof![Just(1u8), Just(2u8)];
        let mut rng = super::test_rng("oneof_uses_every_alternative");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strategy = prop::option::of(0u8..10);
        let mut rng = super::test_rng("option_of_produces_both_variants");
        let values: Vec<_> = (0..100).map(|_| strategy.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }

    proptest! {
        #[test]
        fn macro_draws_each_argument(x in 0u64..10, pair in (0u8..3, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 3);
        }

        #[test]
        fn maps_apply(v in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 11);
        }

        #[test]
        fn flat_maps_build_dependent_strategies(
            (n, v) in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, n))),
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
