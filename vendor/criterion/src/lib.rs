#![warn(missing_docs)]

//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of Criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a small measurement window, and
//! the mean/min/max per-iteration times are printed. There are no saved
//! baselines, statistical tests, or HTML reports — the numbers are for
//! eyeballing relative costs, which is all the repository's benches need
//! offline.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times every batch individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Passed to each benchmark closure to drive the measurement loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { iters_done: 0, elapsed: Duration::ZERO, budget }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.elapsed >= self.budget && self.iters_done >= 10 {
                break;
            }
        }
    }

    /// Times repeated calls of `routine` on inputs built by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.elapsed >= self.budget && self.iters_done >= 10 {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn run_one(full_name: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass: one short bencher run that is discarded.
    let mut warmup = Bencher::new(budget / 10);
    f(&mut warmup);

    let mut bencher = Bencher::new(budget);
    f(&mut bencher);
    let mean = bencher.elapsed / bencher.iters_done.max(1) as u32;
    println!(
        "{full_name:<60} time: {:>12}/iter ({} iterations)",
        format_duration(mean),
        bencher.iters_done
    );
}

/// Entry point handed to the `criterion_group!` functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small default window: the benches exist to show relative costs.
        Criterion { budget: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Configures from command-line arguments (accepted for API
    /// compatibility; no options are supported offline).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), budget: self.budget, _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().to_string(), self.budget, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its measurement
    /// window by wall time, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.budget, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.budget, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export of [`std::hint::black_box`] for parity with criterion's API.
pub use std::hint::black_box;

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(1));
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, b.iters_done);
        assert!(count >= 10);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut b = Bencher::new(Duration::from_millis(1));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters_done >= 10);
    }

    #[test]
    fn ids_render_names() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn groups_run_benches() {
        let mut c = Criterion { budget: Duration::from_millis(1) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
