#![warn(missing_docs)]

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the *API subset* of `rand 0.8`
//! it actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! `gen_ratio`.
//!
//! The generator is xoshiro256++ (the same algorithm `rand 0.8` uses for
//! `SmallRng` on 64-bit platforms), seeded through SplitMix64 exactly as
//! `rand_core`'s `seed_from_u64` does, so stream quality matches. Exact
//! output values are **not** guaranteed to match upstream `rand`; the
//! repository's determinism contract is internal (a seed fully determines an
//! execution *under this crate*), which is what the experiments rely on.

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, diffusing it through
    /// SplitMix64 so that nearby seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    ///
    /// Mirrors `rand 0.8`'s `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The current internal xoshiro256++ state, for checkpointing a
        /// generator mid-stream (not part of upstream `rand`'s API, but
        /// needed by snapshot/restore: reseeding cannot reproduce an
        /// arbitrary stream position).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`SmallRng::state`]. The continuation is
        /// bit-identical to the original generator's.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is a fixed point of
        /// xoshiro256++ and unreachable from any seed.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "the all-zero xoshiro256++ state is a fixed point");
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
///
/// Stand-in for `rand`'s `Standard: Distribution<T>` bound.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Stand-in for `rand`'s `SampleRange<T>`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        start + unit * (end - start)
    }
}

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(numerator <= denominator, "gen_ratio numerator must not exceed the denominator");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: i64 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_ratio_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(!rng.gen_ratio(0, 5));
        assert!(rng.gen_ratio(5, 5));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _: u32 = rng.gen_range(5..5);
    }
}
