//! Analytic state-space accounting — the "states" column of Table 1.
//!
//! Space complexity in population protocols is measured by the number of
//! potential states per agent (footnote 1 of the paper: its base-2 logarithm
//! is the usual bit-space complexity). Following the paper's `role`
//! convention, a protocol's state count is the **sum** over roles of the
//! product of the field-domain sizes within each role.
//!
//! * Silent-n-state-SSR: exactly `n` states (optimal — Theorem 2.1).
//! * Optimal-Silent-SSR: `O(n)` states, computed exactly from its constants
//!   by [`optimal_silent_states`].
//! * Sublinear-Time-SSR: at least exponential; Theorem 5.1 gives
//!   `exp(O(n^H)·log n)`. Exact counts overflow any integer type, so
//!   [`sublinear_log2_states`] reports the base-2 logarithm (i.e. bits of
//!   memory per agent).

use crate::optimal_silent::OptimalSilentSsr;
use crate::sublinear::SublinearTimeSsr;

/// States of Silent-n-state-SSR: exactly `n` (`rank ∈ {0, …, n − 1}`).
pub fn cai_izumi_wada_states(n: usize) -> u64 {
    n as u64
}

/// Exact state count of a configured [`OptimalSilentSsr`]:
///
/// * `Settled`: `rank ∈ 1..=n` × `children ∈ {0, 1, 2}` → `3n`;
/// * `Unsettled`: `errorcount ∈ 0..=E_max` → `E_max + 1`;
/// * `Resetting`: `leader ∈ {L, F}` × (`resetcount ∈ 1..=R_max`, or
///   `resetcount = 0` with `delaytimer ∈ 0..=D_max`) →
///   `2·(R_max + D_max + 1)`.
///
/// With the default constants (`E_max, D_max = Θ(n)`, `R_max = Θ(log n)`)
/// this is `Θ(n)`, matching Table 1.
pub fn optimal_silent_states(protocol: &OptimalSilentSsr) -> u64 {
    let n = protocol_population(protocol) as u64;
    let settled = 3 * n;
    let unsettled = protocol.e_max() as u64 + 1;
    let reset = protocol.reset_params();
    let resetting = 2 * (reset.r_max as u64 + reset.d_max as u64 + 1);
    settled + unsettled + resetting
}

fn protocol_population(protocol: &OptimalSilentSsr) -> usize {
    use population::RankingProtocol as _;
    protocol.population_size()
}

/// Base-2 logarithm (bits per agent) of the state count of a configured
/// [`SublinearTimeSsr`], split by field:
///
/// * `name`: `≤ 3·log₂ n` bits;
/// * `roster`: a set of at most `n` names out of `≈ n³` → `≈ 3·n·log₂ n`
///   bits (the paper's "`roster` has `≈ n^{3n}` possible values", which is
///   what "fundamentally requires exponential states" in the conclusion);
/// * `tree`: up to `≈ n^H` nodes, each with a name (`3·log₂ n` bits), a sync
///   (`log₂ S_max` bits) and a timer (`log₂ (T_H + 1)` bits) — the paper's
///   `exp(O(n^H)·log n)` factor.
///
/// For `H = Θ(log n)` the tree term is `n^{Θ(log n)}·log n` bits —
/// quasipolynomial bits, i.e. the "quasi-exponential" state count of
/// Theorem 5.1.
pub fn sublinear_log2_states(protocol: &SublinearTimeSsr) -> f64 {
    use population::RankingProtocol as _;
    let n = protocol.population_size() as f64;
    let name_bits = protocol.name_bits() as f64;
    let roster_bits = n * name_bits;
    let cp = protocol.collision_params();
    let tree_nodes = n.powi(cp.h as i32);
    let per_node = name_bits + (cp.s_max as f64).log2() + ((cp.t_h + 1) as f64).log2();
    name_bits + roster_bits + tree_nodes * per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciw_is_exactly_n() {
        assert_eq!(cai_izumi_wada_states(17), 17);
    }

    #[test]
    fn optimal_silent_is_linear() {
        let s64 = optimal_silent_states(&OptimalSilentSsr::new(64)) as f64;
        let s512 = optimal_silent_states(&OptimalSilentSsr::new(512)) as f64;
        let ratio = s512 / s64;
        assert!(
            (6.0..10.0).contains(&ratio),
            "8× population should give ≈8× states, got ratio {ratio}"
        );
    }

    #[test]
    fn optimal_silent_exact_small_case() {
        use crate::reset::ResetParams;
        let p = OptimalSilentSsr::with_params(4, 10, ResetParams::new(3, 5).unwrap());
        // 3·4 + (10 + 1) + 2·(3 + 5 + 1) = 12 + 11 + 18 = 41.
        assert_eq!(optimal_silent_states(&p), 41);
    }

    #[test]
    fn sublinear_is_superpolynomial_even_at_h1() {
        let n = 64;
        let bits = sublinear_log2_states(&SublinearTimeSsr::new(n, 1));
        // Polynomial states would be O(log n) bits; this must be ≫.
        assert!(bits > 100.0 * (n as f64).log2(), "only {bits} bits");
    }

    #[test]
    fn sublinear_grows_with_depth() {
        let n = 64;
        let b1 = sublinear_log2_states(&SublinearTimeSsr::new(n, 1));
        let b2 = sublinear_log2_states(&SublinearTimeSsr::new(n, 2));
        let b3 = sublinear_log2_states(&SublinearTimeSsr::new(n, 3));
        assert!(b1 < b2 && b2 < b3);
    }
}
