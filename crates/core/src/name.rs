//! Agent names for Sublinear-Time-SSR.
//!
//! Each agent of Sublinear-Time-SSR carries a `name` field: a bitstring of
//! length at most `3·log₂ n` (Sec. 5.1 of the paper). The `n³` possible
//! full-length values make random names collision-free with high
//! probability; shorter strings (down to the empty string `ε`) occur while a
//! name is being regenerated bit-by-bit during the dormant phase of a reset,
//! or in adversarial initial configurations.
//!
//! Ranks are assigned by the lexicographic order of names within the roster,
//! so [`Name`] implements `Ord` with bitstring lexicographic order (a proper
//! prefix sorts before its extensions).

use std::fmt;

/// The largest supported name length in bits.
///
/// `3·log₂ n ≤ 60` covers populations up to `n = 2²⁰`, far beyond what the
/// simulation substrate is intended for.
pub const MAX_NAME_BITS: u8 = 60;

/// A bitstring of length `0..=60`, ordered lexicographically.
///
/// # Examples
///
/// ```
/// use ssle::name::Name;
///
/// let empty = Name::empty();
/// let zero = empty.with_appended(false);
/// let one = empty.with_appended(true);
/// assert!(empty < zero, "a prefix precedes its extensions");
/// assert!(zero < one);
/// assert_eq!(zero.len(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Name {
    /// Bits packed MSB-first in the low `len` bits: bit `k` of the string
    /// (0-indexed from the front) is bit `len − 1 − k` of `bits`.
    bits: u64,
    len: u8,
}

impl Name {
    /// The empty bitstring `ε`.
    pub fn empty() -> Self {
        Name { bits: 0, len: 0 }
    }

    /// Builds a name from the low `len` bits of `bits` (front of the string
    /// = most significant of those bits).
    ///
    /// # Panics
    ///
    /// Panics if `len > 60` or if `bits` has set bits above position `len`.
    pub fn from_bits(bits: u64, len: u8) -> Self {
        assert!(len <= MAX_NAME_BITS, "name length {len} exceeds {MAX_NAME_BITS} bits");
        assert!(bits >> len == 0, "bits {bits:#x} do not fit in {len} bits");
        Name { bits, len }
    }

    /// Length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the empty string `ε`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed bits (front of the string = most significant).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Returns this name with one bit appended at the back.
    ///
    /// # Panics
    ///
    /// Panics if the name is already [`MAX_NAME_BITS`] long.
    pub fn with_appended(&self, bit: bool) -> Self {
        assert!(self.len < MAX_NAME_BITS, "cannot extend a {MAX_NAME_BITS}-bit name");
        Name { bits: (self.bits << 1) | bit as u64, len: self.len + 1 }
    }

    /// The `k`-th bit of the string, front-first.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ len`.
    pub fn bit(&self, k: u8) -> bool {
        assert!(k < self.len, "bit index {k} out of range for length {}", self.len);
        (self.bits >> (self.len - 1 - k)) & 1 == 1
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::empty()
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Left-align both bitstrings in 64 bits; lexicographic order is then
        // numeric order of the padded values with prefix-first tie-breaking.
        let a = if self.len == 0 { 0 } else { self.bits << (64 - self.len) };
        let b = if other.len == 0 { 0 } else { other.bits << (64 - other.len) };
        a.cmp(&b).then(self.len.cmp(&other.len))
    }
}

impl fmt::Display for Name {
    /// Renders `ε` for the empty name, the raw bitstring otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for k in 0..self.len {
            write!(f, "{}", if self.bit(k) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_name_properties() {
        let e = Name::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(format!("{e}"), "ε");
        assert_eq!(Name::default(), e);
    }

    #[test]
    fn append_builds_msb_first() {
        let n = Name::empty().with_appended(true).with_appended(false).with_appended(true);
        assert_eq!(n.len(), 3);
        assert_eq!(n.bits(), 0b101);
        assert_eq!(format!("{n}"), "101");
        assert!(n.bit(0) && !n.bit(1) && n.bit(2));
    }

    #[test]
    fn from_bits_roundtrip() {
        let n = Name::from_bits(0b0110, 4);
        assert_eq!(format!("{n}"), "0110");
        assert_eq!(Name::from_bits(n.bits(), n.len()), n);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn from_bits_rejects_overflow() {
        Name::from_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds 60 bits")]
    fn from_bits_rejects_long_names() {
        Name::from_bits(0, 61);
    }

    #[test]
    fn lexicographic_order() {
        let e = Name::empty();
        let n0 = Name::from_bits(0b0, 1);
        let n00 = Name::from_bits(0b00, 2);
        let n01 = Name::from_bits(0b01, 2);
        let n1 = Name::from_bits(0b1, 1);
        let n10 = Name::from_bits(0b10, 2);
        let mut v = vec![n10, n1, n01, e, n00, n0];
        v.sort();
        assert_eq!(v, vec![e, n0, n00, n01, n1, n10]);
    }

    #[test]
    fn equal_length_order_is_numeric() {
        let a = Name::from_bits(3, 4); // 0011
        let b = Name::from_bits(12, 4); // 1100
        assert!(a < b);
    }

    #[test]
    fn distinct_lengths_are_distinct_names() {
        assert_ne!(Name::from_bits(0, 1), Name::from_bits(0, 2), "\"0\" ≠ \"00\"");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Name::from_bits(1, 1).bit(1);
    }
}
