//! Adversarial initial configurations.
//!
//! Self-stabilization quantifies over *every* initial configuration, so the
//! test suite and benchmark harness exercise the protocols from
//! configurations chosen by an adversary: uniformly random field values,
//! plus the specific worst cases used in the paper's arguments (the Ω(n²)
//! barrier, the Observation 2.2 duplicated leader, ghost names, planted
//! rank/name collisions, half-finished resets).
//!
//! All generators produce states inside the protocols' legal state spaces —
//! the adversary corrupts values, it cannot invent out-of-domain fields
//! (e.g. ranks above `n` or history trees that are not simply labelled).
//!
//! The same adversary also strikes **mid-run**: this module implements
//! [`population::fault::Corruptor`] for each SSR protocol, so the chaos
//! harness ([`population::fault`]) draws corrupted states from exactly the
//! code path the initial-configuration generators use — "arbitrary state"
//! means the same thing at time zero and at any later injection point.

use std::collections::BTreeSet;
use std::sync::Arc;

use population::fault::Corruptor;
use population::RankingProtocol;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::cai_izumi_wada::{CaiIzumiWada, CiwState};
use crate::name::Name;
use crate::optimal_silent::{Leader, OptimalSilentSsr, OssState};
use crate::reset::ResetCore;
use crate::sublinear::history_tree::HistoryTree;
use crate::sublinear::{Collecting, SubRole, SubState, SublinearTimeSsr};

/// Uniformly random configuration for Silent-n-state-SSR: every agent gets
/// an independent uniform rank (drawn via [`Corruptor::random_state`], the
/// same generator mid-run faults use).
pub fn random_ciw_configuration(protocol: &CaiIzumiWada, rng: &mut SmallRng) -> Vec<CiwState> {
    random_configuration(protocol, rng)
}

/// Uniformly random configuration of any [`Corruptor`]: `n` independent
/// draws of [`Corruptor::random_state`]. The protocol-specific
/// `random_*_configuration` helpers are thin wrappers over this.
pub fn random_configuration<P: Corruptor>(protocol: &P, rng: &mut SmallRng) -> Vec<P::State> {
    (0..protocol.population_size()).map(|_| protocol.random_state(rng)).collect()
}

impl Corruptor for CaiIzumiWada {
    fn random_state(&self, rng: &mut SmallRng) -> CiwState {
        CiwState::new(rng.gen_range(0..self.population_size() as u32))
    }
}

/// The correct (stable, silent) configuration of Silent-n-state-SSR.
pub fn ranked_ciw_configuration(protocol: &CaiIzumiWada) -> Vec<CiwState> {
    (0..protocol.population_size() as u32).map(CiwState::new).collect()
}

/// Uniformly random configuration for Optimal-Silent-SSR: independent
/// uniform role and field values per agent (drawn via
/// [`Corruptor::random_state`], the same generator mid-run faults use).
pub fn random_oss_configuration(protocol: &OptimalSilentSsr, rng: &mut SmallRng) -> Vec<OssState> {
    random_configuration(protocol, rng)
}

impl Corruptor for OptimalSilentSsr {
    fn random_state(&self, rng: &mut SmallRng) -> OssState {
        let n = self.population_size() as u32;
        match rng.gen_range(0..3) {
            0 => OssState::settled(rng.gen_range(1..=n), rng.gen_range(0..=2)),
            1 => OssState::unsettled(rng.gen_range(0..=self.e_max())),
            _ => self.mid_reset_state(rng),
        }
    }

    /// A half-finished Propagate-Reset state: random leader bit, random
    /// `resetcount`/`delaytimer` — the adversary of the paper's Sec. 3
    /// analysis.
    fn mid_reset_state(&self, rng: &mut SmallRng) -> OssState {
        let reset = self.reset_params();
        let leader = if rng.gen() { Leader::L } else { Leader::F };
        let resetcount = rng.gen_range(0..=reset.r_max);
        let delaytimer = rng.gen_range(0..=reset.d_max);
        OssState::resetting(leader, ResetCore { resetcount, delaytimer })
    }
}

/// The correct (stable, silent) configuration of Optimal-Silent-SSR: ranks
/// `1..=n`, every agent's `children` saturated to what the rank tree allows.
pub fn ranked_oss_configuration(protocol: &OptimalSilentSsr) -> Vec<OssState> {
    let n = protocol.population_size() as u32;
    (1..=n)
        .map(|rank| {
            let children = if 2 * rank < n {
                2
            } else if 2 * rank <= n {
                1
            } else {
                0
            };
            OssState::settled(rank, children)
        })
        .collect()
}

/// The Observation 2.2 configuration: the correct silent configuration with
/// one non-leader agent overwritten by an exact copy of the leader's state.
/// Any silent protocol needs `Ω(n)` expected time to resolve it, because the
/// two copies must meet directly.
pub fn observation_2_2_configuration(protocol: &OptimalSilentSsr) -> Vec<OssState> {
    let mut states = ranked_oss_configuration(protocol);
    let leader_state = states[0];
    let last = states.len() - 1;
    states[last] = leader_state;
    states
}

/// Uniformly random configuration for Sublinear-Time-SSR.
///
/// Each agent independently gets a random (possibly short) name and either a
/// `Collecting` role — random roster of `≤ n` names (its own name included
/// with probability 9/10, so corrupt-roster recovery is exercised too),
/// random rank output, random simply-labelled history tree — or a
/// `Resetting` role with random counters.
pub fn random_sublinear_configuration(
    protocol: &SublinearTimeSsr,
    rng: &mut SmallRng,
) -> Vec<SubState> {
    random_configuration(protocol, rng)
}

impl Corruptor for SublinearTimeSsr {
    fn random_state(&self, rng: &mut SmallRng) -> SubState {
        random_sublinear_state(self, rng)
    }

    /// A half-finished reset: random (possibly short) name with random
    /// Propagate-Reset counters.
    fn mid_reset_state(&self, rng: &mut SmallRng) -> SubState {
        let name = random_partial_name(self, rng);
        let reset = self.reset_params();
        let core = ResetCore {
            resetcount: rng.gen_range(0..=reset.r_max),
            delaytimer: rng.gen_range(0..=reset.d_max),
        };
        SubState { name, role: SubRole::Resetting(core) }
    }
}

fn random_partial_name(protocol: &SublinearTimeSsr, rng: &mut SmallRng) -> Name {
    // Mostly full-length names; occasionally shorter ones.
    let full = protocol.name_bits();
    let len = if rng.gen_ratio(4, 5) { full } else { rng.gen_range(0..=full) };
    let mut name = Name::empty();
    for _ in 0..len {
        name = name.with_appended(rng.gen());
    }
    name
}

fn random_sublinear_state(protocol: &SublinearTimeSsr, rng: &mut SmallRng) -> SubState {
    let n = protocol.population_size();
    let name = random_partial_name(protocol, rng);
    if rng.gen_ratio(3, 4) {
        let mut roster = BTreeSet::new();
        if rng.gen_ratio(9, 10) {
            roster.insert(name);
        }
        let extras = rng.gen_range(0..=n.saturating_sub(1));
        for _ in 0..extras {
            if roster.len() >= n {
                break;
            }
            roster.insert(random_partial_name(protocol, rng));
        }
        if roster.is_empty() {
            roster.insert(random_partial_name(protocol, rng));
        }
        let rank = if rng.gen() { Some(rng.gen_range(1..=n as u32)) } else { None };
        let tree = random_history_tree(protocol, name, rng);
        SubState {
            name,
            role: SubRole::Collecting(Collecting { rank, roster: Arc::new(roster), tree }),
        }
    } else {
        let reset = protocol.reset_params();
        let core = ResetCore {
            resetcount: rng.gen_range(0..=reset.r_max),
            delaytimer: rng.gen_range(0..=reset.d_max),
        };
        SubState { name, role: SubRole::Resetting(core) }
    }
}

fn random_history_tree(protocol: &SublinearTimeSsr, root: Name, rng: &mut SmallRng) -> HistoryTree {
    let cp = *protocol.collision_params();
    let mut tree = HistoryTree::singleton(root);
    if cp.h == 0 {
        return tree;
    }
    // Random grafts of random (recursively built) trees keep the result
    // simply labelled by construction, like the protocol itself does.
    let grafts = rng.gen_range(0..=2);
    for _ in 0..grafts {
        let child_root = random_partial_name(protocol, rng);
        if child_root == root {
            continue;
        }
        let sub_protocol_depth = cp.h - 1;
        let snapshot = random_tree_of_depth(protocol, child_root, sub_protocol_depth, rng);
        let sync = rng.gen_range(1..=cp.s_max);
        let timer = rng.gen_range(1..=cp.t_h);
        tree.graft(snapshot, sync, timer);
        tree.remove_named_subtrees(root);
    }
    debug_assert!(tree.is_simply_labelled());
    tree
}

fn random_tree_of_depth(
    protocol: &SublinearTimeSsr,
    root: Name,
    depth: u32,
    rng: &mut SmallRng,
) -> HistoryTree {
    let cp = *protocol.collision_params();
    let mut tree = HistoryTree::singleton(root);
    if depth == 0 {
        return tree;
    }
    for _ in 0..rng.gen_range(0..=2u32) {
        let child_root = random_partial_name(protocol, rng);
        if child_root == root {
            continue;
        }
        let snapshot = random_tree_of_depth(protocol, child_root, depth - 1, rng);
        tree.graft(snapshot, rng.gen_range(1..=cp.s_max), rng.gen_range(1..=cp.t_h));
        tree.remove_named_subtrees(root);
    }
    tree
}

/// Clean configuration with unique full-length names `0, 1, …, n − 1` —
/// the post-reset ideal from which Sublinear-Time-SSR stabilizes fastest.
pub fn unique_names_configuration(protocol: &SublinearTimeSsr) -> Vec<SubState> {
    (0..protocol.population_size()).map(|k| protocol.uniform_named_state(k as u64)).collect()
}

/// Configuration with one planted duplicate: agents carry unique names
/// except that the last agent copies the first agent's name — the collision
/// Detect-Name-Collision must find.
pub fn planted_collision_configuration(protocol: &SublinearTimeSsr) -> Vec<SubState> {
    let mut states = unique_names_configuration(protocol);
    let n = states.len();
    states[n - 1] = protocol.uniform_named_state(0);
    states
}

/// Configuration with a ghost name: every agent's roster additionally
/// contains a name that belongs to nobody.
pub fn ghost_name_configuration(protocol: &SublinearTimeSsr) -> Vec<SubState> {
    let ghost = Name::from_bits((1 << protocol.name_bits()) - 1, protocol.name_bits());
    unique_names_configuration(protocol)
        .into_iter()
        .map(|mut s| {
            if let SubRole::Collecting(c) = &mut s.role {
                let mut roster = (*c.roster).clone();
                roster.insert(ghost);
                c.roster = Arc::new(roster);
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::rng_from_seed;
    use population::silence::is_silent_configuration;
    use population::Protocol;

    #[test]
    fn ciw_random_configuration_is_in_domain() {
        let p = CaiIzumiWada::new(16);
        let mut rng = rng_from_seed(1);
        for s in random_ciw_configuration(&p, &mut rng) {
            assert!(s.rank < 16);
        }
    }

    #[test]
    fn ranked_configurations_are_correct_and_silent() {
        let ciw = CaiIzumiWada::new(9);
        assert!(is_silent_configuration(&ciw, &ranked_ciw_configuration(&ciw)));
        let oss = OptimalSilentSsr::new(9);
        let cfg = ranked_oss_configuration(&oss);
        assert!(is_silent_configuration(&oss, &cfg));
        let mut seen: Vec<usize> = cfg.iter().filter_map(|s| oss.rank_of(s)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn ranked_oss_children_match_tree_arity() {
        let oss = OptimalSilentSsr::new(5);
        let cfg = ranked_oss_configuration(&oss);
        // n = 5: rank 1 → children {2,3}; rank 2 → {4,5}; ranks 3..5 leaves.
        let children: Vec<u8> = cfg
            .iter()
            .map(|s| match s {
                OssState::Settled { children, .. } => *children,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(children, vec![2, 2, 0, 0, 0]);
    }

    #[test]
    fn observation_2_2_has_two_leader_copies() {
        let oss = OptimalSilentSsr::new(8);
        let cfg = observation_2_2_configuration(&oss);
        let leaders = cfg.iter().filter(|s| oss.is_leader(s)).count();
        assert_eq!(leaders, 2);
        // All pairs except the two copies are null — the copies must meet.
        let p = &oss;
        let non_null_pairs = cfg
            .iter()
            .enumerate()
            .flat_map(|(i, a)| {
                cfg.iter()
                    .enumerate()
                    .filter_map(move |(j, b)| (i != j && !p.is_null_pair(a, b)).then_some((i, j)))
            })
            .count();
        assert_eq!(non_null_pairs, 2, "exactly the ordered pair of duplicates, twice");
    }

    #[test]
    fn random_oss_states_are_in_domain() {
        let p = OptimalSilentSsr::new(16);
        let mut rng = rng_from_seed(2);
        for s in random_oss_configuration(&p, &mut rng) {
            match s {
                OssState::Settled { rank, children } => {
                    assert!((1..=16).contains(&rank));
                    assert!(children <= 2);
                }
                OssState::Unsettled { errorcount } => assert!(errorcount <= p.e_max()),
                OssState::Resetting { core, .. } => {
                    assert!(core.resetcount <= p.reset_params().r_max);
                    assert!(core.delaytimer <= p.reset_params().d_max);
                }
            }
        }
    }

    #[test]
    fn random_sublinear_states_are_in_domain() {
        let p = SublinearTimeSsr::new(8, 2);
        let mut rng = rng_from_seed(3);
        for s in random_sublinear_configuration(&p, &mut rng) {
            assert!(s.name.len() <= p.name_bits());
            if let Some(c) = s.collecting() {
                assert!(!c.roster.is_empty() && c.roster.len() <= 8);
                if let Some(r) = c.rank {
                    assert!((1..=8).contains(&r));
                }
                assert!(c.tree.is_simply_labelled());
                assert!(c.tree.depth() <= 2);
                assert_eq!(c.tree.root_name(), s.name);
            }
        }
    }

    #[test]
    fn corruptor_and_configuration_generators_share_one_stream() {
        // The random_*_configuration helpers must be exactly n draws of
        // Corruptor::random_state — same RNG, same sequence — so mid-run
        // faults corrupt from the same distribution the time-zero adversary
        // uses.
        let ciw = CaiIzumiWada::new(12);
        let mut a = rng_from_seed(4);
        let mut b = rng_from_seed(4);
        let via_config = random_ciw_configuration(&ciw, &mut a);
        let via_corruptor: Vec<_> = (0..12).map(|_| ciw.random_state(&mut b)).collect();
        assert_eq!(via_config, via_corruptor);

        let oss = OptimalSilentSsr::new(12);
        let mut a = rng_from_seed(4);
        let mut b = rng_from_seed(4);
        assert_eq!(
            random_oss_configuration(&oss, &mut a),
            (0..12).map(|_| oss.random_state(&mut b)).collect::<Vec<_>>()
        );

        let sub = SublinearTimeSsr::new(8, 2);
        let mut a = rng_from_seed(4);
        let mut b = rng_from_seed(4);
        assert_eq!(
            random_sublinear_configuration(&sub, &mut a),
            (0..8).map(|_| sub.random_state(&mut b)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mid_reset_states_are_resetting_and_in_domain() {
        let oss = OptimalSilentSsr::new(16);
        let mut rng = rng_from_seed(9);
        for _ in 0..50 {
            match oss.mid_reset_state(&mut rng) {
                OssState::Resetting { core, .. } => {
                    assert!(core.resetcount <= oss.reset_params().r_max);
                    assert!(core.delaytimer <= oss.reset_params().d_max);
                }
                other => panic!("mid-reset must be Resetting, got {other:?}"),
            }
        }
        let sub = SublinearTimeSsr::new(8, 1);
        for _ in 0..50 {
            let s = sub.mid_reset_state(&mut rng);
            assert!(s.name.len() <= sub.name_bits());
            assert!(matches!(s.role, SubRole::Resetting(_)), "got {s:?}");
        }
    }

    #[test]
    fn planted_collision_has_exactly_one_duplicate() {
        let p = SublinearTimeSsr::new(8, 1);
        let cfg = planted_collision_configuration(&p);
        let names: Vec<Name> = cfg.iter().map(|s| s.name).collect();
        let distinct: BTreeSet<Name> = names.iter().copied().collect();
        assert_eq!(distinct.len(), names.len() - 1);
    }

    #[test]
    fn ghost_configuration_rosters_have_an_extra_name() {
        let p = SublinearTimeSsr::new(8, 1);
        for s in ghost_name_configuration(&p) {
            assert_eq!(s.collecting().unwrap().roster.len(), 2);
        }
    }
}
