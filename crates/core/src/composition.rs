//! Composing a downstream computation on top of self-stabilizing ranking.
//!
//! The paper (Sec. 1) argues that self-stabilization is what makes
//! population protocols *composable*: a self-stabilizing protocol `S` can
//! run below a downstream computation whose state was "set … in some
//! unknown way" before `S` stabilized — once `S` settles, the downstream
//! recovers on its own (fair composition, after Dolev et al.).
//!
//! [`LeaderAligned`] is a concrete demonstration: any
//! [`RankingProtocol`] is composed with a downstream *alignment* task — every
//! agent must adopt the parity bit of the leader (the rank-1 agent). The
//! downstream rule is one line (copy the parity of any lower-ranked agent),
//! and it is itself self-stabilizing **given** stabilized ranks; composing
//! the two therefore stabilizes end-to-end from arbitrary joint states.
//!
//! # Examples
//!
//! ```
//! use population::Simulation;
//! use ssle::composition::{ComposedState, LeaderAligned};
//! use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};
//!
//! let n = 8;
//! let protocol = LeaderAligned::new(CaiIzumiWada::new(n));
//! // Adversarial joint state: colliding ranks AND disagreeing parities.
//! let initial: Vec<_> = (0..n)
//!     .map(|k| ComposedState { upstream: CiwState::new(0), parity: k % 2 == 0 })
//!     .collect();
//! let mut sim = Simulation::new(protocol, initial, 44);
//! let outcome = sim.run_until(50_000_000, |s| LeaderAligned::<CaiIzumiWada>::is_aligned(s));
//! assert!(outcome.is_converged());
//! ```

use population::{Protocol, RankingProtocol};
use rand::rngs::SmallRng;

/// Joint state of the composed protocol: the ranking protocol's state plus
/// the downstream parity bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedState<S> {
    /// The underlying ranking protocol's state.
    pub upstream: S,
    /// Downstream output: must converge to the leader's parity.
    pub parity: bool,
}

/// A ranking protocol composed with the leader-parity alignment task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderAligned<P> {
    upstream: P,
}

impl<P: RankingProtocol> LeaderAligned<P> {
    /// Composes the alignment task on top of `upstream`.
    pub fn new(upstream: P) -> Self {
        LeaderAligned { upstream }
    }

    /// The underlying ranking protocol.
    pub fn upstream(&self) -> &P {
        &self.upstream
    }

    /// Whether every agent's parity matches every other's (the downstream
    /// goal once a unique leader exists).
    pub fn is_aligned(states: &[ComposedState<P::State>]) -> bool {
        states.windows(2).all(|w| w[0].parity == w[1].parity)
    }
}

impl<P: RankingProtocol> Protocol for LeaderAligned<P> {
    type State = ComposedState<P::State>;
    // Deterministic iff the upstream is: the parity layer adds no randomness.
    const DETERMINISTIC_INTERACT: bool = P::DETERMINISTIC_INTERACT;

    fn interact(&self, a: &mut Self::State, b: &mut Self::State, rng: &mut SmallRng) {
        // Ranks as observed at the start of the interaction — agents
        // mutually observe each other's states *before* updating.
        let ra = self.upstream.rank_of(&a.upstream);
        let rb = self.upstream.rank_of(&b.upstream);
        // Upstream layer runs obliviously to the downstream.
        self.upstream.interact(&mut a.upstream, &mut b.upstream, rng);
        // Downstream layer: parity flows from lower to higher rank. Agents
        // without a rank output (unsettled/resetting upstream states)
        // neither give nor take.
        if let (Some(ra), Some(rb)) = (ra, rb) {
            if ra < rb {
                b.parity = a.parity;
            } else if rb < ra {
                a.parity = b.parity;
            }
        }
    }

    fn is_null_pair(&self, a: &Self::State, b: &Self::State) -> bool {
        // The composed pair is inert iff the upstream pair is inert AND the
        // parity rule would not change anything.
        if !self.upstream.is_null_pair(&a.upstream, &b.upstream) {
            return false;
        }
        match (self.upstream.rank_of(&a.upstream), self.upstream.rank_of(&b.upstream)) {
            (Some(ra), Some(rb)) if ra != rb => a.parity == b.parity,
            _ => true,
        }
    }
}

impl<P: RankingProtocol> RankingProtocol for LeaderAligned<P> {
    fn population_size(&self) -> usize {
        self.upstream.population_size()
    }

    fn rank_of(&self, state: &Self::State) -> Option<usize> {
        self.upstream.rank_of(&state.upstream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary;
    use crate::cai_izumi_wada::{CaiIzumiWada, CiwState};
    use crate::optimal_silent::OptimalSilentSsr;
    use population::runner::rng_from_seed;
    use population::silence::is_silent_configuration;
    use population::Simulation;
    use rand::Rng;

    #[test]
    fn parity_flows_downhill_in_rank() {
        let p = LeaderAligned::new(CaiIzumiWada::new(4));
        let mut rng = rng_from_seed(1);
        let mut a = ComposedState { upstream: CiwState::new(0), parity: true };
        let mut b = ComposedState { upstream: CiwState::new(2), parity: false };
        p.interact(&mut a, &mut b, &mut rng);
        assert!(b.parity, "rank 1's parity overwrites rank 3's");
        let mut c = ComposedState { upstream: CiwState::new(3), parity: false };
        p.interact(&mut c, &mut a, &mut rng);
        assert!(c.parity, "direction is by rank, not by initiator role");
    }

    #[test]
    fn unranked_agents_do_not_exchange_parity() {
        let p = LeaderAligned::new(OptimalSilentSsr::new(4));
        let mut rng = rng_from_seed(2);
        let oss = OptimalSilentSsr::new(4);
        let mut a = ComposedState {
            upstream: crate::optimal_silent::OssState::settled(1, 0),
            parity: true,
        };
        let mut b = ComposedState {
            upstream: crate::optimal_silent::OssState::unsettled(50),
            parity: false,
        };
        let _ = oss;
        p.interact(&mut a, &mut b, &mut rng);
        // b got recruited upstream this very interaction — but it had no
        // rank at the start, so parity stays until a future meeting.
        assert!(!b.parity);
    }

    #[test]
    fn composition_stabilizes_from_joint_corruption() {
        let n = 12;
        let upstream = OptimalSilentSsr::new(n);
        let p = LeaderAligned::new(upstream);
        let mut rng = rng_from_seed(3);
        let initial: Vec<_> = adversary::random_oss_configuration(&upstream, &mut rng)
            .into_iter()
            .map(|s| ComposedState { upstream: s, parity: rng.gen() })
            .collect();
        let mut sim = Simulation::new(p, initial, 4);
        let outcome = sim.run_until(u64::MAX, |states| {
            if !LeaderAligned::<OptimalSilentSsr>::is_aligned(states) {
                return false;
            }
            // Full ranking: each rank 1..=n exactly once.
            let mut seen = vec![false; n];
            states.iter().all(|s| match upstream.rank_of(&s.upstream) {
                Some(r) => !std::mem::replace(&mut seen[r - 1], true),
                None => false,
            })
        });
        assert!(outcome.is_converged());
        // And it is jointly silent: ranks are a permutation and parities agree.
        assert!(sim.is_ranked());
        assert!(is_silent_configuration(sim.protocol(), sim.states()));
    }

    #[test]
    fn downstream_recovers_after_upstream_restabilizes() {
        // Corrupt ONLY the downstream of a stabilized joint configuration:
        // alignment returns without the upstream ever changing.
        let n = 10;
        let upstream = CaiIzumiWada::new(n);
        let p = LeaderAligned::new(upstream);
        let mut states: Vec<_> = (0..n as u32)
            .map(|r| ComposedState { upstream: CiwState::new(r), parity: true })
            .collect();
        states[7].parity = false;
        let before: Vec<CiwState> = states.iter().map(|s| s.upstream).collect();
        let mut sim = Simulation::new(p, states, 5);
        let outcome = sim.run_until(10_000_000, LeaderAligned::<CaiIzumiWada>::is_aligned);
        assert!(outcome.is_converged());
        let after: Vec<CiwState> = sim.states().iter().map(|s| s.upstream).collect();
        assert_eq!(before, after, "the stabilized upstream never moved");
    }

    #[test]
    fn null_pairs_require_both_layers_inert() {
        let p = LeaderAligned::new(CaiIzumiWada::new(4));
        let aligned_distinct = (
            ComposedState { upstream: CiwState::new(0), parity: true },
            ComposedState { upstream: CiwState::new(1), parity: true },
        );
        assert!(p.is_null_pair(&aligned_distinct.0, &aligned_distinct.1));
        let misaligned = (
            ComposedState { upstream: CiwState::new(0), parity: true },
            ComposedState { upstream: CiwState::new(1), parity: false },
        );
        assert!(!p.is_null_pair(&misaligned.0, &misaligned.1));
        let colliding = (
            ComposedState { upstream: CiwState::new(1), parity: true },
            ComposedState { upstream: CiwState::new(1), parity: true },
        );
        assert!(!p.is_null_pair(&colliding.0, &colliding.1));
    }

    #[test]
    fn rank_outputs_pass_through() {
        let p = LeaderAligned::new(CaiIzumiWada::new(4));
        let s = ComposedState { upstream: CiwState::new(0), parity: false };
        assert_eq!(p.rank_of(&s), Some(1));
        assert!(p.is_leader(&s));
        assert_eq!(p.population_size(), 4);
    }
}
