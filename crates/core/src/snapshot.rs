//! [`SnapshotProtocol`] implementations — which protocols can checkpoint.
//!
//! A protocol is snapshottable when its per-agent state is plain data with
//! a total, validating decoder. That covers:
//!
//! * [`CaiIzumiWada`] — a bare rank (`"3"`);
//! * [`OptimalSilentSsr`] — a tagged record (`"S:3:1"`, `"U:17"`,
//!   `"R:L:4:9"`);
//! * [`LooselyStabilizingLe`] — a leader bit and timer (`"L:40"`,
//!   `"F:12"`).
//!
//! Sublinear-Time-SSR is deliberately **not** snapshottable: its states
//! carry history trees of unbounded structure, and serializing them would
//! reproduce the protocol's quasi-exponential state-space bound on disk.
//!
//! Decoders validate against the protocol's parameter (rank ranges,
//! `children ≤ 2`) and reject rather than clamp — a malformed snapshot is
//! corruption, not an adversarial initial state. Countdown fields
//! (`errorcount`, `resetcount`, `delaytimer`, `timer`) accept any `u32`:
//! the self-stabilizing model already requires the transition function to
//! tolerate arbitrary values there.

use population::snapshot::SnapshotProtocol;

use crate::cai_izumi_wada::{CaiIzumiWada, CiwState};
use crate::loose::{LooseState, LooselyStabilizingLe};
use crate::optimal_silent::{Leader, OssState};
use crate::reset::ResetCore;
use crate::OptimalSilentSsr;

fn parse_u32(text: &str, what: &str) -> Result<u32, String> {
    text.parse::<u32>().map_err(|e| format!("bad {what} {text:?}: {e}"))
}

impl SnapshotProtocol for CaiIzumiWada {
    const TAG: &'static str = "ciw";

    fn snapshot_param(&self) -> u64 {
        population::RankingProtocol::population_size(self) as u64
    }

    fn encode_state(&self, state: &CiwState) -> String {
        state.rank.to_string()
    }

    fn decode_state(&self, text: &str) -> Result<CiwState, String> {
        let rank = parse_u32(text, "rank")?;
        let n = population::RankingProtocol::population_size(self) as u32;
        if rank >= n {
            return Err(format!("rank {rank} out of range for n = {n}"));
        }
        Ok(CiwState::new(rank))
    }
}

impl SnapshotProtocol for OptimalSilentSsr {
    const TAG: &'static str = "oss";

    fn snapshot_param(&self) -> u64 {
        population::RankingProtocol::population_size(self) as u64
    }

    fn encode_state(&self, state: &OssState) -> String {
        match state {
            OssState::Settled { rank, children } => format!("S:{rank}:{children}"),
            OssState::Unsettled { errorcount } => format!("U:{errorcount}"),
            OssState::Resetting { leader, core } => {
                let l = match leader {
                    Leader::L => "L",
                    Leader::F => "F",
                };
                format!("R:{l}:{}:{}", core.resetcount, core.delaytimer)
            }
        }
    }

    fn decode_state(&self, text: &str) -> Result<OssState, String> {
        let mut parts = text.split(':');
        let tag = parts.next().unwrap_or("");
        let fields: Vec<&str> = parts.collect();
        match (tag, fields.as_slice()) {
            ("S", [rank, children]) => {
                let rank = parse_u32(rank, "rank")?;
                let children = parse_u32(children, "children")?;
                let n = population::RankingProtocol::population_size(self) as u32;
                if rank < 1 || rank > n {
                    return Err(format!("rank {rank} out of range for n = {n}"));
                }
                if children > 2 {
                    return Err(format!("children {children} out of range (≤ 2)"));
                }
                Ok(OssState::settled(rank, children as u8))
            }
            ("U", [errorcount]) => Ok(OssState::unsettled(parse_u32(errorcount, "errorcount")?)),
            ("R", [leader, resetcount, delaytimer]) => {
                let leader = match *leader {
                    "L" => Leader::L,
                    "F" => Leader::F,
                    other => return Err(format!("bad leader bit {other:?}")),
                };
                let core = ResetCore {
                    resetcount: parse_u32(resetcount, "resetcount")?,
                    delaytimer: parse_u32(delaytimer, "delaytimer")?,
                };
                Ok(OssState::resetting(leader, core))
            }
            _ => Err(format!("bad OSS state {text:?}")),
        }
    }
}

impl SnapshotProtocol for LooselyStabilizingLe {
    const TAG: &'static str = "loose";

    fn snapshot_param(&self) -> u64 {
        u64::from(self.t_max())
    }

    fn encode_state(&self, state: &LooseState) -> String {
        format!("{}:{}", if state.leader { "L" } else { "F" }, state.timer)
    }

    fn decode_state(&self, text: &str) -> Result<LooseState, String> {
        let (bit, timer) =
            text.split_once(':').ok_or_else(|| format!("bad loose state {text:?}"))?;
        let leader = match bit {
            "L" => true,
            "F" => false,
            other => return Err(format!("bad leader bit {other:?}")),
        };
        Ok(LooseState { leader, timer: parse_u32(timer, "timer")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::rng_from_seed;
    use population::snapshot::{restore_agents, restore_counts, snapshot_agents, snapshot_counts};
    use population::{BatchSimulation, Simulation};

    use crate::adversary;

    #[test]
    fn ciw_states_round_trip() {
        let p = CaiIzumiWada::new(10);
        for rank in 0..10 {
            let s = CiwState::new(rank);
            assert_eq!(p.decode_state(&p.encode_state(&s)), Ok(s));
        }
        assert!(p.decode_state("10").is_err());
        assert!(p.decode_state("-1").is_err());
        assert!(p.decode_state("x").is_err());
    }

    #[test]
    fn oss_states_round_trip() {
        let p = OptimalSilentSsr::new(9);
        let samples = [
            OssState::settled(1, 0),
            OssState::settled(9, 2),
            OssState::unsettled(0),
            OssState::unsettled(123_456),
            OssState::resetting(Leader::L, ResetCore { resetcount: 3, delaytimer: 0 }),
            OssState::resetting(Leader::F, ResetCore { resetcount: 0, delaytimer: 77 }),
        ];
        for s in samples {
            assert_eq!(p.decode_state(&p.encode_state(&s)), Ok(s));
        }
        assert!(p.decode_state("S:0:0").is_err(), "rank below 1");
        assert!(p.decode_state("S:10:0").is_err(), "rank above n");
        assert!(p.decode_state("S:3:3").is_err(), "too many children");
        assert!(p.decode_state("R:X:1:2").is_err(), "bad leader bit");
        assert!(p.decode_state("Q:1").is_err(), "unknown tag");
    }

    #[test]
    fn loose_states_round_trip() {
        let p = LooselyStabilizingLe::new(64);
        for s in [LooseState { leader: true, timer: 64 }, LooseState { leader: false, timer: 0 }] {
            assert_eq!(p.decode_state(&p.encode_state(&s)), Ok(s));
        }
        assert!(p.decode_state("L").is_err());
        assert!(p.decode_state("X:4").is_err());
    }

    #[test]
    fn adversarial_oss_run_round_trips_through_a_snapshot() {
        let n = 24;
        let p = OptimalSilentSsr::new(n);
        let initial = adversary::random_oss_configuration(&p, &mut rng_from_seed(5));

        let mut agents = Simulation::new(OptimalSilentSsr::new(n), initial.clone(), 11);
        agents.run(10_000);
        let doc = snapshot_agents(&agents);
        let mut restored = restore_agents(OptimalSilentSsr::new(n), &doc).expect("agents restore");
        agents.run(10_000);
        restored.run(10_000);
        assert_eq!(agents.states(), restored.states());
        assert_eq!(agents.rng_state(), restored.rng_state());

        let mut counts = BatchSimulation::new(OptimalSilentSsr::new(n), initial, 11);
        counts.run(10_000);
        let doc = snapshot_counts(&counts);
        let mut restored = restore_counts(OptimalSilentSsr::new(n), &doc).expect("counts restore");
        counts.run(10_000);
        restored.run(10_000);
        assert_eq!(counts.counts().to_states(), restored.counts().to_states());
        assert_eq!(counts.rng_state(), restored.rng_state());
    }

    #[test]
    fn parameter_mismatch_is_rejected() {
        let n = 8;
        let mut sim = Simulation::new(CaiIzumiWada::new(n), vec![CiwState::new(0); n], 2);
        sim.run(100);
        let doc = snapshot_agents(&sim);
        assert!(restore_agents(CaiIzumiWada::new(n + 1), &doc).is_err());
        assert!(restore_agents(OptimalSilentSsr::new(n), &doc).is_err(), "wrong protocol tag");
    }
}
