//! Loosely-stabilizing leader election — the relaxation the paper contrasts
//! against (Sudo, Ooshita, Kakugawa, Masuzawa, Datta, Larmore; cited as
//! \[56\]).
//!
//! Where *self*-stabilization demands a unique leader **forever** (and
//! therefore `Ω(n)` states and exact knowledge of `n` — Theorem 2.1),
//! *loose* stabilization only requires that, from any configuration, the
//! population quickly reaches a unique leader that then persists for a long
//! (but finite) *holding time*. In exchange, agents only need an upper
//! bound on `n` and far fewer states.
//!
//! This module implements the classic timeout-based protocol:
//!
//! * every agent carries a `timer ∈ 0..=T_max`;
//! * leaders always keep their timer at `T_max` (the heartbeat);
//! * when two agents meet, both adopt `max(timer_a, timer_b) − 1` — the
//!   heartbeat spreads by epidemic, losing 1 per hop;
//! * two meeting leaders fight (`ℓ, ℓ → ℓ, f`);
//! * a non-leader whose timer reaches 0 concludes the leader is gone and
//!   promotes itself.
//!
//! With `T_max ≫ log n`, a live leader's heartbeat keeps every timer high
//! with overwhelming probability, so false timeouts (and the resulting
//! transient extra leaders) are rare — the holding time grows
//! exponentially in `T_max / log n` while convergence stays
//! `O(T_max + log n)`. The `loose_stabilization` experiment binary measures
//! this trade-off.

use population::Protocol;
use rand::rngs::SmallRng;

/// One agent's state: a leader bit and a heartbeat timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LooseState {
    /// Whether this agent currently considers itself the leader.
    pub leader: bool,
    /// Time-to-live of the last heard heartbeat.
    pub timer: u32,
}

/// The loosely-stabilizing leader-election protocol with heartbeat bound
/// `T_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LooselyStabilizingLe {
    t_max: u32,
}

impl LooselyStabilizingLe {
    /// Creates the protocol with heartbeat bound `t_max`.
    ///
    /// `t_max` should be `Ω(log n)` for a meaningful holding time; the
    /// protocol itself only needs this *upper-bound-ish* knowledge of `n`,
    /// not `n` exactly — the point of the relaxation.
    ///
    /// # Panics
    ///
    /// Panics if `t_max == 0`.
    pub fn new(t_max: u32) -> Self {
        assert!(t_max > 0, "a zero heartbeat bound would time out instantly");
        LooselyStabilizingLe { t_max }
    }

    /// The configured heartbeat bound.
    pub fn t_max(&self) -> u32 {
        self.t_max
    }

    /// A fresh leader state (timer at full).
    pub fn leader_state(&self) -> LooseState {
        LooseState { leader: true, timer: self.t_max }
    }

    /// A follower with the given remaining heartbeat.
    ///
    /// # Panics
    ///
    /// Panics if `timer > t_max`.
    pub fn follower_state(&self, timer: u32) -> LooseState {
        assert!(timer <= self.t_max, "timer exceeds T_max");
        LooseState { leader: false, timer }
    }

    /// Number of leaders in a configuration.
    pub fn leader_count(states: &[LooseState]) -> usize {
        states.iter().filter(|s| s.leader).count()
    }
}

impl Protocol for LooselyStabilizingLe {
    type State = LooseState;
    // Pure function of the two states (the RNG parameter is unused), so the
    // count backend may memoize transitions.
    const DETERMINISTIC_INTERACT: bool = true;

    fn interact(&self, a: &mut LooseState, b: &mut LooseState, _rng: &mut SmallRng) {
        // Leader fight: ℓ, ℓ → ℓ, f.
        if a.leader && b.leader {
            b.leader = false;
        }
        // Heartbeat epidemic: both adopt the larger timer minus one hop.
        let heard = a.timer.max(b.timer).saturating_sub(1);
        a.timer = heard;
        b.timer = heard;
        // Leaders pump the heartbeat back to full.
        for s in [&mut *a, &mut *b] {
            if s.leader {
                s.timer = self.t_max;
            } else if s.timer == 0 {
                // Timeout: the leader is (believed) gone — self-promote.
                s.leader = true;
                s.timer = self.t_max;
            }
        }
    }

    // Never silent: timers churn forever — consistent with Observation 2.2,
    // since the protocol (loosely) recovers from leaderless configurations
    // in sublinear time.
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::{derive_seed, rng_from_seed};
    use population::Simulation;
    use rand::Rng;

    fn random_config(p: &LooselyStabilizingLe, n: usize, seed: u64) -> Vec<LooseState> {
        let mut rng = rng_from_seed(seed);
        (0..n)
            .map(|_| LooseState { leader: rng.gen(), timer: rng.gen_range(0..=p.t_max()) })
            .collect()
    }

    #[test]
    #[should_panic(expected = "zero heartbeat")]
    fn zero_t_max_is_rejected() {
        LooselyStabilizingLe::new(0);
    }

    #[test]
    fn leader_fight_keeps_initiator() {
        let p = LooselyStabilizingLe::new(10);
        let mut a = p.leader_state();
        let mut b = p.leader_state();
        p.interact(&mut a, &mut b, &mut rng_from_seed(1));
        assert!(a.leader && !b.leader);
    }

    #[test]
    fn heartbeat_propagates_and_decays() {
        let p = LooselyStabilizingLe::new(10);
        let mut a = p.follower_state(7);
        let mut b = p.follower_state(2);
        p.interact(&mut a, &mut b, &mut rng_from_seed(1));
        assert_eq!(a.timer, 6);
        assert_eq!(b.timer, 6);
        assert!(!a.leader && !b.leader);
    }

    #[test]
    fn leaders_always_leave_with_full_timers() {
        let p = LooselyStabilizingLe::new(10);
        let mut a = p.leader_state();
        a.timer = 3; // adversarially drained
        let mut b = p.follower_state(1);
        p.interact(&mut a, &mut b, &mut rng_from_seed(1));
        assert_eq!(a.timer, p.t_max());
        assert_eq!(b.timer, 2);
    }

    #[test]
    fn timeout_promotes_a_follower() {
        let p = LooselyStabilizingLe::new(10);
        let mut a = p.follower_state(1);
        let mut b = p.follower_state(0);
        p.interact(&mut a, &mut b, &mut rng_from_seed(1));
        // max(1,0)−1 = 0 for both: both time out and self-promote.
        assert!(a.leader && b.leader);
        assert_eq!(a.timer, p.t_max());
    }

    #[test]
    fn recovers_a_leader_from_the_all_follower_configuration() {
        // The configuration that kills ℓ,ℓ → ℓ,f (see `initialized`) is
        // handled here: timers drain and someone self-promotes.
        let n = 24;
        let p = LooselyStabilizingLe::new(32);
        let initial = vec![p.follower_state(32); n];
        let mut sim = Simulation::new(p, initial, 5);
        let outcome = sim.run_until(50_000_000, |s| LooselyStabilizingLe::leader_count(s) == 1);
        assert!(outcome.is_converged());
    }

    #[test]
    fn converges_from_random_configurations() {
        let n = 24;
        let p = LooselyStabilizingLe::new(64);
        for trial in 0..5 {
            let initial = random_config(&p, n, derive_seed(9, trial));
            let mut sim = Simulation::new(p, initial, derive_seed(10, trial));
            let outcome = sim.run_until(50_000_000, |s| LooselyStabilizingLe::leader_count(s) == 1);
            assert!(outcome.is_converged(), "trial {trial}");
        }
    }

    #[test]
    fn large_t_max_holds_the_leader_for_a_long_time() {
        let n = 24;
        let p = LooselyStabilizingLe::new(40 * 32); // T_max ≫ log n
        let initial = vec![p.follower_state(1); n];
        let mut sim = Simulation::new(p, initial, 11);
        assert!(sim
            .run_until(50_000_000, |s| LooselyStabilizingLe::leader_count(s) == 1)
            .is_converged());
        // Hold for 500 parallel time units without a spurious promotion.
        for _ in 0..500 {
            sim.run(n as u64);
            assert_eq!(LooselyStabilizingLe::leader_count(sim.states()), 1);
        }
    }

    #[test]
    fn tiny_t_max_causes_spurious_leaders() {
        // The trade-off in the other direction: an undersized heartbeat
        // bound cannot hold the leader.
        let n = 64;
        let p = LooselyStabilizingLe::new(2);
        let mut initial = vec![p.follower_state(2); n];
        initial[0] = p.leader_state();
        let mut sim = Simulation::new(p, initial, 13);
        let mut saw_extra = false;
        for _ in 0..2_000 {
            sim.run(n as u64);
            if LooselyStabilizingLe::leader_count(sim.states()) > 1 {
                saw_extra = true;
                break;
            }
        }
        assert!(saw_extra, "T_max = 2 should keep timing out spuriously");
    }
}
