//! The initialized (non-self-stabilizing) setting, for contrast.
//!
//! Sec. 1 of the paper motivates self-stabilization by observing that
//! initialized leader election is trivial — one bit and one transition,
//! `ℓ, ℓ → ℓ, f` — but that this protocol "fails (as do nearly all other
//! published leader election protocols) in the self-stabilizing setting from
//! an all-f configuration": it can only destroy leaders, never create one.
//! [`FightProtocol`] implements it so the failure is demonstrable.
//!
//! The module also implements the paper's footnote 7: a ranking protocol
//! lets the `leader = Yes` bit wander between agents; [`ImmobilizedLeader`]
//! applies the footnote's transformation — whenever a transition would move
//! the leader bit from one agent to the other, swap the two output states —
//! so one physical agent keeps the leadership once ranks stop changing.

use population::{Protocol, RankingProtocol};
use rand::rngs::SmallRng;

/// State of the one-bit initialized leader-election protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FightState {
    /// Leader candidate (`ℓ`).
    Leader,
    /// Follower (`f`).
    Follower,
}

/// The single-transition protocol `ℓ, ℓ → ℓ, f`.
///
/// Correct from the designated all-`ℓ` initial configuration; **not**
/// self-stabilizing (the all-`f` configuration is a dead end with no
/// leader) — see the module docs.
///
/// # Examples
///
/// ```
/// use population::{Protocol, Simulation};
/// use ssle::initialized::{FightProtocol, FightState};
///
/// let mut sim = Simulation::new(FightProtocol, vec![FightState::Follower; 8], 1);
/// sim.run(100_000);
/// let leaders = sim.states().iter().filter(|s| **s == FightState::Leader).count();
/// assert_eq!(leaders, 0, "no transition can ever create a leader");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FightProtocol;

impl Protocol for FightProtocol {
    type State = FightState;
    const DETERMINISTIC_INTERACT: bool = true;

    fn interact(&self, a: &mut FightState, b: &mut FightState, _rng: &mut SmallRng) {
        if *a == FightState::Leader && *b == FightState::Leader {
            *b = FightState::Follower;
        }
    }

    fn is_null_pair(&self, a: &FightState, b: &FightState) -> bool {
        !(*a == FightState::Leader && *b == FightState::Leader)
    }
}

/// Wraps a ranking protocol so the rank-1 ("leader") output bit stops
/// migrating between agents once it is unique.
///
/// Footnote 7 of the paper: replace any transition `(x, y) → (w, z)` where
/// `x` outputs leader and `z` outputs leader (with `y`, `w` not) by
/// `(x, y) → (z, w)` — the same multiset of output states, assigned so the
/// previously-leading agent keeps the leader output. Because only the
/// assignment (not the multiset) changes, correctness and time bounds are
/// unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmobilizedLeader<P> {
    inner: P,
}

impl<P> ImmobilizedLeader<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        ImmobilizedLeader { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: RankingProtocol> Protocol for ImmobilizedLeader<P> {
    type State = P::State;
    // Deterministic iff the wrapped protocol is: the swap adds no randomness.
    const DETERMINISTIC_INTERACT: bool = P::DETERMINISTIC_INTERACT;

    fn interact(&self, a: &mut P::State, b: &mut P::State, rng: &mut SmallRng) {
        let a_led = self.inner.is_leader(a);
        let b_led = self.inner.is_leader(b);
        self.inner.interact(a, b, rng);
        let a_leads = self.inner.is_leader(a);
        let b_leads = self.inner.is_leader(b);
        // The leader bit hopped from one agent to the other: undo the hop by
        // swapping the output states.
        if (a_led && !b_led && !a_leads && b_leads) || (b_led && !a_led && !b_leads && a_leads) {
            std::mem::swap(a, b);
        }
    }

    fn is_null_pair(&self, a: &P::State, b: &P::State) -> bool {
        self.inner.is_null_pair(a, b)
    }
}

impl<P: RankingProtocol> RankingProtocol for ImmobilizedLeader<P> {
    fn population_size(&self) -> usize {
        self.inner.population_size()
    }

    fn rank_of(&self, state: &P::State) -> Option<usize> {
        self.inner.rank_of(state)
    }
}

/// State of the initialized tree-ranking protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TreeRankState {
    /// Already holds a rank and has recruited `children` agents.
    Ranked {
        /// The assigned rank, in `1..=n`.
        rank: u32,
        /// Children recruited so far (0–2).
        children: u8,
    },
    /// Waiting to be recruited.
    Waiting,
}

/// Initialized (non-self-stabilizing) ranking: the rank-assignment core of
/// Optimal-Silent-SSR without any error detection or resets.
///
/// The paper's conclusion raises "initialized ranking" as a problem in its
/// own right — without self-stabilization there are no ghost names and no
/// need for `Ω(n)`-state error handling. This protocol starts from the
/// designated configuration (one agent `Ranked { rank: 1 }`, everyone else
/// `Waiting`) and builds the binary rank tree in `Θ(n)` time with `3n + 1`
/// states. It is **not** self-stabilizing: from an all-`Waiting`
/// configuration nobody can ever be ranked.
///
/// # Examples
///
/// ```
/// use population::Simulation;
/// use ssle::initialized::{TreeRanking, TreeRankState};
///
/// let n = 16;
/// let mut initial = vec![TreeRankState::Waiting; n];
/// initial[0] = TreeRankState::Ranked { rank: 1, children: 0 };
/// let mut sim = Simulation::new(TreeRanking::new(n), initial, 3);
/// assert!(sim.run_until_stably_ranked(10_000_000, 0).is_converged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeRanking {
    n: usize,
}

impl TreeRanking {
    /// Creates the protocol for exactly `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population protocols need at least 2 agents");
        TreeRanking { n }
    }

    /// The designated initial configuration: agent 0 is the pre-elected
    /// leader at the tree root.
    pub fn designated_configuration(&self) -> Vec<TreeRankState> {
        let mut states = vec![TreeRankState::Waiting; self.n];
        states[0] = TreeRankState::Ranked { rank: 1, children: 0 };
        states
    }
}

impl Protocol for TreeRanking {
    type State = TreeRankState;
    const DETERMINISTIC_INTERACT: bool = true;

    fn interact(&self, a: &mut TreeRankState, b: &mut TreeRankState, _rng: &mut SmallRng) {
        for _ in 0..2 {
            if let (TreeRankState::Ranked { rank, children }, TreeRankState::Waiting) = (&*a, &*b) {
                if *children < 2 && 2 * *rank as u64 + *children as u64 <= self.n as u64 {
                    let child_rank = 2 * *rank + *children as u32;
                    *b = TreeRankState::Ranked { rank: child_rank, children: 0 };
                    if let TreeRankState::Ranked { children, .. } = a {
                        *children += 1;
                    }
                }
            }
            std::mem::swap(a, b);
        }
    }

    fn is_null_pair(&self, a: &TreeRankState, b: &TreeRankState) -> bool {
        let open_slot = |s: &TreeRankState| match s {
            TreeRankState::Ranked { rank, children } => {
                *children < 2 && 2 * *rank as u64 + *children as u64 <= self.n as u64
            }
            TreeRankState::Waiting => false,
        };
        let waiting = |s: &TreeRankState| matches!(s, TreeRankState::Waiting);
        !(open_slot(a) && waiting(b) || open_slot(b) && waiting(a))
    }
}

impl RankingProtocol for TreeRanking {
    fn population_size(&self) -> usize {
        self.n
    }

    fn rank_of(&self, state: &TreeRankState) -> Option<usize> {
        match state {
            TreeRankState::Ranked { rank, .. } => Some(*rank as usize),
            TreeRankState::Waiting => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cai_izumi_wada::{CaiIzumiWada, CiwState};
    use population::runner::rng_from_seed;
    use population::Simulation;

    #[test]
    fn fight_elects_unique_leader_from_all_leaders() {
        let n = 32;
        let mut sim = Simulation::new(FightProtocol, vec![FightState::Leader; n], 9);
        let outcome = sim.run_until(10_000_000, |states| {
            states.iter().filter(|s| **s == FightState::Leader).count() == 1
        });
        assert!(outcome.is_converged());
    }

    #[test]
    fn fight_fails_from_all_followers() {
        let n = 8;
        let mut sim = Simulation::new(FightProtocol, vec![FightState::Follower; n], 9);
        sim.run(100_000);
        assert!(sim.states().iter().all(|s| *s == FightState::Follower));
    }

    #[test]
    fn fight_null_pairs() {
        assert!(FightProtocol.is_null_pair(&FightState::Leader, &FightState::Follower));
        assert!(FightProtocol.is_null_pair(&FightState::Follower, &FightState::Follower));
        assert!(!FightProtocol.is_null_pair(&FightState::Leader, &FightState::Leader));
    }

    #[test]
    fn immobilized_keeps_leader_bit_on_same_agent() {
        // In Cai–Izumi–Wada, (0, 0) → (0, 1): plain protocol can strip
        // leadership from the responder; immobilized, an interaction where
        // the *initiator* would hand rank 1 to the responder swaps instead.
        let p = ImmobilizedLeader::new(CaiIzumiWada::new(4));
        let mut rng = rng_from_seed(0);
        // Initiator leads (rank 0 = leader); responder also rank 0: the
        // inner transition bumps the responder; the initiator kept rank 0.
        let (mut a, mut b) = (CiwState::new(0), CiwState::new(0));
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!((a.rank, b.rank), (0, 1), "leader did not move — no swap needed");
    }

    #[test]
    fn immobilized_swaps_when_leadership_would_hop() {
        // Construct a synthetic protocol where the leader bit hops.
        #[derive(Debug, Clone, Copy)]
        struct Hop;
        impl Protocol for Hop {
            type State = u8; // 1 = leader, 0 = follower
            fn interact(&self, a: &mut u8, b: &mut u8, _rng: &mut SmallRng) {
                if *a == 1 && *b == 0 {
                    *a = 0;
                    *b = 1; // leadership hops initiator → responder
                }
            }
        }
        impl RankingProtocol for Hop {
            fn population_size(&self) -> usize {
                2
            }
            fn rank_of(&self, s: &u8) -> Option<usize> {
                Some(if *s == 1 { 1 } else { 2 })
            }
        }
        let p = ImmobilizedLeader::new(Hop);
        let mut rng = rng_from_seed(0);
        let (mut a, mut b) = (1u8, 0u8);
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!((a, b), (1, 0), "swap keeps the leader output on agent a");
    }

    #[test]
    fn tree_ranking_completes_from_the_designated_configuration() {
        let n = 24;
        let p = TreeRanking::new(n);
        let mut sim = Simulation::new(p, p.designated_configuration(), 31);
        let outcome = sim.run_until_stably_ranked(50_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
        use population::silence::is_silent_configuration;
        assert!(is_silent_configuration(sim.protocol(), sim.states()));
    }

    #[test]
    fn tree_ranking_is_not_self_stabilizing() {
        let n = 8;
        let mut sim = Simulation::new(TreeRanking::new(n), vec![TreeRankState::Waiting; n], 32);
        sim.run(200_000);
        assert!(
            sim.states().iter().all(|s| *s == TreeRankState::Waiting),
            "nobody can mint a rank without the designated leader"
        );
    }

    #[test]
    fn tree_ranking_null_pairs_match_behaviour() {
        let p = TreeRanking::new(4);
        let leaf = TreeRankState::Ranked { rank: 3, children: 0 }; // children 6,7 > 4
        let open = TreeRankState::Ranked { rank: 1, children: 1 };
        let waiting = TreeRankState::Waiting;
        assert!(p.is_null_pair(&leaf, &waiting));
        assert!(!p.is_null_pair(&open, &waiting));
        assert!(!p.is_null_pair(&waiting, &open), "recruitment works in both directions");
        assert!(p.is_null_pair(&waiting, &waiting));
        assert!(p.is_null_pair(&open, &leaf));
    }

    #[test]
    fn tree_ranking_rank_outputs() {
        let p = TreeRanking::new(4);
        assert_eq!(p.rank_of(&TreeRankState::Ranked { rank: 2, children: 1 }), Some(2));
        assert_eq!(p.rank_of(&TreeRankState::Waiting), None);
        assert!(p.is_leader(&TreeRankState::Ranked { rank: 1, children: 2 }));
    }

    #[test]
    fn immobilized_preserves_ranking_behaviour() {
        let n = 8;
        let p = ImmobilizedLeader::new(CaiIzumiWada::new(n));
        assert_eq!(p.population_size(), n);
        let mut sim = Simulation::new(p, vec![CiwState::new(0); n], 13);
        let outcome = sim.run_until_stably_ranked(50_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
    }
}
