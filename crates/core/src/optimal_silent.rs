//! Optimal-Silent-SSR (Protocols 3 and 4 of the paper, Sec. 4).
//!
//! A silent self-stabilizing ranking protocol with `O(n)` states, `Θ(n)`
//! expected and `Θ(n log n)` WHP parallel time — optimal in both measures
//! for the class of silent protocols (Observation 2.2).
//!
//! # How it works
//!
//! Agents are in one of three roles:
//!
//! * **Settled** — holds a `rank ∈ {1, …, n}` and a count of `children`
//!   (0–2) it has recruited;
//! * **Unsettled** — waits to be assigned a rank, counting `errorcount`
//!   down; reaching 0 means ranking has stalled, an error;
//! * **Resetting** — participating in a [`Propagate-Reset`](crate::reset)
//!   with an additional `leader ∈ {L, F}` bit.
//!
//! Errors trigger a global reset in two situations: two Settled agents with
//! the same rank meet, or an Unsettled agent exhausts its `errorcount`.
//! During the long (`D_max = Θ(n)`) dormant phase of the reset, the dormant
//! agents run the slow leader election `L, L → L, F`; on awakening the
//! (likely unique) leader settles with rank 1 and everyone else becomes
//! Unsettled. Settled agents then recruit Unsettled agents into a full
//! binary tree of ranks: the children of rank `i` are `2i` and `2i + 1`
//! (Figure 1 of the paper).
//!
//! # Examples
//!
//! ```
//! use population::Simulation;
//! use ssle::optimal_silent::{OptimalSilentSsr, OssState};
//!
//! let n = 16;
//! let protocol = OptimalSilentSsr::new(n);
//! // Adversarial start: everyone claims rank 1.
//! let initial = vec![OssState::settled(1, 0); n];
//! let mut sim = Simulation::new(protocol, initial, 42);
//! let outcome = sim.run_until_stably_ranked(50_000_000, 16 * 10);
//! assert!(outcome.is_converged());
//! ```

use population::{Protocol, RankingProtocol};
use rand::rngs::SmallRng;

use crate::reset::{propagate_reset, ResetCore, ResetParams, ResetView};

/// The leader bit carried by `Resetting` agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Leader {
    /// Leader candidate.
    L,
    /// Follower.
    F,
}

/// One agent's state in Optimal-Silent-SSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OssState {
    /// Holds a rank; has recruited `children` (0, 1, or 2) agents so far.
    Settled {
        /// The assigned rank, in `1..=n`.
        rank: u32,
        /// How many children this node of the rank tree has recruited.
        children: u8,
    },
    /// Waiting for a rank; `errorcount` reaching 0 signals a stall.
    Unsettled {
        /// Countdown decremented on every interaction this agent joins.
        errorcount: u32,
    },
    /// Participating in a global reset.
    Resetting {
        /// Slow-leader-election bit (`L, L → L, F`).
        leader: Leader,
        /// Propagate-Reset fields.
        core: ResetCore,
    },
}

impl OssState {
    /// A settled agent with the given rank and child count.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or `children > 2`.
    pub fn settled(rank: u32, children: u8) -> Self {
        assert!(rank >= 1, "ranks start at 1");
        assert!(children <= 2, "a rank-tree node has at most 2 children");
        OssState::Settled { rank, children }
    }

    /// An unsettled agent with the given error countdown.
    pub fn unsettled(errorcount: u32) -> Self {
        OssState::Unsettled { errorcount }
    }

    /// A resetting agent.
    pub fn resetting(leader: Leader, core: ResetCore) -> Self {
        OssState::Resetting { leader, core }
    }

    /// The leader bit, if the agent is resetting.
    pub fn leader(&self) -> Option<Leader> {
        match self {
            OssState::Resetting { leader, .. } => Some(*leader),
            _ => None,
        }
    }
}

impl ResetView for OssState {
    fn reset_core(&self) -> Option<ResetCore> {
        match self {
            OssState::Resetting { core, .. } => Some(*core),
            _ => None,
        }
    }

    fn set_reset_core(&mut self, new_core: ResetCore) {
        match self {
            OssState::Resetting { core, .. } => *core = new_core,
            other => panic!("set_reset_core on non-resetting state {other:?}"),
        }
    }

    fn enter_resetting(&mut self, core: ResetCore) {
        // Sec. 4: "all agents set themselves to L upon entering the
        // Resetting role".
        *self = OssState::Resetting { leader: Leader::L, core };
    }
}

/// The Optimal-Silent-SSR protocol instance for a population of exactly `n`
/// agents (SSLE protocols are strongly nonuniform — Theorem 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalSilentSsr {
    n: usize,
    e_max: u32,
    reset: ResetParams,
}

impl OptimalSilentSsr {
    /// Default multiplier for `E_max = Θ(n)`.
    pub const DEFAULT_E_MAX_MULTIPLIER: u32 = 10;
    /// Default multiplier for `D_max = Θ(n)`.
    pub const DEFAULT_D_MAX_MULTIPLIER: u32 = 4;
    /// Default multiplier for `R_max = Θ(log n)` (the paper proves its
    /// bounds with 60; smaller works at simulation scale — see DESIGN.md).
    pub const DEFAULT_R_MAX_MULTIPLIER: f64 = 4.0;

    /// Creates the protocol with the reproduction's default constants:
    /// `E_max = 10n`, `D_max = 4n`, `R_max = ⌈4 ln n⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        let e_max = Self::DEFAULT_E_MAX_MULTIPLIER * n as u32;
        let d_max = Self::DEFAULT_D_MAX_MULTIPLIER * n as u32;
        let r_max = ResetParams::r_max_for(n, Self::DEFAULT_R_MAX_MULTIPLIER);
        Self::with_params(
            n,
            e_max,
            ResetParams::new(r_max, d_max).expect("positive by construction"),
        )
    }

    /// Creates the protocol with explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `e_max == 0`.
    pub fn with_params(n: usize, e_max: u32, reset: ResetParams) -> Self {
        assert!(n >= 2, "population protocols need at least 2 agents");
        assert!(e_max > 0, "E_max must be positive");
        OptimalSilentSsr { n, e_max, reset }
    }

    /// The configured `E_max`.
    pub fn e_max(&self) -> u32 {
        self.e_max
    }

    /// The configured reset parameters.
    pub fn reset_params(&self) -> &ResetParams {
        &self.reset
    }

    /// A freshly triggered resetting state (used by error transitions and
    /// adversarial configuration builders).
    pub fn triggered_state(&self) -> OssState {
        OssState::Resetting { leader: Leader::L, core: ResetCore::triggered(&self.reset) }
    }

    /// Protocol 4: the `Reset` routine executed upon awakening from a
    /// Propagate-Reset. Leaders settle at the tree root (rank 1); followers
    /// become unsettled with a fresh `errorcount`.
    fn reset_agent(&self, s: &mut OssState) {
        match s.leader() {
            Some(Leader::L) => *s = OssState::Settled { rank: 1, children: 0 },
            Some(Leader::F) => *s = OssState::Unsettled { errorcount: self.e_max },
            None => unreachable!("Reset is only called on Resetting agents"),
        }
    }

    /// Whether `rank`'s next child slot exists in the full binary tree with
    /// `n` nodes (children of rank `i` are `2i` and `2i + 1`).
    fn child_slot_available(&self, rank: u32, children: u8) -> bool {
        children < 2 && 2 * rank as u64 + children as u64 <= self.n as u64
    }

    /// Triggers a global reset on both interacting agents (Protocol 3,
    /// lines 6–8 and 18–20).
    fn trigger(&self, a: &mut OssState, b: &mut OssState) {
        *a = self.triggered_state();
        *b = self.triggered_state();
    }
}

impl Protocol for OptimalSilentSsr {
    type State = OssState;
    // Pure function of the two states (the RNG parameter is unused), so the
    // count backend may memoize transitions.
    const DETERMINISTIC_INTERACT: bool = true;

    fn interact(&self, a: &mut OssState, b: &mut OssState, _rng: &mut SmallRng) {
        // Lines 1–2: delegate to Propagate-Reset if anyone is resetting.
        if a.is_resetting() || b.is_resetting() {
            if a.is_resetting() {
                propagate_reset(&self.reset, a, b, |s| self.reset_agent(s));
            } else {
                propagate_reset(&self.reset, b, a, |s| self.reset_agent(s));
            }
            // Lines 3–4: slow leader election among (still) resetting agents.
            if let (Some(Leader::L), Some(Leader::L)) = (a.leader(), b.leader()) {
                if let OssState::Resetting { leader, .. } = b {
                    *leader = Leader::F;
                }
            }
            return;
        }

        // Lines 5–8: two settled agents with the same rank → global reset.
        if let (OssState::Settled { rank: ra, .. }, OssState::Settled { rank: rb, .. }) = (&a, &b) {
            if ra == rb {
                self.trigger(a, b);
                return;
            }
        }

        // Lines 9–13: settled agents recruit unsettled agents into the rank
        // tree, in both directions.
        for _ in 0..2 {
            if let (OssState::Settled { rank, children }, OssState::Unsettled { .. }) = (&*a, &*b) {
                if self.child_slot_available(*rank, *children) {
                    let child_rank = 2 * *rank + *children as u32;
                    *b = OssState::Settled { rank: child_rank, children: 0 };
                    if let OssState::Settled { children, .. } = a {
                        *children += 1;
                    }
                }
            }
            std::mem::swap(a, b);
        }

        // Lines 14–20: unsettled agents count down; starving triggers a
        // global reset for both participants.
        for _ in 0..2 {
            if let OssState::Unsettled { errorcount } = a {
                *errorcount = errorcount.saturating_sub(1);
                if *errorcount == 0 {
                    self.trigger(a, b);
                    return;
                }
            }
            std::mem::swap(a, b);
        }
    }

    fn is_null_pair(&self, a: &OssState, b: &OssState) -> bool {
        // Only settled pairs with distinct ranks are inert: resetting agents
        // always tick timers/counters, unsettled agents always count down
        // (or trigger at 0), equal settled ranks trigger, and a
        // settled/unsettled pair either recruits or counts down.
        match (a, b) {
            (OssState::Settled { rank: ra, .. }, OssState::Settled { rank: rb, .. }) => ra != rb,
            _ => false,
        }
    }

    fn phase_of(&self, state: &OssState) -> Option<&'static str> {
        Some(crate::reset::phase_name(state))
    }
}

impl RankingProtocol for OptimalSilentSsr {
    fn population_size(&self) -> usize {
        self.n
    }

    fn rank_of(&self, state: &OssState) -> Option<usize> {
        match state {
            OssState::Settled { rank, .. } => Some(*rank as usize),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::rng_from_seed;
    use population::silence::is_silent_configuration;
    use population::Simulation;

    fn proto(n: usize) -> OptimalSilentSsr {
        OptimalSilentSsr::new(n)
    }

    fn rng() -> SmallRng {
        rng_from_seed(1234)
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn rejects_tiny_population() {
        OptimalSilentSsr::new(1);
    }

    #[test]
    #[should_panic(expected = "E_max must be positive")]
    fn rejects_zero_e_max() {
        OptimalSilentSsr::with_params(4, 0, ResetParams::new(1, 1).unwrap());
    }

    #[test]
    fn state_constructors_validate() {
        let s = OssState::settled(3, 1);
        assert_eq!(s, OssState::Settled { rank: 3, children: 1 });
    }

    #[test]
    #[should_panic(expected = "ranks start at 1")]
    fn settled_rank_zero_panics() {
        OssState::settled(0, 0);
    }

    #[test]
    #[should_panic(expected = "at most 2 children")]
    fn settled_three_children_panics() {
        OssState::settled(1, 3);
    }

    #[test]
    fn rank_collision_triggers_reset_with_leaders() {
        let p = proto(8);
        let mut a = OssState::settled(5, 0);
        let mut b = OssState::settled(5, 2);
        p.interact(&mut a, &mut b, &mut rng());
        for s in [&a, &b] {
            match s {
                OssState::Resetting { leader, core } => {
                    assert_eq!(*leader, Leader::L);
                    assert_eq!(core.resetcount, p.reset_params().r_max);
                }
                other => panic!("expected resetting, got {other:?}"),
            }
        }
    }

    #[test]
    fn distinct_ranks_are_inert() {
        let p = proto(8);
        let mut a = OssState::settled(1, 2);
        let mut b = OssState::settled(2, 2);
        let (a0, b0) = (a, b);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!((a, b), (a0, b0));
        assert!(p.is_null_pair(&a, &b));
    }

    #[test]
    fn settled_recruits_unsettled_as_first_child() {
        let p = proto(8);
        let mut a = OssState::settled(2, 0);
        let mut b = OssState::unsettled(100);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a, OssState::Settled { rank: 2, children: 1 });
        assert_eq!(b, OssState::Settled { rank: 4, children: 0 });
    }

    #[test]
    fn second_child_gets_odd_rank() {
        let p = proto(8);
        let mut a = OssState::settled(2, 1);
        let mut b = OssState::unsettled(100);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(b, OssState::Settled { rank: 5, children: 0 });
    }

    #[test]
    fn recruitment_works_in_responder_to_initiator_direction() {
        let p = proto(8);
        let mut a = OssState::unsettled(100);
        let mut b = OssState::settled(1, 0);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a, OssState::Settled { rank: 2, children: 0 });
        assert_eq!(b, OssState::Settled { rank: 1, children: 1 });
    }

    #[test]
    fn rank_n_is_assignable() {
        // n = 8: rank 4's children are 8 and 9; only 8 exists.
        let p = proto(8);
        let mut a = OssState::settled(4, 0);
        let mut b = OssState::unsettled(100);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(b, OssState::Settled { rank: 8, children: 0 });
        // The second slot (rank 9) is out of range: b2 stays unsettled.
        let mut b2 = OssState::unsettled(100);
        p.interact(&mut a, &mut b2, &mut rng());
        assert!(matches!(b2, OssState::Unsettled { .. }));
    }

    #[test]
    fn leaf_ranks_do_not_recruit() {
        let p = proto(8);
        let mut a = OssState::settled(5, 0); // children 10, 11 > 8
        let mut b = OssState::unsettled(100);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a, OssState::Settled { rank: 5, children: 0 });
        assert!(matches!(b, OssState::Unsettled { errorcount: 99 }));
    }

    #[test]
    fn unsettled_counts_down_on_every_interaction() {
        let p = proto(8);
        let mut a = OssState::unsettled(5);
        let mut b = OssState::unsettled(7);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a, OssState::Unsettled { errorcount: 4 });
        assert_eq!(b, OssState::Unsettled { errorcount: 6 });
    }

    #[test]
    fn starved_unsettled_triggers_reset_for_both() {
        let p = proto(8);
        let mut a = OssState::unsettled(1);
        let mut b = OssState::settled(5, 0); // leaf: cannot recruit
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting());
        assert!(b.is_resetting());
    }

    #[test]
    fn recruited_agent_skips_countdown_that_interaction() {
        let p = proto(8);
        let mut a = OssState::settled(1, 0);
        let mut b = OssState::unsettled(1); // would trigger if decremented
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(b, OssState::Settled { rank: 2, children: 0 });
    }

    #[test]
    fn slow_leader_election_among_resetting() {
        let p = proto(8);
        let core = ResetCore { resetcount: 0, delaytimer: 50 };
        let mut a = OssState::resetting(Leader::L, core);
        let mut b = OssState::resetting(Leader::L, core);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a.leader(), Some(Leader::L));
        assert_eq!(b.leader(), Some(Leader::F));
    }

    #[test]
    fn leader_follower_pair_is_stable_in_election() {
        let p = proto(8);
        let core = ResetCore { resetcount: 0, delaytimer: 50 };
        let mut a = OssState::resetting(Leader::F, core);
        let mut b = OssState::resetting(Leader::L, core);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a.leader(), Some(Leader::F));
        assert_eq!(b.leader(), Some(Leader::L));
    }

    #[test]
    fn awakening_leader_settles_at_root() {
        let p = proto(8);
        let mut a = OssState::resetting(Leader::L, ResetCore { resetcount: 0, delaytimer: 1 });
        let mut b = OssState::resetting(Leader::F, ResetCore { resetcount: 0, delaytimer: 50 });
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a, OssState::Settled { rank: 1, children: 0 });
        assert!(b.is_resetting());
    }

    #[test]
    fn awakening_follower_becomes_unsettled_with_full_errorcount() {
        let p = proto(8);
        let mut a = OssState::resetting(Leader::F, ResetCore { resetcount: 0, delaytimer: 1 });
        let mut b = OssState::resetting(Leader::F, ResetCore { resetcount: 0, delaytimer: 50 });
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a, OssState::Unsettled { errorcount: p.e_max() });
    }

    #[test]
    fn computing_agent_is_pulled_into_reset_as_leader_candidate() {
        let p = proto(8);
        let mut a = OssState::settled(3, 0);
        let mut b = p.triggered_state();
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting());
        assert_eq!(a.leader(), Some(Leader::L), "entering Resetting sets leader to L");
    }

    #[test]
    fn correct_configuration_is_silent_and_stable() {
        let n = 12;
        let p = proto(n);
        let states: Vec<OssState> = (1..=n as u32).map(|r| OssState::settled(r, 2)).collect();
        assert!(is_silent_configuration(&p, &states));
        let mut sim = Simulation::new(p, states, 7);
        sim.run(20_000);
        assert!(sim.is_ranked(), "a correct configuration must stay correct");
    }

    #[test]
    fn stabilizes_from_all_rank_one() {
        let n = 12;
        let p = proto(n);
        let mut sim = Simulation::new(p, vec![OssState::settled(1, 0); n], 3);
        let outcome = sim.run_until_stably_ranked(80_000_000, 10 * n as u64);
        assert!(outcome.is_converged(), "no convergence from all-rank-1: {outcome:?}");
        assert!(is_silent_configuration(sim.protocol(), sim.states()));
        assert_eq!(sim.leader_count(), 1);
    }

    #[test]
    fn stabilizes_from_all_unsettled_zero() {
        let n = 10;
        let p = proto(n);
        let mut sim = Simulation::new(p, vec![OssState::unsettled(0); n], 5);
        let outcome = sim.run_until_stably_ranked(80_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
    }

    #[test]
    fn stabilizes_from_all_dormant_followers() {
        // Pathological: every agent dormant, everyone a follower — the
        // protocol must still produce a leader eventually (awakened
        // followers starve, retrigger, and the next reset elects leaders).
        let n = 8;
        let p = proto(n);
        let core = ResetCore { resetcount: 0, delaytimer: 3 };
        let initial = vec![OssState::resetting(Leader::F, core); n];
        let mut sim = Simulation::new(p, initial, 11);
        let outcome = sim.run_until_stably_ranked(200_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
    }

    #[test]
    fn rank_of_and_leader_outputs() {
        let p = proto(4);
        assert_eq!(p.rank_of(&OssState::settled(3, 0)), Some(3));
        assert_eq!(p.rank_of(&OssState::unsettled(5)), None);
        assert_eq!(p.rank_of(&p.triggered_state()), None);
        assert!(p.is_leader(&OssState::settled(1, 0)));
        assert!(!p.is_leader(&OssState::settled(2, 0)));
    }
}
