//! Exact jump-chain acceleration of Silent-n-state-SSR.
//!
//! Simulating the `Θ(n²)`-time baseline with the generic engine costs
//! `Θ(n³)` scheduler draws, almost all of which are null interactions
//! (distinct ranks don't react). Because agents with equal ranks are
//! interchangeable and null interactions don't change the configuration,
//! the process is fully described by the rank **counts** and its jump
//! chain:
//!
//! * with `c_r` agents at rank `r`, an interaction is effective with
//!   probability `p = Σ_r c_r(c_r−1) / (n(n−1))`;
//! * the number of interactions until the next effective one is
//!   `Geometric(p)`;
//! * the effective interaction bumps one uniformly chosen agent of a rank
//!   drawn with probability ∝ `c_r(c_r−1)`.
//!
//! This samples from **exactly** the same distribution of (configuration
//! trajectory, interaction count) as the generic engine — it is an exact
//! simulation speed-up, not an approximation — and lets the Table 1
//! harness measure the baseline at population sizes where the naive engine
//! would need days. The equivalence is checked statistically in the tests.

use population::runner::rng_from_seed;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::cai_izumi_wada::CiwState;

/// Rank-count representation of a Silent-n-state-SSR configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CiwCounts {
    counts: Vec<u32>,
}

impl CiwCounts {
    /// Builds counts from per-agent states.
    ///
    /// # Panics
    ///
    /// Panics if any rank is `≥ n` (the states are not in the protocol's
    /// domain for this population size).
    pub fn from_states(states: &[CiwState]) -> Self {
        let n = states.len();
        let mut counts = vec![0u32; n];
        for s in states {
            assert!(
                (s.rank as usize) < n,
                "rank {} outside the n-state space of a {n}-agent population",
                s.rank
            );
            counts[s.rank as usize] += 1;
        }
        CiwCounts { counts }
    }

    /// Builds counts directly.
    ///
    /// # Panics
    ///
    /// Panics if the counts don't sum to their length (population size).
    pub fn from_counts(counts: Vec<u32>) -> Self {
        let n = counts.len() as u64;
        assert_eq!(
            counts.iter().map(|&c| c as u64).sum::<u64>(),
            n,
            "counts must describe exactly n agents"
        );
        CiwCounts { counts }
    }

    /// The population size.
    pub fn population_size(&self) -> usize {
        self.counts.len()
    }

    /// Agents currently at rank `r` (0-based).
    pub fn count(&self, r: usize) -> u32 {
        self.counts[r]
    }

    /// Whether the configuration is the stable permutation (every rank held
    /// exactly once).
    pub fn is_ranked(&self) -> bool {
        self.counts.iter().all(|&c| c == 1)
    }

    /// Sum of `c_r·(c_r−1)` — the number of ordered colliding pairs.
    fn colliding_pairs(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64 * (c as u64).saturating_sub(1)).sum()
    }
}

/// Runs the jump chain from `initial` until the stable permutation and
/// returns the exact number of scheduler interactions consumed (null ones
/// included), i.e. the quantity whose mean is the Θ(n²)·n entry of Table 1.
///
/// # Examples
///
/// ```
/// use ssle::cai_izumi_wada::CiwState;
/// use ssle::ciw_fast::{stabilization_interactions, CiwCounts};
///
/// let n = 64;
/// let initial = CiwCounts::from_states(&vec![CiwState::new(0); n]);
/// let interactions = stabilization_interactions(initial, 7);
/// assert!(interactions > 0);
/// ```
pub fn stabilization_interactions(initial: CiwCounts, seed: u64) -> u64 {
    let mut rng = rng_from_seed(seed);
    let mut counts = initial;
    let n = counts.population_size() as u64;
    let ordered_pairs = n * (n - 1);
    let mut interactions: u64 = 0;
    while !counts.is_ranked() {
        let w = counts.colliding_pairs();
        debug_assert!(w > 0, "not ranked but no colliding pair");
        interactions += geometric(&mut rng, w as f64 / ordered_pairs as f64);
        bump_random_collision(&mut counts, &mut rng, w);
    }
    interactions
}

/// Samples `Geometric(p)` on `{1, 2, …}` — the index of the first success
/// in a Bernoulli(p) sequence.
fn geometric(rng: &mut SmallRng, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 1;
    }
    // Inverse CDF: ⌈ln U / ln(1−p)⌉ with U uniform on (0, 1).
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    if k < 1.0 {
        1
    } else {
        k as u64
    }
}

/// Applies one effective interaction: a rank drawn ∝ `c_r(c_r−1)` loses one
/// agent to the next rank (mod n).
fn bump_random_collision(counts: &mut CiwCounts, rng: &mut SmallRng, total_weight: u64) {
    let mut target = rng.gen_range(0..total_weight);
    let n = counts.counts.len();
    for r in 0..n {
        let c = counts.counts[r] as u64;
        let w = c * c.saturating_sub(1);
        if target < w {
            counts.counts[r] -= 1;
            counts.counts[(r + 1) % n] += 1;
            return;
        }
        target -= w;
    }
    unreachable!("weights summed to total_weight");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cai_izumi_wada::CaiIzumiWada;
    use analysis::Summary;
    use population::runner::derive_seed;
    use population::Simulation;

    #[test]
    fn ranked_configuration_needs_zero_interactions() {
        let counts = CiwCounts::from_counts(vec![1; 8]);
        assert!(counts.is_ranked());
        assert_eq!(stabilization_interactions(counts, 1), 0);
    }

    #[test]
    #[should_panic(expected = "exactly n agents")]
    fn mismatched_counts_are_rejected() {
        CiwCounts::from_counts(vec![2, 1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "outside the n-state space")]
    fn out_of_domain_rank_is_rejected() {
        CiwCounts::from_states(&[CiwState::new(5), CiwState::new(0)]);
    }

    #[test]
    fn from_states_counts_correctly() {
        let counts =
            CiwCounts::from_states(&[CiwState::new(0), CiwState::new(0), CiwState::new(2)]);
        assert_eq!(counts.count(0), 2);
        assert_eq!(counts.count(1), 0);
        assert_eq!(counts.count(2), 1);
        assert!(!counts.is_ranked());
    }

    #[test]
    fn geometric_mean_matches_inverse_p() {
        let mut rng = rng_from_seed(3);
        let p = 0.02;
        let trials = 20_000;
        let mean: f64 =
            (0..trials).map(|_| geometric(&mut rng, p) as f64).sum::<f64>() / trials as f64;
        assert!((mean - 1.0 / p).abs() < 0.05 / p, "mean {mean} vs {}", 1.0 / p);
    }

    #[test]
    fn geometric_handles_certain_success() {
        let mut rng = rng_from_seed(4);
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn two_agent_collision_is_plain_geometric() {
        // n = 2, both at rank 0: exactly one effective interaction needed,
        // with success probability 1 (the only ordered pairs collide).
        let counts = CiwCounts::from_counts(vec![2, 0]);
        for seed in 0..10 {
            assert_eq!(stabilization_interactions(counts.clone(), seed), 1);
        }
    }

    #[test]
    fn jump_chain_matches_generic_engine_statistically() {
        // The acid test: identical expected stabilization interactions (up
        // to sampling error) between the exact jump chain and the generic
        // per-agent engine, from the all-zero configuration.
        let n = 12;
        let trials = 300;
        let fast: Vec<f64> = (0..trials)
            .map(|t| {
                let counts = CiwCounts::from_states(&vec![CiwState::new(0); n]);
                stabilization_interactions(counts, derive_seed(100, t)) as f64
            })
            .collect();
        let slow: Vec<f64> = (0..trials)
            .map(|t| {
                let mut sim = Simulation::new(
                    CaiIzumiWada::new(n),
                    vec![CiwState::new(0); n],
                    derive_seed(200, t),
                );
                sim.run_until_stably_ranked(u64::MAX, 0).interactions() as f64
            })
            .collect();
        let f = Summary::from_sample(&fast).unwrap();
        let s = Summary::from_sample(&slow).unwrap();
        // Compare means within joint 99% confidence half-widths.
        let slack = 2.6 * (f.std_err() + s.std_err());
        assert!(
            (f.mean() - s.mean()).abs() < slack,
            "fast {} ± {} vs slow {} ± {}",
            f.mean(),
            f.std_err(),
            s.mean(),
            s.std_err()
        );
    }

    #[test]
    fn jump_chain_matches_engine_from_barrier_too() {
        let n = 10;
        let trials = 200;
        let p = CaiIzumiWada::new(n);
        let fast: Vec<f64> = (0..trials)
            .map(|t| {
                let counts = CiwCounts::from_states(&p.worst_case_configuration());
                stabilization_interactions(counts, derive_seed(300, t)) as f64
            })
            .collect();
        let slow: Vec<f64> = (0..trials)
            .map(|t| {
                let mut sim = Simulation::new(p, p.worst_case_configuration(), derive_seed(400, t));
                sim.run_until_stably_ranked(u64::MAX, 0).interactions() as f64
            })
            .collect();
        let f = Summary::from_sample(&fast).unwrap();
        let s = Summary::from_sample(&slow).unwrap();
        let slack = 2.6 * (f.std_err() + s.std_err());
        assert!((f.mean() - s.mean()).abs() < slack, "fast {} vs slow {}", f.mean(), s.mean());
    }

    #[test]
    fn large_population_is_tractable() {
        // n = 512 would need ~10⁹ scheduler draws in the generic engine;
        // the jump chain does it in well under a second.
        let n = 512;
        let counts = CiwCounts::from_states(&vec![CiwState::new(0); n]);
        let interactions = stabilization_interactions(counts, 9);
        let parallel = interactions as f64 / n as f64;
        // Θ(n²) scale with the measured constant ≈ 0.2–0.35.
        assert!(
            (0.05 * (n * n) as f64..2.0 * (n * n) as f64).contains(&parallel),
            "parallel time {parallel} is off the Θ(n²) scale"
        );
    }
}
