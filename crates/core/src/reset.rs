//! The Propagate-Reset subprotocol (Protocol 2 of the paper).
//!
//! Both Optimal-Silent-SSR and Sublinear-Time-SSR reset the whole population
//! when an agent detects an error (a rank or name collision, a starved
//! unsettled agent, an oversized roster). Propagate-Reset provides the reset
//! mechanics:
//!
//! 1. a **triggered** agent sets `resetcount = R_max`;
//! 2. positivity of `resetcount` spreads by epidemic, decreasing along the
//!    chain (`max(a−1, b−1, 0)`), converting every *computing* agent it
//!    touches into the `Resetting` role (**propagating** agents);
//! 3. agents whose `resetcount` reaches 0 become **dormant** and count a
//!    `delaytimer` down from `D_max`, giving the whole population time to
//!    become dormant (and, in Optimal-Silent-SSR, time to run a slow leader
//!    election among the dormant agents);
//! 4. an agent whose timer expires executes the outer protocol's `Reset`
//!    routine and resumes computing; computing agents **awaken** dormant
//!    agents on contact, spreading the wake-up by epidemic.
//!
//! Crucially (paper, Sec. 3), after `Reset` an agent retains **no** memory
//! that a reset happened — otherwise the adversary could start every agent
//! in an "already reset" state and prevent the one needed reset from ever
//! occurring.
//!
//! The subprotocol is generic over the outer protocol's state via
//! [`ResetView`], which exposes the `Resetting`-role fields.

use std::fmt;

/// The `Resetting`-role fields of an agent: `resetcount ∈ {0, …, R_max}` and
/// (meaningful while `resetcount = 0`) `delaytimer ∈ {0, …, D_max}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResetCore {
    /// Propagation counter; positive = propagating, zero = dormant.
    pub resetcount: u32,
    /// Dormancy countdown, decremented once per interaction of the agent.
    pub delaytimer: u32,
}

impl ResetCore {
    /// A freshly **triggered** core (`resetcount = R_max`).
    pub fn triggered(params: &ResetParams) -> Self {
        ResetCore { resetcount: params.r_max, delaytimer: params.d_max }
    }

    /// A **dormant** core with a full delay (used when a computing agent is
    /// pulled into the reset by a propagating neighbor).
    pub fn dormant(params: &ResetParams) -> Self {
        ResetCore { resetcount: 0, delaytimer: params.d_max }
    }

    /// Whether the agent is propagating (`resetcount > 0`).
    pub fn is_propagating(&self) -> bool {
        self.resetcount > 0
    }

    /// Whether the agent is dormant (`resetcount = 0`).
    pub fn is_dormant(&self) -> bool {
        self.resetcount == 0
    }
}

/// Tuning constants of Propagate-Reset.
///
/// The paper requires `R_max = Ω(log n)` (it uses `60·ln n`) and
/// `D_max = Ω(R_max)`; Optimal-Silent-SSR uses `D_max = Θ(n)` while
/// Sublinear-Time-SSR uses `D_max = Θ(log n)`. The concrete multipliers are
/// configurable; see the protocol constructors for the defaults used in this
/// reproduction (smaller than the proofs' worst-case constants, chosen so
/// laptop-scale simulations stabilize quickly while preserving the scaling
/// shape — see DESIGN.md, "Faithfulness notes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetParams {
    /// Maximum (initial) value of `resetcount`.
    pub r_max: u32,
    /// Dormancy delay loaded into `delaytimer`.
    pub d_max: u32,
}

impl ResetParams {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`ResetParamsError`] if `r_max = 0` (a trigger could not
    /// propagate) or `d_max = 0` (awakening would race the propagation).
    pub fn new(r_max: u32, d_max: u32) -> Result<Self, ResetParamsError> {
        if r_max == 0 {
            return Err(ResetParamsError::ZeroRMax);
        }
        if d_max == 0 {
            return Err(ResetParamsError::ZeroDMax);
        }
        Ok(ResetParams { r_max, d_max })
    }

    /// `R_max = max(1, ⌈multiplier · ln n⌉)` as in the paper's
    /// `R_max = Θ(log n)` requirement.
    pub fn r_max_for(n: usize, multiplier: f64) -> u32 {
        ((n as f64).ln() * multiplier).ceil().max(1.0) as u32
    }
}

/// Error constructing [`ResetParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetParamsError {
    /// `r_max` was zero.
    ZeroRMax,
    /// `d_max` was zero.
    ZeroDMax,
}

impl fmt::Display for ResetParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResetParamsError::ZeroRMax => write!(f, "R_max must be positive"),
            ResetParamsError::ZeroDMax => write!(f, "D_max must be positive"),
        }
    }
}

impl std::error::Error for ResetParamsError {}

/// How the outer protocol's state exposes Propagate-Reset.
///
/// Implementations map the abstract roles onto the protocol's concrete state
/// enum: "computing" (any non-`Resetting` role), "propagating" and "dormant"
/// (`Resetting` with positive / zero `resetcount`).
pub trait ResetView {
    /// The reset fields, or `None` when the agent is computing.
    fn reset_core(&self) -> Option<ResetCore>;

    /// Overwrites the reset fields.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the agent is not in the `Resetting` role.
    fn set_reset_core(&mut self, core: ResetCore);

    /// Converts a computing agent into the `Resetting` role with the given
    /// core, deleting the fields of its previous role (and performing any
    /// protocol-specific entry action, e.g. Optimal-Silent-SSR sets its
    /// leader bit to `L`).
    fn enter_resetting(&mut self, core: ResetCore);

    /// Whether the agent is currently in the `Resetting` role.
    fn is_resetting(&self) -> bool {
        self.reset_core().is_some()
    }
}

/// Canonical phase names for protocols built on Propagate-Reset, as reported
/// through `Protocol::phase_of` to simulation observers.
pub mod phase {
    /// Running the outer protocol (not in the `Resetting` role).
    pub const COMPUTING: &str = "computing";
    /// Spreading the reset epidemic (`resetcount > 0`).
    pub const PROPAGATING: &str = "propagating";
    /// Waiting out the delay timer (`resetcount = 0`).
    pub const DORMANT: &str = "dormant";
}

/// Maps a state's reset view onto the canonical phase names ([`phase`]).
///
/// The awakening step of the cycle (dormant → computing on timer expiry or
/// contact with a computing agent) shows up to observers as a transition back
/// to [`phase::COMPUTING`] rather than as a distinct phase — an agent is only
/// ever *between* phases for the duration of one interaction.
pub fn phase_name<S: ResetView>(state: &S) -> &'static str {
    match state.reset_core() {
        None => phase::COMPUTING,
        Some(core) if core.is_propagating() => phase::PROPAGATING,
        Some(_) => phase::DORMANT,
    }
}

/// Which agents executed the outer protocol's `Reset` during one
/// Propagate-Reset step (i.e. awakened from dormancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Awakened {
    /// The first argument of [`propagate_reset`] awakened.
    pub first: bool,
    /// The second argument of [`propagate_reset`] awakened.
    pub second: bool,
}

/// Executes one interaction of Propagate-Reset (Protocol 2) between `x`
/// (which must be in the `Resetting` role) and `y` (any role), calling
/// `reset_fn` on each agent that awakens.
///
/// `reset_fn` is the outer protocol's `Reset` routine (Protocol 4 for
/// Optimal-Silent-SSR, Protocol 6 for Sublinear-Time-SSR); it must move the
/// agent out of the `Resetting` role. Returns which agents awakened.
///
/// # Panics
///
/// Panics if `x` is not resetting, or if `reset_fn` leaves an agent in the
/// `Resetting` role.
pub fn propagate_reset<S: ResetView>(
    params: &ResetParams,
    x: &mut S,
    y: &mut S,
    mut reset_fn: impl FnMut(&mut S),
) -> Awakened {
    let x_core = x.reset_core().expect("propagate_reset requires a Resetting first agent");

    // Line 1–3: a propagating agent pulls a computing partner into the
    // Resetting role as a dormant agent with a full delay.
    if x_core.is_propagating() && !y.is_resetting() {
        y.enter_resetting(ResetCore::dormant(params));
    }

    // Line 4–5: resetcounts equalize to max(a−1, b−1, 0).
    let mut x_new = x.reset_core().expect("x is resetting");
    let mut y_core_opt = y.reset_core();
    let x_was_propagating = x_core.is_propagating();
    let y_was_propagating = y_core_opt.is_some_and(|c| c.is_propagating());
    if let Some(y_core) = y_core_opt {
        let v = x_new.resetcount.max(y_core.resetcount).saturating_sub(1);
        x_new.resetcount = v;
        y_core_opt = Some(ResetCore { resetcount: v, ..y_core });
    }

    // Lines 6–12 for each resetting, now-dormant agent.
    let mut awakened = Awakened::default();
    let y_is_resetting = y_core_opt.is_some();

    // First agent.
    if x_new.is_dormant() {
        if x_was_propagating {
            // resetcount just became 0 — initialize the delay.
            x_new.delaytimer = params.d_max;
        } else {
            x_new.delaytimer = x_new.delaytimer.saturating_sub(1);
        }
        x.set_reset_core(x_new);
        if x_new.delaytimer == 0 || !y_is_resetting {
            reset_fn(x);
            assert!(!x.is_resetting(), "Reset must leave the Resetting role");
            awakened.first = true;
        }
    } else {
        x.set_reset_core(x_new);
    }

    // Second agent.
    if let Some(mut y_core) = y_core_opt {
        if y_core.is_dormant() {
            if y_was_propagating {
                y_core.delaytimer = params.d_max;
            } else {
                y_core.delaytimer = y_core.delaytimer.saturating_sub(1);
            }
            y.set_reset_core(y_core);
            // Line 11's "b.role ≠ Resetting" can only release the *first*
            // agent (y is resetting here by construction), so only the timer
            // can awaken y.
            if y_core.delaytimer == 0 {
                reset_fn(y);
                assert!(!y.is_resetting(), "Reset must leave the Resetting role");
                awakened.second = true;
            }
        } else {
            y.set_reset_core(y_core);
        }
    }

    awakened
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal outer protocol: computing state is a unit marker.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum S {
        Computing,
        Resetting(ResetCore),
    }

    impl ResetView for S {
        fn reset_core(&self) -> Option<ResetCore> {
            match self {
                S::Computing => None,
                S::Resetting(core) => Some(*core),
            }
        }
        fn set_reset_core(&mut self, core: ResetCore) {
            assert!(matches!(self, S::Resetting(_)));
            *self = S::Resetting(core);
        }
        fn enter_resetting(&mut self, core: ResetCore) {
            *self = S::Resetting(core);
        }
    }

    fn params() -> ResetParams {
        ResetParams::new(5, 10).unwrap()
    }

    fn reset_to_computing(s: &mut S) {
        *s = S::Computing;
    }

    #[test]
    fn params_validation() {
        assert_eq!(ResetParams::new(0, 1), Err(ResetParamsError::ZeroRMax));
        assert_eq!(ResetParams::new(1, 0), Err(ResetParamsError::ZeroDMax));
        assert!(ResetParams::new(1, 1).is_ok());
        assert!(ResetParamsError::ZeroRMax.to_string().contains("R_max"));
    }

    #[test]
    fn r_max_for_scales_logarithmically() {
        let a = ResetParams::r_max_for(16, 2.0);
        let b = ResetParams::r_max_for(256, 2.0);
        assert!(b > a);
        assert!(ResetParams::r_max_for(1, 2.0) >= 1, "never zero");
    }

    #[test]
    fn propagating_converts_computing_partner() {
        let p = params();
        let mut a = S::Resetting(ResetCore::triggered(&p));
        let mut b = S::Computing;
        propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        let a_core = a.reset_core().unwrap();
        let b_core = b.reset_core().unwrap();
        // Both end at max(R_max − 1, 0).
        assert_eq!(a_core.resetcount, p.r_max - 1);
        assert_eq!(b_core.resetcount, p.r_max - 1);
    }

    #[test]
    fn chain_decreases_resetcount_by_one_per_hop() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 3, delaytimer: 0 });
        let mut b = S::Computing;
        propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert_eq!(b.reset_core().unwrap().resetcount, 2);
        let mut c = S::Computing;
        propagate_reset(&p, &mut b, &mut c, reset_to_computing);
        assert_eq!(c.reset_core().unwrap().resetcount, 1);
    }

    #[test]
    fn resetcount_reaching_zero_initializes_delay() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 1, delaytimer: 3 });
        let mut b = S::Resetting(ResetCore { resetcount: 1, delaytimer: 3 });
        let awake = propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert_eq!(awake, Awakened::default(), "fresh dormancy must not awaken");
        assert_eq!(a.reset_core().unwrap(), ResetCore { resetcount: 0, delaytimer: p.d_max });
        assert_eq!(b.reset_core().unwrap(), ResetCore { resetcount: 0, delaytimer: p.d_max });
    }

    #[test]
    fn dormant_pair_counts_down_together() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 0, delaytimer: 4 });
        let mut b = S::Resetting(ResetCore { resetcount: 0, delaytimer: 9 });
        let awake = propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert_eq!(awake, Awakened::default());
        assert_eq!(a.reset_core().unwrap().delaytimer, 3);
        assert_eq!(b.reset_core().unwrap().delaytimer, 8);
    }

    #[test]
    fn timer_expiry_awakens() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 0, delaytimer: 1 });
        let mut b = S::Resetting(ResetCore { resetcount: 0, delaytimer: 5 });
        let awake = propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert!(awake.first);
        assert!(!awake.second);
        assert_eq!(a, S::Computing);
        assert!(b.is_resetting());
    }

    #[test]
    fn computing_partner_awakens_dormant_agent_by_epidemic() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 0, delaytimer: 7 });
        let mut b = S::Computing;
        let awake = propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert!(awake.first, "dormant agent meeting a computing agent must awaken");
        assert_eq!(a, S::Computing);
        assert_eq!(b, S::Computing, "computing partner is untouched");
    }

    #[test]
    fn propagating_agent_is_not_awakened_by_computing_partner() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 4, delaytimer: 0 });
        let mut b = S::Computing;
        let awake = propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert!(!awake.first);
        assert!(a.is_resetting());
        assert!(b.is_resetting(), "partner was pulled into the reset instead");
    }

    #[test]
    fn propagating_meeting_dormant_reraises_dormant() {
        let p = params();
        let mut a = S::Resetting(ResetCore { resetcount: 4, delaytimer: 0 });
        let mut b = S::Resetting(ResetCore { resetcount: 0, delaytimer: 2 });
        propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert_eq!(a.reset_core().unwrap().resetcount, 3);
        assert_eq!(b.reset_core().unwrap().resetcount, 3, "dormant agent re-joins propagation");
    }

    #[test]
    fn adversarial_zero_timer_dormant_awakens_on_next_interaction() {
        let p = params();
        // The adversary may start an agent dormant with delaytimer already 0.
        let mut a = S::Resetting(ResetCore { resetcount: 0, delaytimer: 0 });
        let mut b = S::Resetting(ResetCore { resetcount: 0, delaytimer: 5 });
        let awake = propagate_reset(&p, &mut a, &mut b, reset_to_computing);
        assert!(awake.first);
    }

    #[test]
    #[should_panic(expected = "requires a Resetting first agent")]
    fn first_agent_must_be_resetting() {
        let p = params();
        let mut a = S::Computing;
        let mut b = S::Computing;
        propagate_reset(&p, &mut a, &mut b, reset_to_computing);
    }

    #[test]
    fn full_population_reset_round_trip() {
        // Drive a 6-agent population by hand through trigger → propagation →
        // dormancy → awakening, using a deterministic round-robin schedule.
        let p = ResetParams::new(4, 6).unwrap();
        let n = 6;
        let mut pop: Vec<S> = vec![S::Computing; n];
        pop[0] = S::Resetting(ResetCore::triggered(&p));
        let mut steps = 0;
        let mut schedule = (0..n).cycle();
        while pop.iter().any(|s| s.is_resetting()) {
            let i = schedule.next().unwrap();
            let j = (i + 1) % n;
            let (x, y) = (pop[i], pop[j]);
            let (mut xi, mut yj) = (x, y);
            if xi.is_resetting() {
                propagate_reset(&p, &mut xi, &mut yj, reset_to_computing);
            } else if yj.is_resetting() {
                propagate_reset(&p, &mut yj, &mut xi, reset_to_computing);
            }
            pop[i] = xi;
            pop[j] = yj;
            steps += 1;
            assert!(steps < 10_000, "reset failed to terminate");
        }
        assert!(pop.iter().all(|s| *s == S::Computing));
    }
}
