//! Silent-n-state-SSR (Protocol 1): the baseline of Cai, Izumi, and Wada.
//!
//! The only previously known self-stabilizing leader-election protocol for
//! complete graphs, with the optimal state count of exactly `n` states per
//! agent — and `Θ(n²)` expected (and WHP) parallel stabilization time, the
//! baseline row of the paper's Table 1.
//!
//! The protocol is one transition: when the initiator and responder hold the
//! same rank, the responder moves up one rank modulo `n`:
//!
//! ```text
//! if a.rank = b.rank then b.rank ← (b.rank + 1) mod n
//! ```
//!
//! The stable silent configurations are exactly the rank permutations. The
//! `Ω(n²)` lower bound comes from a "barrier" configuration (Sec. 2): with
//! two agents at rank 0 and none at rank `n − 1`, `n − 1` consecutive
//! bottleneck meetings of rank-equal pairs are needed, each costing `Θ(n)`
//! expected parallel time ([`CaiIzumiWada::worst_case_configuration`] builds it).
//!
//! # Examples
//!
//! ```
//! use population::Simulation;
//! use ssle::cai_izumi_wada::CaiIzumiWada;
//!
//! let n = 8;
//! let protocol = CaiIzumiWada::new(n);
//! let mut sim = Simulation::new(protocol, vec![CiwState::new(0); n], 5);
//! let outcome = sim.run_until_stably_ranked(10_000_000, 0);
//! assert!(outcome.is_converged());
//! # use ssle::cai_izumi_wada::CiwState;
//! ```

use population::{Protocol, RankingProtocol};
use rand::rngs::SmallRng;

/// An agent's state: its rank in `{0, …, n − 1}` (the paper keeps the
/// 0-based form of \[22\] "to simplify the modular arithmetic"; the ranking
/// output is `rank + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CiwState {
    /// 0-based rank.
    pub rank: u32,
}

impl CiwState {
    /// Creates a state with the given 0-based rank.
    pub fn new(rank: u32) -> Self {
        CiwState { rank }
    }
}

/// The Silent-n-state-SSR protocol instance for exactly `n` agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaiIzumiWada {
    n: usize,
}

impl CaiIzumiWada {
    /// Creates the protocol for a population of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population protocols need at least 2 agents");
        CaiIzumiWada { n }
    }

    /// The `Ω(n²)` "barrier" configuration from the paper's lower-bound
    /// argument: two agents at rank 0, one agent at each rank `1..n − 1`,
    /// and nobody at rank `n − 1`.
    pub fn worst_case_configuration(&self) -> Vec<CiwState> {
        let mut states = vec![CiwState::new(0)];
        states.extend((0..self.n as u32 - 1).map(CiwState::new));
        states
    }
}

impl Protocol for CaiIzumiWada {
    type State = CiwState;
    // Pure function of the two states (the RNG parameter is unused), so the
    // count backend may memoize transitions.
    const DETERMINISTIC_INTERACT: bool = true;

    fn interact(&self, a: &mut CiwState, b: &mut CiwState, _rng: &mut SmallRng) {
        if a.rank == b.rank {
            b.rank = (b.rank + 1) % self.n as u32;
        }
    }

    fn is_null_pair(&self, a: &CiwState, b: &CiwState) -> bool {
        a.rank != b.rank
    }
}

impl RankingProtocol for CaiIzumiWada {
    fn population_size(&self) -> usize {
        self.n
    }

    fn rank_of(&self, state: &CiwState) -> Option<usize> {
        Some(state.rank as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::rng_from_seed;
    use population::silence::is_silent_configuration;
    use population::Simulation;

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn rejects_singleton() {
        CaiIzumiWada::new(1);
    }

    #[test]
    fn collision_bumps_only_the_responder() {
        let p = CaiIzumiWada::new(4);
        let mut rng = rng_from_seed(0);
        let (mut a, mut b) = (CiwState::new(2), CiwState::new(2));
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!((a.rank, b.rank), (2, 3));
    }

    #[test]
    fn rank_wraps_around() {
        let p = CaiIzumiWada::new(4);
        let mut rng = rng_from_seed(0);
        let (mut a, mut b) = (CiwState::new(3), CiwState::new(3));
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!(b.rank, 0);
    }

    #[test]
    fn distinct_ranks_are_null() {
        let p = CaiIzumiWada::new(4);
        assert!(p.is_null_pair(&CiwState::new(1), &CiwState::new(2)));
        assert!(!p.is_null_pair(&CiwState::new(1), &CiwState::new(1)));
    }

    #[test]
    fn output_is_one_based() {
        let p = CaiIzumiWada::new(4);
        assert_eq!(p.rank_of(&CiwState::new(0)), Some(1));
        assert!(p.is_leader(&CiwState::new(0)));
        assert!(!p.is_leader(&CiwState::new(1)));
    }

    #[test]
    fn worst_case_configuration_shape() {
        let p = CaiIzumiWada::new(6);
        let cfg = p.worst_case_configuration();
        assert_eq!(cfg.len(), 6);
        assert_eq!(cfg.iter().filter(|s| s.rank == 0).count(), 2);
        assert_eq!(cfg.iter().filter(|s| s.rank == 5).count(), 0);
        for r in 1..5 {
            assert_eq!(cfg.iter().filter(|s| s.rank == r).count(), 1);
        }
    }

    #[test]
    fn stabilizes_from_all_zero() {
        let n = 8;
        let mut sim = Simulation::new(CaiIzumiWada::new(n), vec![CiwState::new(0); n], 1);
        let outcome = sim.run_until_stably_ranked(50_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
        assert!(is_silent_configuration(sim.protocol(), sim.states()));
        assert_eq!(sim.leader_count(), 1);
    }

    #[test]
    fn stabilizes_from_barrier_configuration() {
        let n = 8;
        let p = CaiIzumiWada::new(n);
        let mut sim = Simulation::new(p, p.worst_case_configuration(), 2);
        let outcome = sim.run_until_stably_ranked(50_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
    }

    #[test]
    fn permutation_is_stable() {
        let n = 8;
        let p = CaiIzumiWada::new(n);
        let states: Vec<CiwState> = (0..n as u32).map(CiwState::new).collect();
        assert!(is_silent_configuration(&p, &states));
        let mut sim = Simulation::new(p, states, 3);
        sim.run(100_000);
        assert!(sim.is_ranked());
    }

    #[test]
    fn barrier_needs_a_full_cycle_of_bumps() {
        // From the barrier configuration, stabilization requires the doubled
        // rank to walk all the way to n − 1: verify the final configuration
        // is the full permutation.
        let n = 6;
        let p = CaiIzumiWada::new(n);
        let mut sim = Simulation::new(p, p.worst_case_configuration(), 4);
        sim.run_until_stably_ranked(50_000_000, 0);
        let mut ranks: Vec<u32> = sim.states().iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..n as u32).collect::<Vec<_>>());
    }
}
