//! Sublinear-Time-SSR (Protocols 5–8 of the paper, Sec. 5).
//!
//! A family of non-silent self-stabilizing ranking protocols parameterized
//! by the history depth `H`:
//!
//! * agents carry a random `name` of `3·log₂ n` bits;
//! * the set of all names spreads by epidemic in the `roster` field;
//! * an agent's `rank` is its name's lexicographic position in the roster,
//!   assigned once the roster holds `n` names;
//! * duplicate names are caught by
//!   [`Detect-Name-Collision`](crate::sublinear::collision) through chains
//!   of up to `H + 1` interactions; oversized rosters reveal "ghost" names;
//!   either error triggers a [`Propagate-Reset`](crate::reset), after which
//!   agents draw fresh random names bit-by-bit during their dormancy.
//!
//! Expected stabilization time is `Θ(H · n^{1/(H+1)})` for constant `H` and
//! `Θ(log n)` — asymptotically optimal — for `H = Θ(log n)`, at the price of
//! an (at least) exponential state count (Theorem 5.1). `H = 0` degenerates
//! to direct collision detection: a *silent* `Θ(n)`-time variant.
//!
//! # Examples
//!
//! ```
//! use population::Simulation;
//! use ssle::sublinear::SublinearTimeSsr;
//!
//! let n = 16;
//! let protocol = SublinearTimeSsr::new(n, 2);
//! // Adversarial start: every agent has the same name.
//! let initial = vec![protocol.uniform_named_state(7); n];
//! let mut sim = Simulation::new(protocol, initial, 99);
//! let outcome = sim.run_until_stably_ranked(40_000_000, 10 * n as u64);
//! assert!(outcome.is_converged());
//! ```

pub mod collision;
pub mod history_tree;

use std::collections::BTreeSet;
use std::sync::Arc;

use population::{Protocol, RankingProtocol};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::name::{Name, MAX_NAME_BITS};
use crate::reset::{propagate_reset, ResetCore, ResetParams, ResetView};
use collision::{detect_name_collision, CollisionParams};
use history_tree::HistoryTree;

/// The `Collecting`-role fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collecting {
    /// Write-only rank output; `None` renders no output yet.
    pub rank: Option<u32>,
    /// The set of names heard so far, shared structurally after merges.
    pub roster: Arc<BTreeSet<Name>>,
    /// Interaction-history tree for collision detection.
    pub tree: HistoryTree,
}

/// An agent's role in Sublinear-Time-SSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubRole {
    /// Normal operation: collecting names and watching for collisions.
    Collecting(Collecting),
    /// Participating in a global reset.
    Resetting(ResetCore),
}

/// One agent's state: its name plus role-specific fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubState {
    /// The agent's (possibly partial) name.
    pub name: Name,
    /// Role-dependent fields.
    pub role: SubRole,
}

impl SubState {
    /// A clean post-reset state for the given name (Protocol 6's result).
    pub fn fresh(name: Name) -> Self {
        SubState {
            name,
            role: SubRole::Collecting(Collecting {
                rank: None,
                roster: Arc::new(BTreeSet::from([name])),
                tree: HistoryTree::singleton(name),
            }),
        }
    }

    /// The `Collecting` fields, if the agent is collecting.
    pub fn collecting(&self) -> Option<&Collecting> {
        match &self.role {
            SubRole::Collecting(c) => Some(c),
            SubRole::Resetting(_) => None,
        }
    }
}

impl ResetView for SubState {
    fn reset_core(&self) -> Option<ResetCore> {
        match &self.role {
            SubRole::Resetting(core) => Some(*core),
            SubRole::Collecting(_) => None,
        }
    }

    fn set_reset_core(&mut self, core: ResetCore) {
        match &mut self.role {
            SubRole::Resetting(c) => *c = core,
            SubRole::Collecting(_) => panic!("set_reset_core on a collecting agent"),
        }
    }

    fn enter_resetting(&mut self, core: ResetCore) {
        self.role = SubRole::Resetting(core);
    }
}

/// The Sublinear-Time-SSR protocol instance for a population of exactly `n`
/// agents with history depth `H`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SublinearTimeSsr {
    n: usize,
    name_bits: u8,
    collision: CollisionParams,
    reset: ResetParams,
}

impl SublinearTimeSsr {
    /// Creates the protocol with the reproduction's default constants:
    /// names of `3·⌈log₂ n⌉` bits, `S_max = 4n²`,
    /// `T_H = ⌈4 (H+1) n^{1/(H+1)}⌉`, `R_max = ⌈4 ln n⌉`, and
    /// `D_max = max(2 R_max, 2·name_bits)` (the paper's `Θ(log n)`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 2²⁰` (names would exceed 60 bits).
    pub fn new(n: usize, h: u32) -> Self {
        let name_bits = Self::name_bits_for(n);
        let collision = CollisionParams::for_population(n, h);
        let r_max = ResetParams::r_max_for(n, 4.0);
        let d_max = (2 * r_max).max(2 * name_bits as u32);
        Self::with_params(
            n,
            name_bits,
            collision,
            ResetParams::new(r_max, d_max).expect("positive"),
        )
    }

    /// Creates the protocol with the time-optimal depth `H = ⌈log₂ n⌉`
    /// (Theorem 5.1's `Θ(log n)`-time configuration).
    pub fn log_depth(n: usize) -> Self {
        Self::new(n, Self::name_bits_for(n) as u32 / 3)
    }

    /// Creates the protocol with explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `name_bits` is 0 or exceeds
    /// [`MAX_NAME_BITS`].
    pub fn with_params(
        n: usize,
        name_bits: u8,
        collision: CollisionParams,
        reset: ResetParams,
    ) -> Self {
        assert!(n >= 2, "population protocols need at least 2 agents");
        assert!(
            (1..=MAX_NAME_BITS).contains(&name_bits),
            "name length must be in 1..={MAX_NAME_BITS} bits"
        );
        SublinearTimeSsr { n, name_bits, collision, reset }
    }

    /// `3·⌈log₂ n⌉`, the paper's name length.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the result would exceed [`MAX_NAME_BITS`].
    pub fn name_bits_for(n: usize) -> u8 {
        assert!(n >= 2, "population protocols need at least 2 agents");
        let bits = 3 * (usize::BITS - (n - 1).leading_zeros()).max(1) as u8;
        assert!(bits <= MAX_NAME_BITS, "population too large: names would need {bits} bits");
        bits
    }

    /// The history depth `H`.
    pub fn h(&self) -> u32 {
        self.collision.h
    }

    /// The configured name length in bits.
    pub fn name_bits(&self) -> u8 {
        self.name_bits
    }

    /// The collision-detection constants.
    pub fn collision_params(&self) -> &CollisionParams {
        &self.collision
    }

    /// The reset constants.
    pub fn reset_params(&self) -> &ResetParams {
        &self.reset
    }

    /// A fresh full-length uniformly random name.
    pub fn random_name(&self, rng: &mut SmallRng) -> Name {
        let mask = if self.name_bits == 64 { u64::MAX } else { (1u64 << self.name_bits) - 1 };
        Name::from_bits(rng.gen::<u64>() & mask, self.name_bits)
    }

    /// A clean state whose name encodes `value` (useful for constructing
    /// deterministic configurations in tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the configured name length.
    pub fn uniform_named_state(&self, value: u64) -> SubState {
        SubState::fresh(Name::from_bits(value, self.name_bits))
    }

    /// A freshly triggered resetting state.
    pub fn triggered_state(&self) -> SubState {
        SubState {
            name: Name::empty(),
            role: SubRole::Resetting(ResetCore::triggered(&self.reset)),
        }
    }

    /// Protocol 6: `Reset` — back to `Collecting` with a singleton roster
    /// and tree; the rank output is cleared (see DESIGN.md on this choice).
    fn reset_agent(&self, s: &mut SubState) {
        s.role = SubRole::Collecting(Collecting {
            rank: None,
            roster: Arc::new(BTreeSet::from([s.name])),
            tree: HistoryTree::singleton(s.name),
        });
    }

    fn trigger(&self, a: &mut SubState, b: &mut SubState) {
        *a = self.triggered_state();
        *b = self.triggered_state();
    }

    /// The Collecting–Collecting step (Protocol 5 lines 1–9); returns `true`
    /// if an error was detected and both agents must be reset.
    fn collecting_interaction(
        &self,
        a: &mut SubState,
        b: &mut SubState,
        rng: &mut SmallRng,
    ) -> bool {
        let a_name = a.name;
        let b_name = b.name;
        let (ca, cb) = match (&mut a.role, &mut b.role) {
            (SubRole::Collecting(x), SubRole::Collecting(y)) => (x, y),
            _ => unreachable!("collecting_interaction requires two collecting agents"),
        };

        // Reproduction addition (see DESIGN.md): an agent whose roster does
        // not contain its own name is corrupt — locally detectable, and
        // required so that every real name eventually reaches every roster.
        if !ca.roster.contains(&a_name) || !cb.roster.contains(&b_name) {
            return true;
        }

        // Line 2, first disjunct: collision detection (also performs the
        // history-tree update when no collision is found).
        if detect_name_collision(&self.collision, a_name, &mut ca.tree, b_name, &mut cb.tree, rng) {
            return true;
        }

        // Lines 2 & 5–9: roster merge, ghost detection, rank assignment.
        let was_shared = Arc::ptr_eq(&ca.roster, &cb.roster);
        if !was_shared {
            if *ca.roster != *cb.roster {
                let mut union = (*ca.roster).clone();
                union.extend(cb.roster.iter().copied());
                if union.len() > self.n {
                    return true; // ghost name detected
                }
                ca.roster = Arc::new(union);
            }
            cb.roster = Arc::clone(&ca.roster);
        }
        if ca.roster.len() == self.n && (!was_shared || ca.rank.is_none() || cb.rank.is_none()) {
            ca.rank = Some(rank_in_roster(&ca.roster, a_name));
            cb.rank = Some(rank_in_roster(&cb.roster, b_name));
        }
        false
    }
}

/// 1-based lexicographic position of `name` in `roster`.
fn rank_in_roster(roster: &BTreeSet<Name>, name: Name) -> u32 {
    1 + roster.range(..name).count() as u32
}

impl Protocol for SublinearTimeSsr {
    type State = SubState;

    fn interact(&self, a: &mut SubState, b: &mut SubState, rng: &mut SmallRng) {
        if a.collecting().is_some() && b.collecting().is_some() {
            // Lines 1–9.
            if self.collecting_interaction(a, b, rng) {
                // Lines 3–4: both agents trigger a reset. (Their names are
                // cleared here rather than at their next interaction; see
                // DESIGN.md, "Faithfulness notes".)
                self.trigger(a, b);
            }
            return;
        }

        // Lines 10–11: someone is resetting.
        if a.is_resetting() {
            propagate_reset(&self.reset, a, b, |s| self.reset_agent(s));
        } else {
            propagate_reset(&self.reset, b, a, |s| self.reset_agent(s));
        }

        // Lines 12–15: propagating agents erase their names; dormant agents
        // grow a fresh random name one bit per interaction.
        for s in [&mut *a, &mut *b] {
            if let SubRole::Resetting(core) = &s.role {
                if core.resetcount > 0 {
                    s.name = Name::empty();
                } else if s.name.len() < self.name_bits {
                    s.name = s.name.with_appended(rng.gen());
                }
            }
        }
    }

    fn is_null_pair(&self, a: &SubState, b: &SubState) -> bool {
        // Only the H = 0 (tree-free) variant is silent: any resetting agent
        // ticks timers, and for H ≥ 1 every collecting pair refreshes
        // history-tree edges. For H = 0 a collecting pair is inert iff
        // nothing in lines 1–9 would change or trigger.
        let (Some(ca), Some(cb)) = (a.collecting(), b.collecting()) else {
            return false;
        };
        if a.name == b.name {
            return false; // direct collision would trigger
        }
        if self.collision.h > 0 {
            return false; // a fresh history edge would be grafted
        }
        if ca.tree.has_live_edge() || cb.tree.has_live_edge() {
            return false; // timers would tick (adversarial tree under H = 0)
        }
        if !ca.roster.contains(&a.name) || !cb.roster.contains(&b.name) {
            return false; // sanity trigger
        }
        if *ca.roster != *cb.roster {
            return false; // merge (or ghost trigger) would change rosters
        }
        if ca.roster.len() > self.n {
            return false;
        }
        if ca.roster.len() == self.n {
            // Ranks would be (re)assigned; inert only if already correct.
            ca.rank == Some(rank_in_roster(&ca.roster, a.name))
                && cb.rank == Some(rank_in_roster(&cb.roster, b.name))
        } else {
            true
        }
    }

    fn phase_of(&self, state: &SubState) -> Option<&'static str> {
        Some(crate::reset::phase_name(state))
    }
}

impl RankingProtocol for SublinearTimeSsr {
    fn population_size(&self) -> usize {
        self.n
    }

    fn rank_of(&self, state: &SubState) -> Option<usize> {
        state.collecting().and_then(|c| c.rank).map(|r| r as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::rng_from_seed;
    use population::silence::is_silent_configuration;
    use population::Simulation;

    fn rng() -> SmallRng {
        rng_from_seed(2024)
    }

    #[test]
    fn name_bits_formula() {
        assert_eq!(SublinearTimeSsr::name_bits_for(2), 3);
        assert_eq!(SublinearTimeSsr::name_bits_for(8), 9);
        assert_eq!(SublinearTimeSsr::name_bits_for(9), 12);
        assert_eq!(SublinearTimeSsr::name_bits_for(16), 12);
        assert_eq!(SublinearTimeSsr::name_bits_for(1 << 20), 60);
    }

    #[test]
    #[should_panic(expected = "population too large")]
    fn name_bits_overflow_panics() {
        SublinearTimeSsr::name_bits_for((1 << 20) + 1);
    }

    #[test]
    fn log_depth_matches_log2() {
        assert_eq!(SublinearTimeSsr::log_depth(16).h(), 4);
        assert_eq!(SublinearTimeSsr::log_depth(17).h(), 5);
    }

    #[test]
    fn random_names_have_full_length() {
        let p = SublinearTimeSsr::new(16, 1);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(p.random_name(&mut r).len(), 12);
        }
    }

    #[test]
    fn fresh_state_contains_own_name() {
        let p = SublinearTimeSsr::new(8, 1);
        let s = p.uniform_named_state(5);
        let c = s.collecting().unwrap();
        assert!(c.roster.contains(&s.name));
        assert_eq!(c.roster.len(), 1);
        assert_eq!(c.rank, None);
        assert_eq!(c.tree.root_name(), s.name);
    }

    #[test]
    fn clean_meeting_merges_rosters() {
        let p = SublinearTimeSsr::new(4, 1);
        let mut a = p.uniform_named_state(1);
        let mut b = p.uniform_named_state(2);
        p.interact(&mut a, &mut b, &mut rng());
        let (ca, cb) = (a.collecting().unwrap(), b.collecting().unwrap());
        assert_eq!(ca.roster.len(), 2);
        assert_eq!(*ca.roster, *cb.roster);
        assert!(Arc::ptr_eq(&ca.roster, &cb.roster), "merged rosters are shared");
        assert_eq!(ca.rank, None, "no rank until the roster is full");
    }

    #[test]
    fn full_roster_assigns_lexicographic_ranks() {
        let p = SublinearTimeSsr::new(2, 1);
        let mut a = p.uniform_named_state(6);
        let mut b = p.uniform_named_state(3);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(p.rank_of(&a), Some(2), "name 6 sorts after name 3");
        assert_eq!(p.rank_of(&b), Some(1));
        assert!(p.is_leader(&b));
    }

    #[test]
    fn direct_name_collision_triggers_reset() {
        let p = SublinearTimeSsr::new(4, 1);
        let mut a = p.uniform_named_state(5);
        let mut b = p.uniform_named_state(5);
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting());
        assert!(b.is_resetting());
        assert!(a.name.is_empty(), "triggered agents lose their names");
    }

    #[test]
    fn ghost_roster_overflow_triggers_reset() {
        // Two agents whose rosters each contain a distinct ghost: the union
        // exceeds n.
        let p = SublinearTimeSsr::new(2, 1);
        let mut a = p.uniform_named_state(1);
        let mut b = p.uniform_named_state(2);
        if let SubRole::Collecting(c) = &mut a.role {
            let mut r = (*c.roster).clone();
            r.insert(Name::from_bits(7, p.name_bits()));
            c.roster = Arc::new(r);
        }
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting() && b.is_resetting());
    }

    #[test]
    fn missing_own_name_triggers_reset() {
        let p = SublinearTimeSsr::new(4, 1);
        let mut a = p.uniform_named_state(1);
        if let SubRole::Collecting(c) = &mut a.role {
            c.roster = Arc::new(BTreeSet::from([Name::from_bits(9, p.name_bits())]));
        }
        let mut b = p.uniform_named_state(2);
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting() && b.is_resetting());
    }

    #[test]
    fn propagating_agents_erase_names() {
        let p = SublinearTimeSsr::new(4, 1);
        let mut a = p.triggered_state();
        a.name = Name::from_bits(3, p.name_bits());
        let mut b = p.uniform_named_state(2);
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.name.is_empty());
        assert!(b.is_resetting(), "partner pulled into the reset");
        assert!(b.name.is_empty() || b.reset_core().unwrap().resetcount == 0);
    }

    #[test]
    fn dormant_agents_grow_names_bit_by_bit() {
        let p = SublinearTimeSsr::new(4, 1);
        let core = ResetCore { resetcount: 0, delaytimer: 1000 };
        let mut a = SubState { name: Name::empty(), role: SubRole::Resetting(core) };
        let mut b = SubState { name: Name::empty(), role: SubRole::Resetting(core) };
        for k in 1..=5 {
            p.interact(&mut a, &mut b, &mut rng());
            assert_eq!(a.name.len(), k.min(p.name_bits()));
            assert_eq!(b.name.len(), k.min(p.name_bits()));
        }
    }

    #[test]
    fn awakened_agent_keeps_its_grown_name() {
        let p = SublinearTimeSsr::new(4, 1);
        let name = Name::from_bits(0b101, 3);
        let mut a =
            SubState { name, role: SubRole::Resetting(ResetCore { resetcount: 0, delaytimer: 1 }) };
        let mut b = SubState {
            name: Name::empty(),
            role: SubRole::Resetting(ResetCore { resetcount: 0, delaytimer: 100 }),
        };
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(a.name, name);
        let c = a.collecting().expect("a awakened");
        assert_eq!(*c.roster, BTreeSet::from([name]));
        assert_eq!(c.rank, None);
    }

    #[test]
    fn stabilizes_from_identical_names() {
        let n = 8;
        let p = SublinearTimeSsr::new(n, 1);
        let initial = vec![p.uniform_named_state(0); n];
        let mut sim = Simulation::new(p, initial, 17);
        let outcome = sim.run_until_stably_ranked(20_000_000, 10 * n as u64);
        assert!(outcome.is_converged(), "{outcome:?}");
        assert_eq!(sim.leader_count(), 1);
    }

    #[test]
    fn stabilizes_from_ghost_names() {
        let n = 8;
        let p = SublinearTimeSsr::new(n, 2);
        let ghost = Name::from_bits(1, p.name_bits());
        let mut initial = Vec::new();
        for k in 0..n {
            let mut s = p.uniform_named_state(100 + k as u64);
            if let SubRole::Collecting(c) = &mut s.role {
                let mut r = (*c.roster).clone();
                r.insert(ghost);
                c.roster = Arc::new(r);
            }
            initial.push(s);
        }
        let mut sim = Simulation::new(p, initial, 23);
        let outcome = sim.run_until_stably_ranked(20_000_000, 10 * n as u64);
        assert!(outcome.is_converged(), "{outcome:?}");
    }

    #[test]
    fn stays_correct_after_stabilizing() {
        let n = 8;
        let p = SublinearTimeSsr::new(n, 2);
        let initial: Vec<SubState> = (0..n).map(|k| p.uniform_named_state(k as u64)).collect();
        let mut sim = Simulation::new(p, initial, 31);
        let outcome = sim.run_until_stably_ranked(20_000_000, 0);
        assert!(outcome.is_converged());
        sim.run(500_000);
        assert!(sim.is_ranked(), "safety: unique names must never un-rank");
    }

    #[test]
    fn h0_variant_reaches_a_silent_configuration() {
        let n = 6;
        let p = SublinearTimeSsr::new(n, 0);
        let initial: Vec<SubState> = (0..n).map(|k| p.uniform_named_state(k as u64)).collect();
        let mut sim = Simulation::new(p, initial, 37);
        let outcome = sim.run_until_stably_ranked(20_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
        assert!(
            is_silent_configuration(sim.protocol(), sim.states()),
            "H = 0 is the silent variant"
        );
    }

    #[test]
    fn h1_variant_is_not_silent_when_ranked() {
        let n = 6;
        let p = SublinearTimeSsr::new(n, 1);
        let initial: Vec<SubState> = (0..n).map(|k| p.uniform_named_state(k as u64)).collect();
        let mut sim = Simulation::new(p, initial, 41);
        let outcome = sim.run_until_stably_ranked(20_000_000, 10 * n as u64);
        assert!(outcome.is_converged());
        assert!(
            !is_silent_configuration(sim.protocol(), sim.states()),
            "H ≥ 1 keeps exchanging sync values forever (Observation 2.2)"
        );
    }

    #[test]
    fn rank_of_resetting_is_none() {
        let p = SublinearTimeSsr::new(4, 1);
        assert_eq!(p.rank_of(&p.triggered_state()), None);
    }

    #[test]
    fn adversarial_wrong_rank_is_rewritten_on_merge() {
        // Full correct roster but a planted wrong rank: the next merge with
        // a different roster pointer recomputes the output.
        let p = SublinearTimeSsr::new(2, 1);
        let mut a = p.uniform_named_state(1);
        let mut b = p.uniform_named_state(2);
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(p.rank_of(&a), Some(1));
        // Corrupt a's rank; give it a fresh (value-equal) roster Arc so the
        // pointer-equality fast path doesn't apply.
        if let SubRole::Collecting(c) = &mut a.role {
            c.rank = Some(2);
            c.roster = Arc::new((*c.roster).clone());
        }
        p.interact(&mut a, &mut b, &mut rng());
        assert_eq!(p.rank_of(&a), Some(1), "full-roster merges rewrite the rank output");
    }

    #[test]
    fn disjoint_full_rosters_reveal_ghosts() {
        // Two agents each collected n names, but the sets differ — at least
        // one contains a ghost; the union exceeds n and triggers.
        let p = SublinearTimeSsr::new(2, 1);
        let mk = |own: u64, other: u64| {
            let mut s = p.uniform_named_state(own);
            if let SubRole::Collecting(c) = &mut s.role {
                let mut r = (*c.roster).clone();
                r.insert(Name::from_bits(other, p.name_bits()));
                c.roster = Arc::new(r);
            }
            s
        };
        let mut a = mk(1, 5);
        let mut b = mk(2, 6);
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting() && b.is_resetting());
    }

    #[test]
    fn equal_value_rosters_become_shared_without_merging() {
        let p = SublinearTimeSsr::new(4, 0);
        let names = [3u64, 4];
        let mk = |own: u64| {
            let mut s = p.uniform_named_state(own);
            if let SubRole::Collecting(c) = &mut s.role {
                let mut r = (*c.roster).clone();
                for v in names {
                    r.insert(Name::from_bits(v, p.name_bits()));
                }
                c.roster = Arc::new(r);
            }
            s
        };
        let mut a = mk(3);
        let mut b = mk(4);
        p.interact(&mut a, &mut b, &mut rng());
        let (ca, cb) = (a.collecting().unwrap(), b.collecting().unwrap());
        assert!(Arc::ptr_eq(&ca.roster, &cb.roster), "value-equal rosters get shared");
        assert_eq!(ca.roster.len(), 2);
    }

    #[test]
    fn epidemic_awakening_keeps_short_names_legal() {
        // A dormant agent with a half-built name meets a computing agent:
        // it awakens immediately (Propagate-Reset line 11) with its short
        // name, which is a legal (if collision-prone) state.
        let p = SublinearTimeSsr::new(8, 1);
        let short = Name::from_bits(0b1, 1);
        let mut a = SubState {
            name: short,
            role: SubRole::Resetting(ResetCore { resetcount: 0, delaytimer: 50 }),
        };
        let mut b = p.uniform_named_state(2);
        p.interact(&mut a, &mut b, &mut rng());
        let c = a.collecting().expect("awakened by epidemic");
        assert_eq!(a.name, short);
        assert!(c.roster.contains(&short));
    }

    #[test]
    fn two_short_name_duplicates_still_collide() {
        let p = SublinearTimeSsr::new(8, 1);
        let short = Name::from_bits(0b10, 2);
        let mk = || SubState::fresh(short);
        let (mut a, mut b) = (mk(), mk());
        p.interact(&mut a, &mut b, &mut rng());
        assert!(a.is_resetting(), "short duplicates are still duplicates");
    }

    #[test]
    fn reset_params_accessors() {
        let p = SublinearTimeSsr::new(16, 3);
        assert_eq!(p.h(), 3);
        assert_eq!(p.name_bits(), 12);
        assert!(p.reset_params().d_max >= 2 * p.name_bits() as u32);
        assert!(p.collision_params().s_max >= 4 * 16 * 16);
    }

    #[test]
    fn triggered_state_is_propagating_and_nameless() {
        let p = SublinearTimeSsr::new(4, 1);
        let t = p.triggered_state();
        assert!(t.name.is_empty());
        assert!(t.reset_core().unwrap().is_propagating());
    }
}
