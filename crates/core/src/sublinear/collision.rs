//! Detect-Name-Collision and Check-Path-Consistency (Protocols 7 and 8).
//!
//! The heart of Sublinear-Time-SSR: detect that two agents share a name
//! *without* requiring them to meet directly. When agents meet they generate
//! a shared random `sync` value and exchange (truncated) history trees;
//! a third agent that has heard about name `X` through one chain of
//! interactions can later challenge another agent named `X` to produce
//! logically consistent sync values. A duplicate of `X` fails the challenge
//! with probability `1 − 1/S_max` per edge.
//!
//! Meeting an agent with one's own name is the degenerate length-0 path and
//! is detected by direct comparison (the paper's `H = 0` protocol).

use rand::rngs::SmallRng;
use rand::Rng;

use super::history_tree::{HistoryEdge, HistoryTree};
use crate::name::Name;

/// Tuning constants of Detect-Name-Collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionParams {
    /// History-tree depth `H`. `H = 0` disables trees entirely (direct
    /// detection only — the silent Θ(n)-time variant); `H = 1` is the
    /// "sync dictionary" warm-up of Sec. 5.2; `H = Θ(log n)` gives the
    /// time-optimal protocol.
    pub h: u32,
    /// Sync values are drawn uniformly from `1..=s_max`; the paper uses
    /// `S_max = Θ(n²)`.
    pub s_max: u64,
    /// Freshness bound `T_H` loaded into new edges; the paper requires
    /// `T_H = Θ(τ_{H+1})` (see [`CollisionParams::t_h_for`]).
    pub t_h: u32,
}

impl CollisionParams {
    /// The paper's default shapes: `S_max = 4n²` and `T_H` per
    /// [`CollisionParams::t_h_for`] with multiplier 4.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn for_population(n: usize, h: u32) -> Self {
        assert!(n >= 2, "population protocols need at least 2 agents");
        CollisionParams { h, s_max: 4 * (n as u64) * (n as u64), t_h: Self::t_h_for(n, h, 4.0) }
    }

    /// `T_H = Θ(τ_{H+1})` scaled to per-agent interaction counts:
    /// `⌈multiplier · (H + 1) · n^{1/(H+1)}⌉`, which is `Θ(H · n^{1/(H+1)})`
    /// for constant `H` and `Θ(log n)` once `H ≥ log₂ n`.
    pub fn t_h_for(n: usize, h: u32, multiplier: f64) -> u32 {
        let hh = (h + 1) as f64;
        let raw = multiplier * hh * (n as f64).powf(1.0 / hh);
        raw.ceil().max(1.0) as u32
    }
}

/// Protocol 8: agent `j` verifies one of `i`'s histories that ends at
/// `j`'s name.
///
/// `path` is a root-starting edge sequence of `i`'s tree whose final node is
/// labelled with `j`'s name; `i_root` is `i`'s own name (the label of the
/// path's origin). `j` walks the *reversed* node sequence down its own tree
/// as far as it exists; the path is **consistent** (returns `true`) if any
/// traversed edge carries the same sync value as the corresponding edge of
/// `i`'s path, and **inconsistent** (returns `false`) otherwise — including
/// when the reversed chain is entirely absent from `j`'s tree.
///
/// # Panics
///
/// Panics if `path` is empty.
pub fn check_path_consistency(j_tree: &HistoryTree, i_root: Name, path: &[&HistoryEdge]) -> bool {
    let p = path.len();
    assert!(p >= 1, "consistency checks need a non-empty path");
    let mut current = j_tree.children();
    for k in (1..=p).rev() {
        // i's path visits v₀ = i_root, v₁, …, v_p = j's name; j's reversed
        // chain edge for i's edge e_k leads to a node named v_{k−1}.
        let target = if k == 1 { i_root } else { path[k - 2].node.name };
        match current.iter().find(|e| e.node.name == target) {
            Some(f) => {
                if f.sync == path[k - 1].sync {
                    return true;
                }
                current = &f.node.children;
            }
            None => return false,
        }
    }
    false
}

/// Protocol 7: checks both agents' histories about each other for
/// consistency and, when no collision is detected, performs the mutual tree
/// update (shared sync generation, snapshot grafting, own-name cleanup,
/// timer decrement).
///
/// Returns `true` iff a name collision was detected, in which case the trees
/// are left untouched (the caller resets both agents anyway).
///
/// # Panics
///
/// Panics if a tree's root label does not match its owner's name.
pub fn detect_name_collision(
    params: &CollisionParams,
    a_name: Name,
    a_tree: &mut HistoryTree,
    b_name: Name,
    b_tree: &mut HistoryTree,
    rng: &mut SmallRng,
) -> bool {
    assert_eq!(a_tree.root_name(), a_name, "tree root must be the owner's name");
    assert_eq!(b_tree.root_name(), b_name, "tree root must be the owner's name");

    // Length-0 path: two agents with the same name meet directly.
    if a_name == b_name {
        return true;
    }

    // Lines 1–4: every fresh history either agent holds about the other's
    // name must be consistent.
    let inconsistent = a_tree
        .paths_to(b_name)
        .iter()
        .any(|path| !check_path_consistency(b_tree, a_name, path))
        || b_tree.paths_to(a_name).iter().any(|path| !check_path_consistency(a_tree, b_name, path));
    if inconsistent {
        return true;
    }

    // Line 5: one shared sync value for both directions.
    let sync = rng.gen_range(1..=params.s_max);

    // Lines 6–12: exchange snapshots (of the pre-interaction trees) and keep
    // the trees simply labelled.
    if params.h >= 1 {
        let depth = params.h as usize - 1;
        let a_snapshot = a_tree.clone_truncated(depth);
        let b_snapshot = b_tree.clone_truncated(depth);
        a_tree.graft(b_snapshot, sync, params.t_h);
        b_tree.graft(a_snapshot, sync, params.t_h);
        a_tree.remove_named_subtrees(a_name);
        b_tree.remove_named_subtrees(b_name);
    }

    // Lines 13–14: age all records.
    a_tree.decrement_timers();
    b_tree.decrement_timers();
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::rng_from_seed;

    fn nm(v: u64) -> Name {
        Name::from_bits(v, 6)
    }

    fn params(h: u32) -> CollisionParams {
        CollisionParams { h, s_max: 1 << 40, t_h: 100 }
    }

    /// Runs one interaction between agents (name, tree); returns collision.
    fn meet(
        p: &CollisionParams,
        a: &mut (Name, HistoryTree),
        b: &mut (Name, HistoryTree),
        rng: &mut SmallRng,
    ) -> bool {
        let (an, at) = (a.0, &mut a.1);
        let (bn, bt) = (b.0, &mut b.1);
        detect_name_collision(p, an, at, bn, bt, rng)
    }

    fn agent(v: u64) -> (Name, HistoryTree) {
        (nm(v), HistoryTree::singleton(nm(v)))
    }

    #[test]
    fn t_h_shrinks_with_depth_and_grows_with_n() {
        let t1 = CollisionParams::t_h_for(256, 1, 1.0);
        let t3 = CollisionParams::t_h_for(256, 3, 1.0);
        assert!(t3 < t1, "deeper trees tolerate shorter timers: {t3} vs {t1}");
        assert!(CollisionParams::t_h_for(4096, 1, 1.0) > t1);
        assert!(CollisionParams::t_h_for(2, 0, 0.0001) >= 1, "never zero");
    }

    #[test]
    fn direct_name_collision_is_detected() {
        let p = params(2);
        let mut rng = rng_from_seed(1);
        let mut a = agent(5);
        let mut b = agent(5);
        assert!(meet(&p, &mut a, &mut b, &mut rng));
        assert_eq!(a.1.node_count(), 1, "trees untouched on detection");
    }

    #[test]
    fn clean_meeting_exchanges_trees() {
        let p = params(2);
        let mut rng = rng_from_seed(2);
        let mut a = agent(1);
        let mut b = agent(2);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert_eq!(a.1.node_count(), 2);
        assert_eq!(b.1.node_count(), 2);
        let ea = &a.1.children()[0];
        let eb = &b.1.children()[0];
        assert_eq!(ea.node.name, nm(2));
        assert_eq!(eb.node.name, nm(1));
        assert_eq!(ea.sync, eb.sync, "sync value is shared");
        assert_eq!(ea.timer, p.t_h - 1, "new edges age immediately (lines 13–14)");
    }

    #[test]
    fn h_zero_keeps_trees_empty() {
        let p = params(0);
        let mut rng = rng_from_seed(3);
        let mut a = agent(1);
        let mut b = agent(2);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert_eq!(a.1.node_count(), 1);
        assert_eq!(b.1.node_count(), 1);
    }

    #[test]
    fn figure2_left_execution_is_consistent() {
        // a-b (sync s1), b-c (s2), c-d (s3); then check d's view against a.
        let p = params(3);
        let mut rng = rng_from_seed(4);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut c = agent(3);
        let mut d = agent(4);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert!(!meet(&p, &mut b, &mut c, &mut rng));
        assert!(!meet(&p, &mut c, &mut d, &mut rng));
        // d now holds d → c → b → a.
        let paths = d.1.paths_to(nm(1));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
        assert!(check_path_consistency(&a.1, d.0, &paths[0]));
        // And a full meeting between d and a reports no collision.
        assert!(!meet(&p, &mut d, &mut a, &mut rng));
    }

    #[test]
    fn figure2_right_execution_is_consistent_via_second_edge() {
        // a-b, b-c, a-b again (refreshing a's record of b), c-d.
        let p = params(3);
        let mut rng = rng_from_seed(5);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut c = agent(3);
        let mut d = agent(4);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert!(!meet(&p, &mut b, &mut c, &mut rng));
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert!(!meet(&p, &mut c, &mut d, &mut rng));
        // a's record of the a–b interaction is newer than what d heard, but
        // a also heard about b–c in that same interaction, so the chains
        // reconcile one edge deeper.
        let paths = d.1.paths_to(nm(1));
        assert_eq!(paths.len(), 1);
        assert!(check_path_consistency(&a.1, d.0, &paths[0]));
        assert!(!meet(&p, &mut d, &mut a, &mut rng));
    }

    #[test]
    fn imposter_without_matching_history_is_caught() {
        // b hears about (the real) a, then meets an imposter with a's name
        // that has never met b: the reversed chain is absent → collision.
        let p = params(2);
        let mut rng = rng_from_seed(6);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut imposter = agent(1);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert!(meet(&p, &mut b, &mut imposter, &mut rng));
    }

    #[test]
    fn imposter_with_stale_sync_is_caught() {
        // The imposter meets b first; when the *real* a then meets b, b
        // holds a fresh record for the shared name whose sync value a cannot
        // corroborate — the mismatch itself is the detection.
        let p = params(2);
        let mut rng = rng_from_seed(7);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut imposter = agent(1);
        assert!(!meet(&p, &mut imposter, &mut b, &mut rng));
        assert!(meet(&p, &mut a, &mut b, &mut rng), "b's record of the name predates a");
    }

    #[test]
    fn depth_two_catches_imposter_via_intermediary() {
        // H = 2: c hears about a through b (path c → b → a), then meets the
        // imposter directly. The imposter never interacted with b → caught.
        let p = params(2);
        let mut rng = rng_from_seed(8);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut c = agent(3);
        let mut imposter = agent(1);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert!(!meet(&p, &mut b, &mut c, &mut rng));
        assert!(meet(&p, &mut c, &mut imposter, &mut rng));
    }

    #[test]
    fn depth_one_cannot_see_two_hop_history() {
        // Same scenario but H = 1: c's tree only keeps depth-1 records, so
        // the two-hop history about a never reaches c.
        let p = params(1);
        let mut rng = rng_from_seed(9);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut c = agent(3);
        let mut imposter = agent(1);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        assert!(!meet(&p, &mut b, &mut c, &mut rng));
        assert!(!meet(&p, &mut c, &mut imposter, &mut rng), "H = 1 misses it");
    }

    #[test]
    fn expired_records_do_not_accuse() {
        // b's record of a expires before meeting the imposter: no detection.
        let p = CollisionParams { h: 1, s_max: 1 << 40, t_h: 2 };
        let mut rng = rng_from_seed(10);
        let mut a = agent(1);
        let mut b = agent(2);
        let mut c = agent(3);
        let mut imposter = agent(1);
        assert!(!meet(&p, &mut a, &mut b, &mut rng));
        // Age b's record past T_H via an unrelated meeting.
        assert!(!meet(&p, &mut b, &mut c, &mut rng));
        assert!(b.1.paths_to(nm(1)).is_empty(), "record expired");
        assert!(!meet(&p, &mut b, &mut imposter, &mut rng));
    }

    #[test]
    fn no_false_positive_in_long_random_clean_run() {
        // Safety: from a clean configuration with unique names, no sequence
        // of interactions may ever report a collision.
        let p = params(3);
        let mut rng = rng_from_seed(11);
        let n = 8;
        let mut agents: Vec<(Name, HistoryTree)> = (0..n).map(|v| agent(v as u64)).collect();
        for step in 0..5_000 {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (left, right) = agents.split_at_mut(hi);
            let collision = {
                let a = &mut left[lo];
                let b = &mut right[0];
                detect_name_collision(&p, a.0, &mut a.1, b.0, &mut b.1, &mut rng)
            };
            assert!(!collision, "false positive at step {step}");
        }
        for (name, tree) in &agents {
            assert!(tree.is_simply_labelled(), "tree of {name} lost simple labelling");
            assert!(tree.has_distinct_siblings());
            assert!(tree.depth() <= 3);
        }
    }

    #[test]
    fn duplicate_names_in_population_are_eventually_detected() {
        // Liveness: with two agents sharing a name in a 6-agent population,
        // random interactions detect the collision quickly.
        let p = params(2);
        let mut rng = rng_from_seed(12);
        let names = [1u64, 2, 3, 4, 5, 1]; // agents 0 and 5 collide
        let mut agents: Vec<(Name, HistoryTree)> = names.iter().map(|&v| agent(v)).collect();
        let n = agents.len();
        let mut detected = false;
        for _ in 0..20_000 {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (left, right) = agents.split_at_mut(hi);
            let collision = {
                let a = &mut left[lo];
                let b = &mut right[0];
                detect_name_collision(&p, a.0, &mut a.1, b.0, &mut b.1, &mut rng)
            };
            if collision {
                detected = true;
                break;
            }
        }
        assert!(detected, "collision went undetected for 20k interactions");
    }
}
