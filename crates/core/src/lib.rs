#![warn(missing_docs)]

//! Self-stabilizing leader election and ranking in population protocols.
//!
//! This crate reproduces the protocols of **"Time-Optimal Self-Stabilizing
//! Leader Election in Population Protocols"** (Burman, Chen, Chen, Doty,
//! Nowak, Severson, Xu — PODC 2021, full version arXiv:1907.06068, 2019) on
//! top of the [`population`] simulation substrate.
//!
//! # The problem
//!
//! *Self-stabilizing ranking* (SSR): from **any** initial configuration of
//! `n` anonymous agents interacting in uniformly random pairs, reach — with
//! probability 1 — a configuration where each rank `1..=n` is held by
//! exactly one agent, and never leave it. Ranking subsumes *self-stabilizing
//! leader election* (SSLE): the rank-1 agent is the leader. SSLE provably
//! requires `≥ n` states and exact knowledge of `n` (Theorem 2.1, after
//! Cai–Izumi–Wada).
//!
//! # The protocols (Table 1 of the paper)
//!
//! | protocol | module | expected time | states | silent |
//! |----------|--------|---------------|--------|--------|
//! | Silent-n-state-SSR \[22\] | [`cai_izumi_wada`] | `Θ(n²)` | `n` | yes |
//! | Optimal-Silent-SSR | [`optimal_silent`] | `Θ(n)` | `O(n)` | yes |
//! | Sublinear-Time-SSR (depth `H`) | [`sublinear`] | `Θ(H·n^{1/(H+1)})` | `exp(O(n^H) log n)` | no |
//! | Sublinear-Time-SSR (`H = Θ(log n)`) | [`sublinear`] | `Θ(log n)` | quasi-exponential | no |
//!
//! Both new protocols share the [`reset`] subprotocol (Propagate-Reset);
//! Sublinear-Time-SSR's collision detection lives in
//! [`sublinear::collision`] with its history trees in
//! [`sublinear::history_tree`]. The [`initialized`] module contains the
//! classic non-self-stabilizing baselines for contrast (the one-bit
//! `ℓ, ℓ → ℓ, f` election and initialized tree ranking), [`loose`]
//! implements the loosely-stabilizing relaxation the paper discusses,
//! [`composition`] demonstrates stacking a downstream task on top of a
//! self-stabilizing ranking, [`adversary`] builds hostile initial
//! configurations, and [`state_space`] computes the "states" column.
//!
//! # Quickstart
//!
//! ```
//! use population::Simulation;
//! use ssle::adversary;
//! use ssle::optimal_silent::OptimalSilentSsr;
//!
//! let n = 24;
//! let protocol = OptimalSilentSsr::new(n);
//!
//! // The adversary chooses the initial configuration...
//! let mut rng = population::runner::rng_from_seed(7);
//! let initial = adversary::random_oss_configuration(&protocol, &mut rng);
//!
//! // ...and the protocol still stabilizes to a unique ranking.
//! let mut sim = Simulation::new(protocol, initial, 42);
//! let outcome = sim.run_until_stably_ranked(200_000_000, 10 * n as u64);
//! assert!(outcome.is_converged());
//! assert_eq!(sim.leader_count(), 1);
//! println!("stabilized in {:.1} parallel time", outcome.parallel_time(n));
//! ```

pub mod adversary;
pub mod cai_izumi_wada;
pub mod ciw_fast;
pub mod composition;
pub mod initialized;
pub mod loose;
pub mod name;
pub mod optimal_silent;
pub mod reset;
pub mod snapshot;
pub mod state_space;
pub mod sublinear;

pub use cai_izumi_wada::CaiIzumiWada;
pub use name::Name;
pub use optimal_silent::OptimalSilentSsr;
pub use sublinear::SublinearTimeSsr;
