//! Property-based tests of the protocols' state-space invariants: no
//! interaction, applied to any in-domain pair of states, may ever produce an
//! out-of-domain state — the backbone of self-stabilization arguments,
//! where the adversary picks the configuration but not the state space.

use population::runner::rng_from_seed;
use population::{Protocol, RankingProtocol};
use proptest::prelude::*;
use ssle::adversary;
use ssle::cai_izumi_wada::{CaiIzumiWada, CiwState};
use ssle::name::Name;
use ssle::optimal_silent::{Leader, OptimalSilentSsr, OssState};
use ssle::reset::{propagate_reset, ResetCore, ResetParams, ResetView};
use ssle::sublinear::history_tree::HistoryTree;
use ssle::sublinear::SublinearTimeSsr;

// ---------- Name ----------

fn name_bits_strategy() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 0..=24)
}

fn build_name(bits: &[bool]) -> Name {
    bits.iter().fold(Name::empty(), |n, &b| n.with_appended(b))
}

proptest! {
    #[test]
    fn name_order_matches_reference_lexicographic_order(
        a in name_bits_strategy(),
        b in name_bits_strategy(),
    ) {
        let (na, nb) = (build_name(&a), build_name(&b));
        // Reference: Vec<bool> already compares lexicographically.
        prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
        prop_assert_eq!(na == nb, a == b);
    }

    #[test]
    fn name_bits_roundtrip(bits in name_bits_strategy()) {
        let n = build_name(&bits);
        prop_assert_eq!(n.len() as usize, bits.len());
        for (k, &b) in bits.iter().enumerate() {
            prop_assert_eq!(n.bit(k as u8), b);
        }
        prop_assert_eq!(Name::from_bits(n.bits(), n.len()), n);
    }
}

// ---------- Cai–Izumi–Wada ----------

proptest! {
    #[test]
    fn ciw_interactions_preserve_the_domain_and_move_one_agent(
        n in 2usize..20,
        ra in 0u32..20,
        rb in 0u32..20,
    ) {
        let p = CaiIzumiWada::new(n);
        let (ra, rb) = (ra % n as u32, rb % n as u32);
        let (mut a, mut b) = (CiwState::new(ra), CiwState::new(rb));
        p.interact(&mut a, &mut b, &mut rng_from_seed(1));
        prop_assert!(a.rank < n as u32 && b.rank < n as u32);
        prop_assert_eq!(a.rank, ra, "the initiator never moves");
        if ra == rb {
            prop_assert_eq!(b.rank, (rb + 1) % n as u32);
        } else {
            prop_assert_eq!(b.rank, rb);
        }
        // Null-pair declaration matches actual behavior.
        prop_assert_eq!(p.is_null_pair(&CiwState::new(ra), &CiwState::new(rb)), ra != rb);
    }
}

// ---------- Propagate-Reset ----------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Toy {
    Computing,
    Resetting(ResetCore),
}

impl ResetView for Toy {
    fn reset_core(&self) -> Option<ResetCore> {
        match self {
            Toy::Computing => None,
            Toy::Resetting(c) => Some(*c),
        }
    }
    fn set_reset_core(&mut self, core: ResetCore) {
        assert!(matches!(self, Toy::Resetting(_)));
        *self = Toy::Resetting(core);
    }
    fn enter_resetting(&mut self, core: ResetCore) {
        *self = Toy::Resetting(core);
    }
}

fn toy_from_raw(params: &ResetParams, raw: Option<(u32, u32)>) -> Toy {
    match raw {
        None => Toy::Computing,
        Some((rc, dt)) => Toy::Resetting(ResetCore {
            resetcount: rc % (params.r_max + 1),
            delaytimer: dt % (params.d_max + 1),
        }),
    }
}

proptest! {
    #[test]
    fn propagate_reset_keeps_counters_in_domain(
        r_max in 1u32..20,
        d_max in 1u32..20,
        x_raw in (any::<u32>(), any::<u32>()),
        y_raw in prop::option::of((any::<u32>(), any::<u32>())),
    ) {
        let params = ResetParams::new(r_max, d_max).unwrap();
        let mut x = toy_from_raw(&params, Some(x_raw));
        let mut y = toy_from_raw(&params, y_raw);
        let x_before = x.reset_core().unwrap().resetcount;
        let y_before = y.reset_core().map(|c| c.resetcount).unwrap_or(0);
        propagate_reset(&params, &mut x, &mut y, |s| *s = Toy::Computing);
        for s in [x, y] {
            if let Toy::Resetting(core) = s {
                prop_assert!(core.resetcount <= params.r_max);
                prop_assert!(core.delaytimer <= params.d_max);
                // Propagation never increases the maximum resetcount.
                prop_assert!(core.resetcount <= x_before.max(y_before));
            }
        }
    }

    #[test]
    fn propagate_reset_strictly_drains_resetcounts(
        r_max in 2u32..20,
        d_max in 1u32..20,
        x_rc in 1u32..20,
        y_rc in 1u32..20,
    ) {
        // Two propagating agents always end strictly below their joint max:
        // the mechanism that guarantees a reset wave dies out.
        let params = ResetParams::new(r_max, d_max).unwrap();
        let (x_rc, y_rc) = (1 + x_rc % r_max, 1 + y_rc % r_max);
        let mut x = Toy::Resetting(ResetCore { resetcount: x_rc, delaytimer: 0 });
        let mut y = Toy::Resetting(ResetCore { resetcount: y_rc, delaytimer: 0 });
        propagate_reset(&params, &mut x, &mut y, |s| *s = Toy::Computing);
        for s in [x, y] {
            if let Toy::Resetting(core) = s {
                prop_assert!(core.resetcount < x_rc.max(y_rc));
            }
        }
    }
}

// ---------- Optimal-Silent-SSR ----------

/// Maps unconstrained raw values into an in-domain state.
fn oss_from_raw(p: &OptimalSilentSsr, role: u8, x: u32, y: u32) -> OssState {
    let n = p.population_size() as u32;
    match role % 3 {
        0 => OssState::settled(1 + x % n, (y % 3) as u8),
        1 => OssState::unsettled(x % (p.e_max() + 1)),
        _ => OssState::resetting(
            if y & 1 == 0 { Leader::L } else { Leader::F },
            ResetCore {
                resetcount: x % (p.reset_params().r_max + 1),
                delaytimer: y % (p.reset_params().d_max + 1),
            },
        ),
    }
}

fn oss_in_domain(p: &OptimalSilentSsr, s: &OssState) -> bool {
    match s {
        OssState::Settled { rank, children } => {
            (1..=p.population_size() as u32).contains(rank) && *children <= 2
        }
        OssState::Unsettled { errorcount } => *errorcount <= p.e_max(),
        OssState::Resetting { core, .. } => {
            core.resetcount <= p.reset_params().r_max && core.delaytimer <= p.reset_params().d_max
        }
    }
}

proptest! {
    #[test]
    fn oss_interactions_stay_in_domain(
        n in 2usize..24,
        a_raw in (any::<u8>(), any::<u32>(), any::<u32>()),
        b_raw in (any::<u8>(), any::<u32>(), any::<u32>()),
        seed in any::<u64>(),
    ) {
        let p = OptimalSilentSsr::new(n);
        let mut a = oss_from_raw(&p, a_raw.0, a_raw.1, a_raw.2);
        let mut b = oss_from_raw(&p, b_raw.0, b_raw.1, b_raw.2);
        p.interact(&mut a, &mut b, &mut rng_from_seed(seed));
        prop_assert!(oss_in_domain(&p, &a), "out of domain: {:?}", a);
        prop_assert!(oss_in_domain(&p, &b), "out of domain: {:?}", b);
        for s in [&a, &b] {
            if let Some(r) = p.rank_of(s) {
                prop_assert!((1..=n).contains(&r));
            }
        }
    }

    #[test]
    fn oss_null_pairs_really_are_null(
        n in 2usize..16,
        a_raw in (any::<u8>(), any::<u32>(), any::<u32>()),
        b_raw in (any::<u8>(), any::<u32>(), any::<u32>()),
        seed in any::<u64>(),
    ) {
        let p = OptimalSilentSsr::new(n);
        let a0 = oss_from_raw(&p, a_raw.0, a_raw.1, a_raw.2);
        let b0 = oss_from_raw(&p, b_raw.0, b_raw.1, b_raw.2);
        if p.is_null_pair(&a0, &b0) {
            let (mut a, mut b) = (a0, b0);
            p.interact(&mut a, &mut b, &mut rng_from_seed(seed));
            prop_assert_eq!((a, b), (a0, b0), "declared-null pair changed state");
        }
    }
}

// ---------- History trees ----------

#[derive(Debug, Clone)]
enum TreeOp {
    /// Graft a snapshot with the given root label and an optional
    /// depth-1 child under it.
    Graft {
        root: u8,
        child: Option<u8>,
        sync: u64,
        timer: u32,
    },
    RemoveOwn,
    Decrement,
}

fn tree_op_strategy() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0u8..8, prop::option::of(0u8..8), 1u64..100, 1u32..6)
            .prop_map(|(root, child, sync, timer)| TreeOp::Graft { root, child, sync, timer }),
        Just(TreeOp::RemoveOwn),
        Just(TreeOp::Decrement),
    ]
}

fn nm(v: u8) -> Name {
    Name::from_bits(v as u64, 4)
}

proptest! {
    #[test]
    fn tree_invariants_survive_arbitrary_op_sequences(
        ops in prop::collection::vec(tree_op_strategy(), 0..60),
    ) {
        let own = nm(15);
        let mut tree = HistoryTree::singleton(own);
        for op in ops {
            match op {
                TreeOp::Graft { root, child, sync, timer } => {
                    let mut snapshot = HistoryTree::singleton(nm(root));
                    if let Some(c) = child {
                        if c != root {
                            snapshot.graft(HistoryTree::singleton(nm(c)), sync ^ 1, timer);
                        }
                    }
                    tree.graft(snapshot, sync, timer);
                    // The protocol's cleanup pass always follows a graft.
                    tree.remove_named_subtrees(own);
                }
                TreeOp::RemoveOwn => tree.remove_named_subtrees(own),
                TreeOp::Decrement => tree.decrement_timers(),
            }
            prop_assert!(tree.is_simply_labelled());
            prop_assert!(tree.has_distinct_siblings());
            prop_assert_eq!(tree.root_name(), own);
            prop_assert!(tree.depth() <= 2, "grafted snapshots had depth ≤ 1");
            // Accusation paths never include expired edges.
            for target in 0..16u8 {
                for path in tree.paths_to(nm(target)) {
                    prop_assert!(path.iter().all(|e| e.timer > 0));
                    prop_assert_eq!(path.last().unwrap().node.name, nm(target));
                }
            }
        }
    }

    #[test]
    fn clone_truncated_never_exceeds_depth(depth in 0usize..5) {
        let mut tree = HistoryTree::singleton(nm(0));
        let mut sub = HistoryTree::singleton(nm(1));
        let mut sub2 = HistoryTree::singleton(nm(2));
        sub2.graft(HistoryTree::singleton(nm(3)), 1, 5);
        sub.graft(sub2, 2, 5);
        tree.graft(sub, 3, 5);
        let copy = tree.clone_truncated(depth);
        prop_assert!(copy.depth() <= depth);
        prop_assert!(copy.is_simply_labelled());
    }
}

// ---------- Sublinear-Time-SSR ----------

proptest! {
    #[test]
    fn sublinear_interactions_preserve_state_space(
        seed in any::<u64>(),
        h in 0u32..3,
        steps in 1usize..60,
    ) {
        let n = 8;
        let p = SublinearTimeSsr::new(n, h);
        let mut rng = rng_from_seed(seed);
        let mut states = adversary::random_sublinear_configuration(&p, &mut rng);
        use rand::Rng;
        for _ in 0..steps {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i { j += 1; }
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (l, r) = states.split_at_mut(hi);
            p.interact(&mut l[lo], &mut r[0], &mut rng);
        }
        for s in &states {
            prop_assert!(s.name.len() <= p.name_bits());
            if let Some(c) = s.collecting() {
                prop_assert!(c.roster.len() <= n, "roster never exceeds n after a merge check");
                prop_assert!(c.tree.is_simply_labelled());
                prop_assert!(c.tree.depth() <= h as usize);
                prop_assert_eq!(c.tree.root_name(), s.name);
                if let Some(rank) = c.rank {
                    prop_assert!((1..=n as u32).contains(&rank));
                }
            } else {
                let core = s.reset_core().unwrap();
                prop_assert!(core.resetcount <= p.reset_params().r_max);
                prop_assert!(core.delaytimer <= p.reset_params().d_max);
            }
        }
    }
}
