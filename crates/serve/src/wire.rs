//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line — the same hand-rolled flat
//! JSON the record module uses ([`population::record::parse_flat_json`] /
//! [`population::record::JsonObject`]), so the daemon shares its codec with
//! the experiment records and needs no serde.
//!
//! Requests are `{"cmd":"...", ...}` objects; responses always carry
//! `"ok":true` or `"ok":false,"error":"..."`. Unknown keys are rejected so
//! typos fail loudly rather than silently taking defaults.
//!
//! | cmd | arguments | reply payload |
//! |-----|-----------|---------------|
//! | `ping` | — | `pong:true` |
//! | `create` | `name, protocol(ciw\|oss), backend(agents\|counts), n, [seed], [id]` | status |
//! | `step` | `name, [interactions], [id]` | performed, status |
//! | `join` / `leave` / `corrupt` | `name, [k], [id]` | applied, status |
//! | `churn-plan` | `name, spec, [seed], [id]` | status |
//! | `leader` | `name` | leaders, ranked, leader_index? |
//! | `ranks` | `name` | ranked, distinct_ranks, duplicated, missing |
//! | `status` | `name` | full status |
//! | `timeline` | `name, [last]` | checkpoint array |
//! | `metrics` | `name` | embedded engine metrics record |
//! | `snapshot` | `name` | path written |
//! | `health` | — | per-population liveness + journal-lag rows |
//! | `stats` | `[reset]` | per-command latency/throughput rows (`server_stats` records); `reset:true` reads then zeroes the window |
//! | `dump-trace` | `[last]` | last N request traces from the flight recorder (+ dump file path when durable) |
//! | `list` | — | population names |
//! | `delete` | `name` | deleted:true |
//! | `shutdown` | — | stopping:true (daemon snapshots all and exits) |
//!
//! Every mutating command takes an optional `id` (1–128 chars of
//! `[A-Za-z0-9._-]`): a request whose id is still inside the population's
//! dedup window is acknowledged with `"replayed":true` instead of being
//! applied again, making retried mutations exactly-once.

use std::collections::BTreeMap;

use population::record::{parse_flat_json, JsonObject, JsonScalar};

/// A parsed request: the command name plus its argument map.
#[derive(Debug, Clone)]
pub struct Request {
    /// The `cmd` value.
    pub cmd: String,
    args: BTreeMap<String, JsonScalar>,
}

/// The keys every command accepts (beyond `cmd`), for typo rejection.
fn allowed_keys(cmd: &str) -> Option<&'static [&'static str]> {
    Some(match cmd {
        "ping" | "list" | "shutdown" | "health" => &[],
        "create" => &["name", "protocol", "backend", "n", "seed", "id"],
        "step" => &["name", "interactions", "id"],
        "join" | "leave" | "corrupt" => &["name", "k", "id"],
        "churn-plan" => &["name", "spec", "seed", "id"],
        "leader" | "ranks" | "status" | "metrics" | "snapshot" | "delete" => &["name"],
        "timeline" => &["name", "last"],
        "stats" => &["reset"],
        "dump-trace" => &["last"],
        _ => return None,
    })
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing or
    /// unknown `cmd`, or arguments the command does not accept.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut map = parse_flat_json(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let cmd = match map.remove("cmd") {
            Some(JsonScalar::Str(c)) => c,
            Some(_) => return Err("\"cmd\" must be a string".to_string()),
            None => return Err("missing \"cmd\"".to_string()),
        };
        let allowed = allowed_keys(&cmd).ok_or_else(|| format!("unknown cmd {cmd:?}"))?;
        for key in map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("cmd {cmd:?} does not take {key:?}"));
            }
        }
        Ok(Request { cmd, args: map })
    }

    /// A required string argument.
    ///
    /// # Errors
    ///
    /// Returns a message when absent or not a string.
    pub fn str_arg(&self, key: &str) -> Result<&str, String> {
        match self.args.get(key) {
            Some(JsonScalar::Str(s)) => Ok(s),
            Some(_) => Err(format!("{key:?} must be a string")),
            None => Err(format!("cmd {:?} requires {key:?}", self.cmd)),
        }
    }

    /// An optional string argument.
    ///
    /// # Errors
    ///
    /// Returns a message when present but not a string.
    pub fn opt_str_arg(&self, key: &str) -> Result<Option<&str>, String> {
        match self.args.get(key) {
            None => Ok(None),
            Some(JsonScalar::Str(s)) => Ok(Some(s)),
            Some(_) => Err(format!("{key:?} must be a string")),
        }
    }

    /// An optional non-negative integer argument (JSON numbers only).
    ///
    /// # Errors
    ///
    /// Returns a message when present but not a non-negative integer
    /// representable in a `f64` without loss.
    pub fn u64_arg(&self, key: &str) -> Result<Option<u64>, String> {
        match self.args.get(key) {
            None => Ok(None),
            Some(JsonScalar::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Ok(Some(*x as u64))
            }
            Some(_) => Err(format!("{key:?} must be a non-negative integer")),
        }
    }

    /// A required non-negative integer argument.
    ///
    /// # Errors
    ///
    /// Returns a message when absent or malformed.
    pub fn required_u64(&self, key: &str) -> Result<u64, String> {
        self.u64_arg(key)?.ok_or_else(|| format!("cmd {:?} requires {key:?}", self.cmd))
    }

    /// An optional boolean argument.
    ///
    /// # Errors
    ///
    /// Returns a message when present but not a boolean.
    pub fn bool_arg(&self, key: &str) -> Result<Option<bool>, String> {
        match self.args.get(key) {
            None => Ok(None),
            Some(JsonScalar::Bool(b)) => Ok(Some(*b)),
            Some(_) => Err(format!("{key:?} must be a boolean")),
        }
    }
}

/// Builds the `{"ok":true,...}` response envelope; callers add payload
/// fields to the returned object.
pub fn ok_response() -> JsonObject {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", true);
    obj
}

/// Renders an `{"ok":false,"error":...}` response line.
pub fn error_response(message: &str) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", false).field_str("error", message);
    obj.finish()
}

/// Extracts the object rows of an embedded `"key":[{...},{...}]` array
/// from a response line. The flat-JSON parser deliberately rejects nested
/// values, so array-bearing responses (`health`, `timeline`, `stats`,
/// `dump-trace`) are sliced textually: each returned string is one row,
/// itself a flat JSON object ready for [`parse_flat_json`] or a record
/// `from_json`. Returns `None` when the key is absent or the array is
/// unterminated.
pub fn embedded_rows(line: &str, key: &str) -> Option<Vec<String>> {
    let marker = format!("\"{key}\":[");
    let start = line.find(&marker)? + marker.len();
    let bytes = line.as_bytes();
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut row_start = None;
    let mut in_str = false;
    let mut escaped = false;
    for (offset, &b) in bytes[start..].iter().enumerate() {
        let i = start + offset;
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    row_start = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    rows.push(line[row_start?..=i].to_string());
                    row_start = None;
                }
            }
            b']' if depth == 0 => return Some(rows),
            _ => {}
        }
    }
    None
}

/// Reads a response line's `ok` field and extracts `error` when false —
/// the client-side half of the envelope.
///
/// # Errors
///
/// Returns the server's `error` string (or a parse diagnostic) when the
/// response is not `ok`.
pub fn check_response(line: &str) -> Result<BTreeMap<String, JsonScalar>, String> {
    let map = parse_flat_json(line).map_err(|e| format!("bad response JSON: {e}"))?;
    match map.get("ok") {
        Some(JsonScalar::Bool(true)) => Ok(map),
        Some(JsonScalar::Bool(false)) => match map.get("error") {
            Some(JsonScalar::Str(e)) => Err(e.clone()),
            _ => Err("server reported an unspecified error".to_string()),
        },
        _ => Err("response is missing \"ok\"".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_create_request() {
        let r = Request::parse(
            r#"{"cmd":"create","name":"a","protocol":"ciw","backend":"agents","n":64}"#,
        )
        .unwrap();
        assert_eq!(r.cmd, "create");
        assert_eq!(r.str_arg("name").unwrap(), "a");
        assert_eq!(r.required_u64("n").unwrap(), 64);
        assert_eq!(r.u64_arg("seed").unwrap(), None);
    }

    #[test]
    fn rejects_unknown_cmd_and_stray_keys() {
        assert!(Request::parse(r#"{"cmd":"frobnicate"}"#).unwrap_err().contains("unknown cmd"));
        assert!(Request::parse(r#"{"cmd":"ping","name":"a"}"#)
            .unwrap_err()
            .contains("does not take"));
        assert!(Request::parse(r#"{"name":"a"}"#).unwrap_err().contains("missing"));
        assert!(Request::parse("not json").unwrap_err().contains("bad request JSON"));
    }

    #[test]
    fn parses_the_observability_commands() {
        let r = Request::parse(r#"{"cmd":"stats","reset":true}"#).unwrap();
        assert_eq!(r.bool_arg("reset").unwrap(), Some(true));
        assert!(Request::parse(r#"{"cmd":"stats","reset":1}"#).unwrap().bool_arg("reset").is_err());
        let r = Request::parse(r#"{"cmd":"dump-trace","last":8}"#).unwrap();
        assert_eq!(r.u64_arg("last").unwrap(), Some(8));
        assert!(Request::parse(r#"{"cmd":"dump-trace","name":"a"}"#)
            .unwrap_err()
            .contains("does not take"));
    }

    #[test]
    fn rejects_bad_numbers() {
        let r = Request::parse(r#"{"cmd":"step","name":"a","interactions":-3}"#).unwrap();
        assert!(r.u64_arg("interactions").is_err());
        let r = Request::parse(r#"{"cmd":"step","name":"a","interactions":1.5}"#).unwrap();
        assert!(r.u64_arg("interactions").is_err());
    }

    #[test]
    fn embedded_rows_slices_nested_arrays() {
        let line = r#"{"ok":true,"count":2,"commands":[{"cmd":"ping","hist":"1:2,inf:3"},{"cmd":"step","pop":"a{b}"}],"tail":1}"#;
        let rows = embedded_rows(line, "commands").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], r#"{"cmd":"ping","hist":"1:2,inf:3"}"#);
        // Braces inside strings must not confuse the slicer.
        assert_eq!(rows[1], r#"{"cmd":"step","pop":"a{b}"}"#);
        assert_eq!(
            embedded_rows(r#"{"ok":true,"rows":[]}"#, "rows").unwrap(),
            Vec::<String>::new()
        );
        assert!(embedded_rows(line, "missing").is_none());
        assert!(embedded_rows(r#"{"rows":[{"a":1}"#, "rows").is_none(), "unterminated array");
    }

    #[test]
    fn response_envelope_round_trips() {
        let mut ok = ok_response();
        ok.field_u64("leaders", 1);
        let map = check_response(&ok.finish()).unwrap();
        assert!(matches!(map.get("leaders"), Some(JsonScalar::Num(x)) if *x == 1.0));

        let err = error_response("no such population");
        assert_eq!(check_response(&err).unwrap_err(), "no such population");
    }
}
