//! A deterministic, seeded TCP chaos proxy for fault-injection testing.
//!
//! The proxy sits between a client and the daemon and misbehaves on
//! purpose: it can delay traffic, reset connections mid-stream, split
//! writes into byte-dribbles (slowloris), and truncate (partial-write)
//! what it forwards. Every decision is drawn from a per-connection
//! [`SmallRng`] derived from the configured seed and the connection
//! index, so a failing test reproduces byte-for-byte from its seed.
//!
//! Two entry points: [`ChaosProxy::start`] binds a listener for the
//! `ssle chaos` subcommand, and the same in-process handle serves tests
//! (bind to `127.0.0.1:0`, read the bound address, point a client at it).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use population::runner::rng_from_seed;
use rand::rngs::SmallRng;
use rand::Rng;

/// What mischief the proxy is armed with. All probabilities are per
/// forwarded chunk; zero disables that fault.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Listen address (`:0` picks a free port).
    pub listen: String,
    /// Upstream daemon address to forward to.
    pub upstream: String,
    /// Seed all per-connection misbehavior derives from.
    pub seed: u64,
    /// Probability a chunk is delayed by `delay_ms` before forwarding.
    pub delay_prob: f64,
    /// Delay applied when the delay fault fires.
    pub delay_ms: u64,
    /// Probability a connection is reset (both sides torn down) instead
    /// of forwarding a chunk.
    pub reset_prob: f64,
    /// Probability a chunk is truncated to half before forwarding and the
    /// connection then reset — an acknowledged-lost partial write.
    pub partial_prob: f64,
    /// Slowloris mode: forward client→upstream one byte per
    /// `slowloris_ms` tick instead of whole chunks.
    pub slowloris: bool,
    /// Per-byte delay in slowloris mode.
    pub slowloris_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            listen: "127.0.0.1:0".to_string(),
            upstream: "127.0.0.1:7700".to_string(),
            seed: 1,
            delay_prob: 0.0,
            delay_ms: 20,
            reset_prob: 0.0,
            partial_prob: 0.0,
            slowloris: false,
            slowloris_ms: 50,
        }
    }
}

/// Counters the proxy keeps while running.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections torn down by the reset fault.
    pub resets: AtomicU64,
    /// Chunks delayed.
    pub delays: AtomicU64,
    /// Chunks truncated by the partial-write fault.
    pub partials: AtomicU64,
}

/// A running chaos proxy.
pub struct ChaosProxy {
    listener: TcpListener,
    config: ChaosConfig,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Binds the listen address and prepares the proxy (no traffic flows
    /// until [`ChaosProxy::run`] or [`ChaosProxy::spawn`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        Ok(ChaosProxy {
            listener,
            config,
            stats: Arc::new(ChaosStats::default()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    ///
    /// # Errors
    ///
    /// Returns the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared fault counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }

    /// A handle that makes the accept loop exit.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the accept loop on this thread until stopped.
    pub fn run(self) {
        let mut conn_index = 0u64;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            match self.listener.accept() {
                Ok((client, _peer)) => {
                    self.stats.connections.fetch_add(1, Ordering::SeqCst);
                    let config = self.config.clone();
                    let stats = Arc::clone(&self.stats);
                    // Mix the connection index into the seed so each
                    // connection draws an independent, reproducible stream.
                    let seed = config.seed ^ conn_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    conn_index += 1;
                    thread::spawn(move || proxy_connection(client, &config, seed, &stats));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Runs the accept loop on a background thread (the in-process hook
    /// tests use); stop via [`ChaosProxy::stop_handle`] and join.
    pub fn spawn(self) -> JoinHandle<()> {
        thread::spawn(move || self.run())
    }
}

/// One RNG draw per fault decision, in a fixed order, so the fault
/// sequence depends only on (seed, chunk index), not on timing.
struct FaultDice {
    rng: SmallRng,
}

impl FaultDice {
    fn roll(&mut self, prob: f64) -> bool {
        // Draw unconditionally so disabling one fault does not shift the
        // stream of another.
        let x: f64 = self.rng.gen();
        prob > 0.0 && x < prob
    }
}

fn proxy_connection(client: TcpStream, config: &ChaosConfig, seed: u64, stats: &Arc<ChaosStats>) {
    let upstream = match TcpStream::connect(&config.upstream) {
        Ok(s) => s,
        Err(_) => return, // daemon down: drop the client, a fault in itself
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    // Two pumps: client→upstream draws faults from the connection RNG;
    // upstream→client from its companion stream (seed ^ 1), so the two
    // directions stay independent but reproducible.
    let c2u = pump(
        client.try_clone(),
        upstream.try_clone(),
        config.clone(),
        FaultDice { rng: rng_from_seed(seed) },
        Arc::clone(stats),
        true,
    );
    let u2c = pump(
        Ok(upstream),
        Ok(client),
        config.clone(),
        FaultDice { rng: rng_from_seed(seed ^ 1) },
        Arc::clone(stats),
        false,
    );
    if let Some(h) = c2u {
        let _ = h.join();
    }
    if let Some(h) = u2c {
        let _ = h.join();
    }
}

fn pump(
    from: std::io::Result<TcpStream>,
    to: std::io::Result<TcpStream>,
    config: ChaosConfig,
    mut dice: FaultDice,
    stats: Arc<ChaosStats>,
    client_to_upstream: bool,
) -> Option<JoinHandle<()>> {
    let (mut from, mut to) = match (from, to) {
        (Ok(f), Ok(t)) => (f, t),
        _ => return None,
    };
    Some(thread::spawn(move || {
        let mut buf = [0u8; 4096];
        loop {
            let read = match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            if dice.roll(config.reset_prob) {
                stats.resets.fetch_add(1, Ordering::SeqCst);
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
            if dice.roll(config.delay_prob) {
                stats.delays.fetch_add(1, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(config.delay_ms));
            }
            let chunk: &[u8] = if dice.roll(config.partial_prob) && read > 1 {
                stats.partials.fetch_add(1, Ordering::SeqCst);
                &buf[..read / 2]
            } else {
                &buf[..read]
            };
            let truncated = chunk.len() < read;
            let write_failed = if config.slowloris && client_to_upstream {
                // Dribble bytes: exercises the server's per-line deadline.
                let mut failed = false;
                for byte in chunk {
                    if to.write_all(std::slice::from_ref(byte)).is_err() || to.flush().is_err() {
                        failed = true;
                        break;
                    }
                    thread::sleep(Duration::from_millis(config.slowloris_ms));
                }
                failed
            } else {
                to.write_all(chunk).is_err() || to.flush().is_err()
            };
            if write_failed {
                break;
            }
            if truncated {
                // A partial write only makes sense if the rest never
                // arrives: reset after forwarding the half chunk.
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
        }
        let _ = to.shutdown(Shutdown::Both);
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream for proxy tests.
    fn echo_upstream() -> (String, Arc<AtomicBool>, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::spawn(move || loop {
            if stop2.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    thread::spawn(move || {
                        let mut writer = stream.try_clone().unwrap();
                        let mut reader = BufReader::new(stream);
                        let mut line = String::new();
                        while let Ok(n) = reader.read_line(&mut line) {
                            if n == 0 {
                                return;
                            }
                            if writer.write_all(line.as_bytes()).is_err() {
                                return;
                            }
                            line.clear();
                        }
                    });
                }
                Err(_) => thread::sleep(Duration::from_millis(2)),
            }
        });
        (addr, stop, handle)
    }

    #[test]
    fn clean_proxy_forwards_both_ways() {
        let (upstream, stop_echo, echo) = echo_upstream();
        let proxy = ChaosProxy::start(ChaosConfig { upstream, ..ChaosConfig::default() }).unwrap();
        let addr = proxy.local_addr().unwrap().to_string();
        let stop = proxy.stop_handle();
        let handle = proxy.spawn();

        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"hello through chaos\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello through chaos\n");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        stop_echo.store(true, Ordering::SeqCst);
        echo.join().unwrap();
    }

    #[test]
    fn reset_fault_fires_deterministically() {
        let (upstream, stop_echo, echo) = echo_upstream();
        let proxy = ChaosProxy::start(ChaosConfig {
            upstream,
            seed: 42,
            reset_prob: 1.0,
            ..ChaosConfig::default()
        })
        .unwrap();
        let addr = proxy.local_addr().unwrap().to_string();
        let stats = proxy.stats();
        let stop = proxy.stop_handle();
        let handle = proxy.spawn();

        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let _ = writer.write_all(b"doomed\n");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Either the read errors or the connection closes without data.
        let got = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(got, 0, "reset connection delivered {line:?}");
        // The reset counter catches up once the pump thread runs.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while stats.resets.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "reset never counted");
            thread::sleep(Duration::from_millis(5));
        }

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        stop_echo.store(true, Ordering::SeqCst);
        echo.join().unwrap();
    }
}
