//! Managed live populations — the daemon's unit of multiplexing.
//!
//! A [`Managed`] population bundles a simulation backend with the
//! [`SteppedDriver`] that paces it: every `step` request runs bounded
//! slices (at most one parallel-time unit each) so externally injected
//! events fire between slices, convergence is probed at every boundary,
//! and a long-running step cannot wedge the population's lock for an
//! unbounded stretch of interactions at a time.
//!
//! Four concrete combinations hide behind the trait object: the two
//! snapshottable protocols with a [`Corruptor`] impl (`ciw`, `oss`) on the
//! two backends (`agents`, `counts`). The loosely-stabilizing protocol is
//! snapshottable but has no corruptor (no adversarial joins), and
//! Sublinear-Time-SSR has no snapshot codec — neither can be served.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::time::Instant;

use population::fault::{Corruptor, NoFaults};
use population::metrics::Metrics;
use population::observer::NoopObserver;
use population::runner::rng_from_seed;
use population::scheduler::Scheduler;
use population::snapshot::{
    restore_agents, restore_counts, snapshot_agents, snapshot_counts, SnapshotDoc, SnapshotProtocol,
};
use population::{
    BatchSimulation, ByzantineSet, ChurnAction, ChurnPlan, DynamicBackend, Simulation,
    SimulationBackend, SteppedDriver,
};
use ssle::{CaiIzumiWada, OptimalSilentSsr};

/// Agent-array backend with the recording metrics sink attached.
type AgentSim<P> = Simulation<P, NoopObserver, NoFaults, Scheduler, Metrics>;
/// Count-based backend with the recording metrics sink attached.
type CountSim<P> = BatchSimulation<P, NoopObserver, NoFaults, Metrics>;

/// How many slice-boundary checkpoints each population retains.
const TIMELINE_CAP: usize = 256;

/// Largest population the daemon will create (the counts backend handles
/// far more, but a service request should not be able to allocate without
/// bound).
pub const MAX_N: u64 = 100_000_000;

/// One slice-boundary checkpoint in a population's retained timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Interactions performed when the checkpoint was taken.
    pub interactions: u64,
    /// Piecewise parallel time at the checkpoint.
    pub parallel_time: f64,
    /// Live population size.
    pub live: usize,
    /// Agents outputting rank 1.
    pub leaders: u32,
    /// Whether the configuration was correctly ranked at `n₀`.
    pub ranked: bool,
}

/// What one `step` request did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Interactions actually performed (may undershoot the request only
    /// when the slice made no progress).
    pub performed: u64,
    /// Driver slices the step was split into.
    pub slices: u64,
}

/// A population's full queryable state.
#[derive(Debug, Clone, PartialEq)]
pub struct Status {
    /// Protocol tag (`"ciw"` or `"oss"`).
    pub protocol: &'static str,
    /// Backend name (`"agents"` or `"counts"`).
    pub backend: &'static str,
    /// The size the protocol was configured for.
    pub n0: usize,
    /// Live population size (drifts under churn).
    pub live: usize,
    /// Interactions performed so far.
    pub interactions: u64,
    /// Piecewise parallel time.
    pub parallel_time: f64,
    /// Whether the last boundary probe saw a correct ranking at `n₀`.
    pub ranked: bool,
    /// Agents outputting rank 1 at the last boundary probe.
    pub leaders: u32,
    /// Agents joined / departed / replaced / corrupted, and Byzantine
    /// strikes, since creation.
    pub joins: u64,
    /// See `joins`.
    pub leaves: u64,
    /// See `joins`.
    pub replacements: u64,
    /// See `joins`.
    pub corruptions: u64,
    /// See `joins`.
    pub byz_strikes: u64,
    /// Injected events that have not re-stabilized yet.
    pub open_faults: usize,
    /// Fraction of observed steps with a unique leader.
    pub availability: f64,
    /// The creation seed. A snapshot restore does not store it (the seed
    /// lives in the RNG position); [`restore`] re-stamps the value the
    /// registry recovered from the journal header, or 0 when no journal
    /// survived.
    pub seed: u64,
}

/// The unique-leader query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaderReport {
    /// Agents outputting rank 1 right now.
    pub leaders: u32,
    /// Whether the configuration is correctly ranked at `n₀`.
    pub ranked: bool,
    /// Index of the unique leader, on backends with agent identities.
    pub index: Option<usize>,
}

/// The rank-histogram query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RanksReport {
    /// Whether the configuration is correctly ranked at `n₀`.
    pub ranked: bool,
    /// Ranks in `1..=n₀` held by exactly one agent.
    pub singleton_ranks: usize,
    /// Ranks held by two or more agents.
    pub duplicated_ranks: usize,
    /// Ranks held by no agent.
    pub missing_ranks: usize,
}

/// Membership events a client can inject between slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Adversarial joins.
    Join,
    /// Random departures.
    Leave,
    /// Adversarial overwrites of random agents.
    Corrupt,
}

/// The object-safe face of one live population.
pub trait Managed: Send {
    /// Protocol tag (`"ciw"` or `"oss"`).
    fn protocol_name(&self) -> &'static str;
    /// Backend name (`"agents"` or `"counts"`).
    fn backend_name(&self) -> &'static str;
    /// Runs up to `interactions` more interactions in bounded slices.
    fn step(&mut self, interactions: u64) -> StepReport;
    /// Injects one membership event; returns agents touched after clamps.
    fn inject(&mut self, kind: EventKind, k: usize) -> usize;
    /// Pins the injected-event random stream (victim and adversarial-state
    /// selection) to `seed`. The stream is driver state the snapshot does
    /// not capture; the journal layer reseeds it from the command sequence
    /// number before every injection so replay is exact.
    fn reseed_events(&mut self, seed: u64);
    /// Rebinds the membership schedule (`churn-plan`).
    fn set_churn(&mut self, plan: &ChurnPlan);
    /// Full queryable state.
    fn status(&self) -> Status;
    /// The unique-leader query (freshly probed).
    fn leader(&self) -> LeaderReport;
    /// The rank-histogram query (freshly probed).
    fn ranks(&self) -> RanksReport;
    /// The most recent `last` slice-boundary checkpoints, oldest first.
    fn timeline(&self, last: usize) -> Vec<Checkpoint>;
    /// The engine-metrics record for this population as a JSONL row.
    fn metrics_record_json(&self, experiment: &str) -> String;
    /// Serializes the population to the versioned snapshot format.
    fn snapshot_jsonl(&self) -> String;
}

/// The backend-specific pieces [`Pop`] cannot get through
/// [`DynamicBackend`]: the snapshot codec and the metrics sink.
trait ServeBackend<P: Corruptor + SnapshotProtocol>: DynamicBackend<P> {
    fn snapshot_doc(&self) -> SnapshotDoc;
    fn engine_metrics(&self) -> &Metrics;
}

impl<P> ServeBackend<P> for AgentSim<P>
where
    P: Corruptor + SnapshotProtocol,
{
    fn snapshot_doc(&self) -> SnapshotDoc {
        snapshot_agents(self)
    }

    fn engine_metrics(&self) -> &Metrics {
        self.metrics()
    }
}

impl<P> ServeBackend<P> for CountSim<P>
where
    P: Corruptor + SnapshotProtocol,
    P::State: Eq + std::hash::Hash,
{
    fn snapshot_doc(&self) -> SnapshotDoc {
        snapshot_counts(self)
    }

    fn engine_metrics(&self) -> &Metrics {
        self.metrics()
    }
}

/// One managed population: a backend plus its pacing driver and retained
/// timeline.
struct Pop<P, B>
where
    P: Corruptor + SnapshotProtocol,
    B: ServeBackend<P>,
{
    backend: B,
    driver: SteppedDriver,
    seed: u64,
    timeline: VecDeque<Checkpoint>,
    created: Instant,
    _protocol: PhantomData<fn() -> P>,
}

impl<P, B> Pop<P, B>
where
    P: Corruptor + SnapshotProtocol,
    B: ServeBackend<P>,
{
    fn new(mut backend: B, seed: u64, resumed: bool) -> Self {
        let driver = if resumed {
            SteppedDriver::bind_resumed(&mut backend, &ChurnPlan::none(), &ByzantineSet::none())
        } else {
            SteppedDriver::bind(&mut backend, &ChurnPlan::none(), &ByzantineSet::none())
        };
        let mut pop = Pop {
            backend,
            driver,
            seed,
            timeline: VecDeque::new(),
            created: Instant::now(),
            _protocol: PhantomData,
        };
        pop.record_checkpoint();
        pop
    }

    fn record_checkpoint(&mut self) {
        if self.timeline.len() == TIMELINE_CAP {
            self.timeline.pop_front();
        }
        self.timeline.push_back(Checkpoint {
            interactions: self.backend.interactions(),
            parallel_time: self.driver.parallel_time(),
            live: self.backend.population_size(),
            leaders: self.driver.leaders(),
            ranked: self.driver.is_ranked(),
        });
    }
}

impl<P, B> Managed for Pop<P, B>
where
    P: Corruptor + SnapshotProtocol,
    B: ServeBackend<P> + Send,
{
    fn protocol_name(&self) -> &'static str {
        P::TAG
    }

    fn backend_name(&self) -> &'static str {
        <B as SimulationBackend<P>>::NAME
    }

    fn step(&mut self, interactions: u64) -> StepReport {
        let budget = self.backend.interactions().saturating_add(interactions);
        let mut performed = 0;
        let mut slices = 0;
        while self.backend.interactions() < budget {
            // One parallel-time unit per slice: injected schedules fire on
            // time and convergence is probed at every boundary.
            let chunk = (self.backend.population_size() as u64).max(1);
            let out = self.driver.slice(&mut self.backend, chunk, budget);
            slices += 1;
            performed += out.performed;
            if out.performed == 0 {
                break;
            }
        }
        self.record_checkpoint();
        StepReport { performed, slices }
    }

    fn inject(&mut self, kind: EventKind, k: usize) -> usize {
        let applied = match kind {
            EventKind::Join => self.driver.inject(&mut self.backend, ChurnAction::Join(k)),
            EventKind::Leave => self.driver.inject(&mut self.backend, ChurnAction::Leave(k)),
            EventKind::Corrupt => self.driver.inject_corruption(&mut self.backend, k),
        };
        self.record_checkpoint();
        applied
    }

    fn reseed_events(&mut self, seed: u64) {
        self.driver.reseed_event_stream(seed);
    }

    fn set_churn(&mut self, plan: &ChurnPlan) {
        self.driver.rebind_churn(plan);
    }

    fn status(&self) -> Status {
        let (joins, leaves, replacements, corruptions, byz_strikes) = self.driver.tallies();
        Status {
            protocol: P::TAG,
            backend: <B as SimulationBackend<P>>::NAME,
            n0: self.backend.configured_n(),
            live: self.backend.population_size(),
            interactions: self.backend.interactions(),
            parallel_time: self.driver.parallel_time(),
            ranked: self.driver.is_ranked(),
            leaders: self.driver.leaders(),
            joins,
            leaves,
            replacements,
            corruptions,
            byz_strikes,
            open_faults: self.driver.open_faults(),
            availability: self.driver.availability(self.backend.interactions()),
            seed: self.seed,
        }
    }

    fn leader(&self) -> LeaderReport {
        let tracker = self.backend.rank_tracker();
        LeaderReport {
            leaders: tracker.count_of(1),
            ranked: tracker.is_correct()
                && self.backend.population_size() == self.backend.configured_n(),
            index: self.backend.leader_index(),
        }
    }

    fn ranks(&self) -> RanksReport {
        let tracker = self.backend.rank_tracker();
        let n0 = self.backend.configured_n();
        let mut singleton = 0;
        let mut duplicated = 0;
        let mut missing = 0;
        for r in 1..=n0 {
            match tracker.count_of(r) {
                0 => missing += 1,
                1 => singleton += 1,
                _ => duplicated += 1,
            }
        }
        RanksReport {
            ranked: tracker.is_correct() && self.backend.population_size() == n0,
            singleton_ranks: singleton,
            duplicated_ranks: duplicated,
            missing_ranks: missing,
        }
    }

    fn timeline(&self, last: usize) -> Vec<Checkpoint> {
        let skip = self.timeline.len().saturating_sub(last);
        self.timeline.iter().skip(skip).copied().collect()
    }

    fn metrics_record_json(&self, experiment: &str) -> String {
        self.backend
            .engine_metrics()
            .to_record(
                experiment,
                P::TAG,
                <B as SimulationBackend<P>>::NAME,
                self.backend.configured_n() as u64,
                None,
                self.seed,
                self.created.elapsed().as_secs_f64(),
            )
            .to_json()
    }

    fn snapshot_jsonl(&self) -> String {
        self.backend.snapshot_doc().to_jsonl()
    }
}

fn validated_n(n: u64) -> Result<usize, String> {
    if n < 2 {
        return Err("populations need at least 2 agents".to_string());
    }
    if n > MAX_N {
        return Err(format!("n = {n} exceeds the service cap of {MAX_N}"));
    }
    Ok(n as usize)
}

/// Creates a managed population from wire parameters. The initial
/// configuration is adversarial (uniformly random states drawn from the
/// seed's companion stream, `seed ^ 1`, matching the trial runners).
///
/// # Errors
///
/// Returns a message for unknown protocol/backend names or an out-of-range
/// `n`.
pub fn create(
    protocol: &str,
    backend: &str,
    n: u64,
    seed: u64,
) -> Result<Box<dyn Managed>, String> {
    let n = validated_n(n)?;
    match (protocol, backend) {
        ("ciw", "agents") => Ok(agents_pop(CaiIzumiWada::new(n), seed)),
        ("ciw", "counts") => Ok(counts_pop(CaiIzumiWada::new(n), seed)),
        ("oss", "agents") => Ok(agents_pop(OptimalSilentSsr::new(n), seed)),
        ("oss", "counts") => Ok(counts_pop(OptimalSilentSsr::new(n), seed)),
        ("ciw" | "oss", other) => Err(format!("unknown backend {other:?} (agents, counts)")),
        (other, _) => Err(format!("unknown protocol {other:?} (ciw, oss)")),
    }
}

fn agents_pop<P>(protocol: P, seed: u64) -> Box<dyn Managed>
where
    P: Corruptor + SnapshotProtocol + Send + Sync + 'static,
    P::State: Send,
{
    let initial = ssle::adversary::random_configuration(&protocol, &mut rng_from_seed(seed ^ 1));
    let sim = Simulation::new(protocol, initial, seed).with_metrics(Metrics::new());
    Box::new(Pop::new(sim, seed, false))
}

fn counts_pop<P>(protocol: P, seed: u64) -> Box<dyn Managed>
where
    P: Corruptor + SnapshotProtocol + Send + Sync + 'static,
    P::State: Eq + std::hash::Hash + Send,
{
    let initial = ssle::adversary::random_configuration(&protocol, &mut rng_from_seed(seed ^ 1));
    let sim = BatchSimulation::new(protocol, initial, seed).with_metrics(Metrics::new());
    Box::new(Pop::new(sim, seed, false))
}

/// Rehydrates a managed population from a parsed snapshot document.
/// `seed` is the creation seed recovered from the journal header (0 when
/// none survived) — the snapshot itself does not carry it, and without
/// re-stamping it here every restored population would report `seed: 0`
/// in `status` forever after.
///
/// # Errors
///
/// Returns a message for unknown tags or a document that fails the codec's
/// validation.
pub fn restore(doc: &SnapshotDoc, seed: u64) -> Result<Box<dyn Managed>, String> {
    let err = |e: population::SnapshotError| e.to_string();
    match (doc.protocol.as_str(), doc.backend.as_str()) {
        ("ciw", "agents") => {
            let sim = restore_agents(CaiIzumiWada::new(doc.param as usize), doc).map_err(err)?;
            Ok(Box::new(Pop::new(sim.with_metrics(Metrics::new()), seed, true)))
        }
        ("ciw", "counts") => {
            let sim = restore_counts(CaiIzumiWada::new(doc.param as usize), doc).map_err(err)?;
            Ok(Box::new(Pop::new(sim.with_metrics(Metrics::new()), seed, true)))
        }
        ("oss", "agents") => {
            let sim =
                restore_agents(OptimalSilentSsr::new(doc.param as usize), doc).map_err(err)?;
            Ok(Box::new(Pop::new(sim.with_metrics(Metrics::new()), seed, true)))
        }
        ("oss", "counts") => {
            let sim =
                restore_counts(OptimalSilentSsr::new(doc.param as usize), doc).map_err(err)?;
            Ok(Box::new(Pop::new(sim.with_metrics(Metrics::new()), seed, true)))
        }
        (p, b) => Err(format!("cannot serve snapshot of protocol {p:?} on backend {b:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::snapshot::SnapshotDoc;

    #[test]
    fn create_validates_names_and_sizes() {
        assert!(create("ciw", "agents", 16, 1).is_ok());
        assert!(create("oss", "counts", 16, 1).is_ok());
        assert!(create("loose", "agents", 16, 1).err().unwrap().contains("unknown protocol"));
        assert!(create("ciw", "gpu", 16, 1).err().unwrap().contains("unknown backend"));
        assert!(create("ciw", "agents", 1, 1).err().unwrap().contains("at least 2"));
        assert!(create("ciw", "agents", MAX_N + 1, 1).err().unwrap().contains("cap"));
    }

    #[test]
    fn step_makes_progress_and_checkpoints() {
        let mut pop = create("ciw", "agents", 24, 7).unwrap();
        let before = pop.status();
        let report = pop.step(2_000);
        assert_eq!(report.performed, 2_000);
        assert!(report.slices >= 2_000 / 24);
        let after = pop.status();
        assert_eq!(after.interactions, before.interactions + 2_000);
        assert!(after.parallel_time > before.parallel_time);
        assert!(!pop.timeline(10).is_empty());
    }

    #[test]
    fn events_change_membership_and_queries_reflect_it() {
        let mut pop = create("oss", "counts", 16, 3).unwrap();
        assert_eq!(pop.inject(EventKind::Join, 4), 4);
        assert_eq!(pop.status().live, 20);
        assert_eq!(pop.inject(EventKind::Leave, 4), 4);
        assert_eq!(pop.status().live, 16);
        assert_eq!(pop.inject(EventKind::Corrupt, 5), 5);
        let s = pop.status();
        assert_eq!((s.joins, s.leaves, s.corruptions), (4, 4, 5));
        // Drive to re-stabilization; OSS at n=16 needs far less than this.
        for _ in 0..10_000 {
            if pop.leader().ranked {
                break;
            }
            pop.step(16 * 16);
        }
        let leader = pop.leader();
        assert!(leader.ranked, "never re-stabilized after events");
        assert_eq!(leader.leaders, 1);
        let ranks = pop.ranks();
        assert_eq!(ranks.singleton_ranks, 16);
        assert_eq!((ranks.duplicated_ranks, ranks.missing_ranks), (0, 0));
    }

    #[test]
    fn leader_index_only_on_agents() {
        let mut agents = create("ciw", "agents", 8, 5).unwrap();
        while !agents.leader().ranked {
            agents.step(8 * 64);
        }
        assert!(agents.leader().index.is_some());

        let mut counts = create("ciw", "counts", 8, 5).unwrap();
        while !counts.leader().ranked {
            counts.step(8 * 64);
        }
        assert_eq!(counts.leader().index, None);
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        for backend in ["agents", "counts"] {
            let mut pop = create("oss", backend, 12, 9).unwrap();
            pop.step(5_000);
            let doc = SnapshotDoc::from_jsonl(&pop.snapshot_jsonl()).unwrap();
            let mut restored = restore(&doc, 9).unwrap();
            assert_eq!(restored.status().seed, 9, "restore must re-stamp the seed");
            pop.step(5_000);
            restored.step(5_000);
            assert_eq!(
                pop.snapshot_jsonl(),
                restored.snapshot_jsonl(),
                "{backend} diverged after restore"
            );
        }
    }

    #[test]
    fn metrics_record_is_valid_jsonl() {
        let mut pop = create("ciw", "counts", 32, 2).unwrap();
        pop.step(10_000);
        let json = pop.metrics_record_json("service");
        let line = population::RecordLine::from_json(&json).unwrap();
        assert!(matches!(line, population::RecordLine::Metrics(_)));
    }
}
