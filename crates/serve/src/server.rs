//! The daemon: a nonblocking accept loop feeding the bounded thread pool.
//!
//! Each accepted connection becomes one pool job that serves requests
//! line-by-line until the peer closes (or idles past the read timeout).
//! When the pool's queue is full the accept loop answers
//! `{"ok":false,"error":"busy"}` immediately and closes — backpressure,
//! never a hang.
//!
//! Request lines are bounded two ways so a hostile or faulty peer cannot
//! pin a worker: a maximum line length (oversized lines are refused and
//! the connection closed) and a per-line read deadline (a line that
//! dribbles in slower than the deadline — slowloris — is dropped even
//! though each byte resets the socket's idle timer).
//!
//! Shutdown is graceful from any trigger — a `shutdown` request, SIGINT,
//! or SIGTERM: the accept loop drains, workers finish their connections,
//! and every population is snapshotted to the configured directory before
//! the daemon returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use population::record::{JsonObject, ServerStatsRecord};

use crate::journal::{FsyncPolicy, Op};
use crate::obs::{self, ServerStats};
use crate::pool::{PoolError, ThreadPool};
use crate::pop::{Checkpoint, Status};
use crate::registry::{Applied, ApplyOutcome, Durability, Registry};
use crate::wire::{error_response, ok_response, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Pending-connection queue capacity before `busy` responses.
    pub queue: usize,
    /// Where snapshots and journals live; `None` disables durability.
    pub snapshot_dir: Option<PathBuf>,
    /// Per-connection idle read timeout (waiting for a line to *start*).
    pub read_timeout: Duration,
    /// Maximum request-line length in bytes; longer lines are refused.
    pub max_line: usize,
    /// Deadline for one request line to arrive *completely* once its
    /// first byte is in — the slowloris guard.
    pub line_deadline: Duration,
    /// When journal appends are forced to disk.
    pub fsync: FsyncPolicy,
    /// Auto-snapshot after this many journaled commands per population.
    pub autosnap_every: u64,
    /// Log requests slower than this many milliseconds to stderr with
    /// their span breakdown; 0 disables the slow-request log.
    pub slow_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let durability = Durability::default();
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            threads: 4,
            queue: 64,
            snapshot_dir: None,
            read_timeout: Duration::from_secs(30),
            max_line: 64 * 1024,
            line_deadline: Duration::from_secs(10),
            fsync: durability.fsync,
            autosnap_every: durability.autosnap_every,
            slow_ms: 0,
        }
    }
}

/// What a daemon run did, for the caller's report.
#[derive(Debug)]
pub struct ServeSummary {
    /// Populations restored at boot: `(name, outcome)`.
    pub restored: Vec<(String, Result<(), String>)>,
    /// Populations snapshotted at shutdown: `(name, outcome)`.
    pub snapshots: Vec<(String, Result<PathBuf, String>)>,
    /// Handler panics survived (workers respawned).
    pub panics: u64,
    /// Poisoned populations quarantined and healed while serving.
    pub quarantines: u64,
}

/// Shutdown-signal latch — set by the raw handler for SIGINT *and*
/// SIGTERM, polled by the accept loop. Process-global because signal
/// handlers are.
static SIGINT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM → graceful-shutdown latch via the raw C
/// `signal` binding (the environment has no signal-handling crate), so a
/// plain `kill` gets the same snapshot-all treatment as Ctrl-C.
/// Idempotent.
pub fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT_NUM: i32 = 2;
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGINT_NUM, on_shutdown_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM_NUM, on_shutdown_signal as extern "C" fn(i32) as usize);
    }
}

/// Whether SIGINT/SIGTERM has been received since process start.
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    pool: ThreadPool,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    read_timeout: Duration,
    max_line: usize,
    line_deadline: Duration,
    restored: Vec<(String, Result<(), String>)>,
}

impl Server {
    /// Binds the listener, restores any on-disk state in the configured
    /// directory (snapshots plus journal tails), and prepares the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let registry = Arc::new(Registry::with_durability(
            config.snapshot_dir.clone(),
            Durability { fsync: config.fsync, autosnap_every: config.autosnap_every.max(1) },
        ));
        let restored = registry.restore_all();
        let stats = Arc::new(ServerStats::new(config.slow_ms, config.snapshot_dir.clone()));
        registry.set_obs(Arc::clone(&stats));
        // A handler panic dumps the flight recorder before the worker
        // respawns, so the traces leading up to the crash survive it.
        let dump_stats = Arc::clone(&stats);
        let pool = ThreadPool::with_panic_hook(
            config.threads.max(1),
            config.queue.max(1),
            Some(Arc::new(move || {
                let _ = dump_stats.dump("panic");
            })),
        );
        Ok(Server {
            listener,
            registry,
            pool,
            stop: Arc::new(AtomicBool::new(false)),
            stats,
            read_timeout: config.read_timeout,
            max_line: config.max_line.max(256),
            line_deadline: config.line_deadline,
            restored,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    ///
    /// # Errors
    ///
    /// Returns the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return (same effect as the
    /// `shutdown` request).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The shared registry (for in-process embedding, e.g. benches).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The shared request-tracing aggregate (also reachable through the
    /// registry via [`Registry::obs`]).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Populations restored at boot: `(name, outcome)`.
    pub fn restored(&self) -> &[(String, Result<(), String>)] {
        &self.restored
    }

    /// Runs the accept loop until `shutdown`/SIGINT/SIGTERM/stop-handle,
    /// then drains the pool and snapshots every population.
    pub fn run(self) -> ServeSummary {
        loop {
            if self.stop.load(Ordering::SeqCst) || sigint_received() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        self.pool.shutdown();
        let snapshots = self.registry.snapshot_all();
        ServeSummary {
            restored: self.restored,
            snapshots,
            panics: self.pool.panics(),
            quarantines: self.registry.quarantines(),
        }
    }

    fn dispatch(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        // The pool consumes the closure (and the stream inside it) even on
        // refusal, so clone a handle for the busy response first.
        let refusal = stream.try_clone().ok();
        let registry = Arc::clone(&self.registry);
        let stop = Arc::clone(&self.stop);
        let stats = Arc::clone(&self.stats);
        let limits = LineLimits {
            max_line: self.max_line,
            deadline: self.line_deadline,
            idle: self.read_timeout,
        };
        stats.set_queue_depth(self.pool.queued() as u64);
        // Pool queue wait: stamped at enqueue, measured when the worker
        // picks the job up, attributed to the connection's first request.
        let enqueued = obs::COMPILED.then(Instant::now);
        match self.pool.try_execute(move || {
            let queue_ns =
                enqueued.map_or(0, |t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
            handle_connection(stream, &registry, &stop, limits, &stats, queue_ns)
        }) {
            Ok(()) => {}
            Err(PoolError::Busy | PoolError::ShuttingDown) => {
                self.stats.record_busy();
                // Backpressure: answer immediately rather than queueing
                // unboundedly or hanging the accept loop.
                if let Some(mut s) = refusal {
                    let _ = s.write_all(error_response("busy").as_bytes());
                    let _ = s.write_all(b"\n");
                    let _ = s.flush();
                }
            }
        }
    }
}

/// Per-connection line-reading limits.
#[derive(Debug, Clone, Copy)]
struct LineLimits {
    max_line: usize,
    deadline: Duration,
    idle: Duration,
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer.
    Line,
    /// Peer closed (a torn final line without `\n` is dropped).
    Eof,
    /// The line exceeded `max_line` bytes.
    TooLong,
    /// The line started but did not complete within the deadline
    /// (slowloris), or the connection idled out before a line started.
    TimedOut { mid_line: bool },
    /// Any other socket error.
    Failed,
}

/// Reads one `\n`-terminated line of at most `max_line` bytes, giving the
/// peer `limits.idle` to start the line and `limits.deadline` to finish
/// it. The socket's read timeout is re-armed to the *remaining* deadline
/// between chunks, so a peer dribbling one byte per idle-period cannot
/// hold the worker (slowloris guard).
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    limits: LineLimits,
) -> LineRead {
    buf.clear();
    let mut started: Option<Instant> = None;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return LineRead::Eof,
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineRead::TimedOut { mid_line: started.is_some() };
            }
            Err(_) => return LineRead::Failed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > limits.max_line {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                // Next line gets a fresh idle window.
                let _ = reader.get_ref().set_read_timeout(Some(limits.idle));
                return LineRead::Line;
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > limits.max_line {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
                // A line is in flight: arm (or tighten to) the remaining
                // per-line deadline.
                let start = *started.get_or_insert_with(Instant::now);
                let elapsed = start.elapsed();
                if elapsed >= limits.deadline {
                    return LineRead::TimedOut { mid_line: true };
                }
                let _ = reader.get_ref().set_read_timeout(Some(limits.deadline - elapsed));
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Arc<Registry>,
    stop: &Arc<AtomicBool>,
    limits: LineLimits,
    stats: &ServerStats,
    mut queue_ns: u64,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let respond = |writer: &mut TcpStream, response: &str| {
        writer.write_all(response.as_bytes()).is_ok()
            && writer.write_all(b"\n").is_ok()
            && writer.flush().is_ok()
    };
    loop {
        match read_line_bounded(&mut reader, &mut buf, limits) {
            LineRead::Line => {
                let trimmed = String::from_utf8_lossy(&buf);
                let trimmed = trimmed.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let started = obs::COMPILED.then(Instant::now);
                obs::trace_begin();
                let (response, meta) = serve_line(registry, stop, trimmed);
                let sent = obs::time_span(obs::Span::Write, || respond(&mut writer, &response));
                if let (Some(started), Some(mut spans)) = (started, obs::trace_take()) {
                    // The Journal span wraps the whole append (fsync
                    // included); subtract the inner Fsync span so the final
                    // spans partition the request without overlap.
                    spans[obs::Span::Journal as usize] = spans[obs::Span::Journal as usize]
                        .saturating_sub(spans[obs::Span::Fsync as usize]);
                    spans[obs::Span::Queue as usize] = queue_ns;
                    let total_ns = queue_ns
                        .saturating_add(u64::try_from(started.elapsed().as_nanos()).unwrap_or(0));
                    queue_ns = 0; // pool wait belongs to the first request only
                    stats.record(obs::Trace {
                        cmd: meta.cmd,
                        pop: meta.pop,
                        id: meta.id,
                        ok: meta.ok,
                        total_us: total_ns / 1_000,
                        spans_us: std::array::from_fn(|i| spans[i] / 1_000),
                    });
                }
                if !sent {
                    return;
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            LineRead::Eof | LineRead::Failed | LineRead::TimedOut { mid_line: false } => return,
            LineRead::TooLong => {
                // Refuse and close: the rest of the oversized line is
                // unconsumed and there is no resynchronizing mid-stream.
                let _ = respond(
                    &mut writer,
                    &error_response(&format!("request line exceeds {} bytes", limits.max_line)),
                );
                return;
            }
            LineRead::TimedOut { mid_line: true } => {
                let _ =
                    respond(&mut writer, &error_response("request line read deadline exceeded"));
                return;
            }
        }
    }
}

/// What the tracer needs to know about a served line, extracted before the
/// request is consumed by dispatch.
struct LineMeta {
    cmd: String,
    pop: String,
    id: String,
    ok: bool,
}

/// Serves one request line and reports trace metadata alongside the
/// response. Unparsable lines are attributed to the `other` command slot.
fn serve_line(registry: &Registry, stop: &AtomicBool, line: &str) -> (String, LineMeta) {
    let parsed = obs::time_span(obs::Span::Parse, || Request::parse(line));
    match parsed {
        Ok(request) => {
            let cmd = request.cmd.clone();
            let pop = request.opt_str_arg("name").ok().flatten().unwrap_or("").to_string();
            let id = request.opt_str_arg("id").ok().flatten().unwrap_or("").to_string();
            match serve_request(registry, stop, &request) {
                Ok(response) => (response, LineMeta { cmd, pop, id, ok: true }),
                Err(e) => (error_response(&e), LineMeta { cmd, pop, id, ok: false }),
            }
        }
        Err(e) => (
            error_response(&e),
            LineMeta { cmd: "other".to_string(), pop: String::new(), id: String::new(), ok: false },
        ),
    }
}

/// Serves one request line — the full command dispatch. Pure with respect
/// to the socket, so tests can drive the protocol without a listener.
pub fn handle_line(registry: &Registry, stop: &AtomicBool, line: &str) -> String {
    serve_line(registry, stop, line).0
}

fn push_status(obj: &mut JsonObject, status: &Status) {
    obj.field_str("protocol", status.protocol)
        .field_str("backend", status.backend)
        .field_u64("n", status.n0 as u64)
        .field_u64("live", status.live as u64)
        .field_u64("interactions", status.interactions)
        .field_f64("parallel_time", status.parallel_time)
        .field_bool("ranked", status.ranked)
        .field_u64("leaders", u64::from(status.leaders))
        .field_u64("joins", status.joins)
        .field_u64("leaves", status.leaves)
        .field_u64("replacements", status.replacements)
        .field_u64("corruptions", status.corruptions)
        .field_u64("byz_strikes", status.byz_strikes)
        .field_u64("open_faults", status.open_faults as u64)
        .field_f64("availability", status.availability)
        .field_u64("seed", status.seed);
}

/// Mutation bookkeeping shared by every journaled command's response.
fn push_outcome(obj: &mut JsonObject, out: &ApplyOutcome) {
    obj.field_u64("seq", out.seq).field_bool("replayed", out.replayed);
}

fn checkpoint_json(c: &Checkpoint) -> String {
    let mut obj = JsonObject::new();
    obj.field_u64("interactions", c.interactions)
        .field_f64("parallel_time", c.parallel_time)
        .field_u64("live", c.live as u64)
        .field_u64("leaders", u64::from(c.leaders))
        .field_bool("ranked", c.ranked);
    obj.finish()
}

fn serve_request(
    registry: &Registry,
    stop: &AtomicBool,
    request: &Request,
) -> Result<String, String> {
    match request.cmd.as_str() {
        "ping" => {
            let mut obj = ok_response();
            obj.field_bool("pong", true);
            Ok(obj.finish())
        }
        "create" => {
            let name = request.str_arg("name")?;
            let protocol = request.str_arg("protocol")?;
            let backend = request.str_arg("backend")?;
            let n = request.required_u64("n")?;
            let seed = request.u64_arg("seed")?.unwrap_or(1);
            let id = request.opt_str_arg("id")?;
            let out = registry.create(name, protocol, backend, n, seed, id)?;
            let mut obj = ok_response();
            obj.field_str("name", name);
            push_outcome(&mut obj, &out);
            push_status(&mut obj, &out.status);
            Ok(obj.finish())
        }
        "step" => {
            let name = request.str_arg("name")?;
            let id = request.opt_str_arg("id")?;
            // Default: one parallel-time unit of the live population.
            let interactions = match request.u64_arg("interactions")? {
                Some(k) => k,
                None => registry.with_cell(name, |cell| cell.pop.status().live as u64)?,
            };
            const MAX_STEP: u64 = 1 << 32;
            if interactions > MAX_STEP {
                return Err(format!("step of {interactions} exceeds the cap of {MAX_STEP}"));
            }
            let out = registry.apply(name, Op::Step(interactions), id)?;
            let (performed, slices) = match out.applied {
                Some(Applied::Step(report)) => (report.performed, report.slices),
                _ => (0, 0), // deduplicated retry: nothing re-applied
            };
            let mut obj = ok_response();
            obj.field_u64("performed", performed).field_u64("slices", slices);
            push_outcome(&mut obj, &out);
            push_status(&mut obj, &out.status);
            Ok(obj.finish())
        }
        "join" | "leave" | "corrupt" => {
            let name = request.str_arg("name")?;
            let id = request.opt_str_arg("id")?;
            let k = request.u64_arg("k")?.unwrap_or(1);
            if k > crate::pop::MAX_N {
                return Err(format!("k = {k} exceeds the service cap"));
            }
            let op = match request.cmd.as_str() {
                "join" => Op::Join(k),
                "leave" => Op::Leave(k),
                _ => Op::Corrupt(k),
            };
            let out = registry.apply(name, op, id)?;
            let applied = match out.applied {
                Some(Applied::Event(touched)) => touched as u64,
                _ => 0, // deduplicated retry
            };
            let mut obj = ok_response();
            obj.field_u64("applied", applied);
            push_outcome(&mut obj, &out);
            push_status(&mut obj, &out.status);
            Ok(obj.finish())
        }
        "churn-plan" => {
            let name = request.str_arg("name")?;
            let spec = request.str_arg("spec")?;
            let seed = request.u64_arg("seed")?.unwrap_or(0);
            let id = request.opt_str_arg("id")?;
            let out = registry.apply(name, Op::Churn(spec.to_string(), seed), id)?;
            let mut obj = ok_response();
            push_outcome(&mut obj, &out);
            push_status(&mut obj, &out.status);
            Ok(obj.finish())
        }
        "leader" => {
            let name = request.str_arg("name")?;
            let report = registry.with_cell(name, |cell| cell.pop.leader())?;
            let mut obj = ok_response();
            obj.field_u64("leaders", u64::from(report.leaders)).field_bool("ranked", report.ranked);
            match report.index {
                Some(idx) => obj.field_u64("leader_index", idx as u64),
                None => obj.field_null("leader_index"),
            };
            Ok(obj.finish())
        }
        "ranks" => {
            let name = request.str_arg("name")?;
            let report = registry.with_cell(name, |cell| cell.pop.ranks())?;
            let mut obj = ok_response();
            obj.field_bool("ranked", report.ranked)
                .field_u64("singleton_ranks", report.singleton_ranks as u64)
                .field_u64("duplicated_ranks", report.duplicated_ranks as u64)
                .field_u64("missing_ranks", report.missing_ranks as u64);
            Ok(obj.finish())
        }
        "status" => {
            let name = request.str_arg("name")?;
            // The cell's seed is authoritative: a freshly restored
            // population re-stamps it from the journal header, and stamping
            // it here too keeps even older in-memory snapshots honest.
            let (mut status, seed, seq, base_seq) = registry.with_cell(name, |cell| {
                (cell.pop.status(), cell.seed, cell.seq, cell.snapshot_seq)
            })?;
            status.seed = seed;
            let mut obj = ok_response();
            obj.field_str("name", name);
            push_status(&mut obj, &status);
            obj.field_u64("seq", seq).field_u64("base_seq", base_seq);
            Ok(obj.finish())
        }
        "timeline" => {
            let name = request.str_arg("name")?;
            let last = request.u64_arg("last")?.unwrap_or(16).min(4096) as usize;
            let points = registry.with_cell(name, |cell| cell.pop.timeline(last))?;
            let rows: Vec<String> = points.iter().map(checkpoint_json).collect();
            let mut obj = ok_response();
            obj.field_u64("points", rows.len() as u64)
                .field_raw("timeline", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "metrics" => {
            let name = request.str_arg("name")?;
            let record =
                registry.with_cell(name, |cell| cell.pop.metrics_record_json("service"))?;
            let mut obj = ok_response();
            obj.field_raw("metrics", &record);
            Ok(obj.finish())
        }
        "snapshot" => {
            let name = request.str_arg("name")?;
            let path = registry.snapshot(name)?;
            let mut obj = ok_response();
            obj.field_str("path", &path.display().to_string());
            Ok(obj.finish())
        }
        "health" => {
            let rows: Vec<String> = registry
                .health()
                .iter()
                .map(|row| {
                    let mut o = JsonObject::new();
                    o.field_str("pop", &row.name)
                        .field_str("protocol", row.status.protocol)
                        .field_str("backend", row.status.backend)
                        .field_u64("n", row.status.n0 as u64)
                        .field_u64("live", row.status.live as u64)
                        .field_u64("interactions", row.status.interactions)
                        .field_bool("ranked", row.status.ranked)
                        .field_u64("seq", row.seq)
                        .field_u64("snapshot_seq", row.snapshot_seq)
                        .field_u64("lag", row.seq.saturating_sub(row.snapshot_seq));
                    match row.fsync {
                        Some(policy) => o.field_str("fsync", &policy.spec()),
                        None => o.field_null("fsync"),
                    };
                    o.finish()
                })
                .collect();
            let mut obj = ok_response();
            obj.field_u64("count", rows.len() as u64)
                .field_u64("quarantines", registry.quarantines())
                .field_bool("durable", registry.durable())
                .field_raw("populations", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "list" => {
            let names = registry.list();
            let rows: Vec<String> = names.iter().map(|n| format!("\"{}\"", n)).collect();
            let mut obj = ok_response();
            obj.field_u64("count", names.len() as u64)
                .field_raw("populations", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "delete" => {
            let name = request.str_arg("name")?;
            if !registry.delete(name) {
                return Err(format!("no population {name:?}"));
            }
            let mut obj = ok_response();
            obj.field_bool("deleted", true);
            Ok(obj.finish())
        }
        "stats" => {
            let stats = registry
                .obs()
                .ok_or_else(|| "stats: no request tracer attached to this registry".to_string())?;
            let reset = request.bool_arg("reset")?.unwrap_or(false);
            let snap = stats.snapshot();
            if reset {
                // Read-and-reset: the snapshot above covers the window that
                // just ended; counters and the rps window restart now (the
                // flight recorder is deliberately left intact).
                stats.reset();
            }
            let journal_lag = registry
                .health()
                .iter()
                .map(|row| row.seq.saturating_sub(row.snapshot_seq))
                .max()
                .unwrap_or(0);
            let window = snap.window_s.max(1e-9);
            let rows: Vec<String> = snap
                .commands
                .iter()
                .map(|c| {
                    let per = |total: u64| total as f64 / c.count.max(1) as f64;
                    ServerStatsRecord {
                        experiment: "serve".to_string(),
                        cmd: c.cmd.to_string(),
                        count: c.count,
                        errors: c.errors,
                        rps: c.count as f64 / window,
                        p50_us: c.p50_us,
                        p95_us: c.p95_us,
                        p99_us: c.p99_us,
                        mean_us: per(c.total_us),
                        queue_us: per(c.spans_us[obs::Span::Queue as usize]),
                        parse_us: per(c.spans_us[obs::Span::Parse as usize]),
                        registry_lock_us: per(c.spans_us[obs::Span::RegistryLock as usize]),
                        pop_lock_us: per(c.spans_us[obs::Span::PopLock as usize]),
                        engine_us: per(c.spans_us[obs::Span::Engine as usize]),
                        journal_us: per(c.spans_us[obs::Span::Journal as usize]),
                        fsync_us: per(c.spans_us[obs::Span::Fsync as usize]),
                        write_us: per(c.spans_us[obs::Span::Write as usize]),
                        hist: c.hist.clone().unwrap_or_default(),
                        window_s: snap.window_s,
                        busy: snap.busy,
                        queue_depth: snap.queue_depth,
                        slow: snap.slow,
                        journal_lag,
                    }
                    .to_json()
                })
                .collect();
            let mut obj = ok_response();
            obj.field_bool("tracing", obs::COMPILED)
                .field_u64("requests", snap.requests)
                .field_f64("rps", snap.requests as f64 / window)
                .field_f64("window_s", snap.window_s)
                .field_u64("busy", snap.busy)
                .field_u64("slow", snap.slow)
                .field_u64("queue_depth", snap.queue_depth)
                .field_u64("dumps", snap.dumps)
                .field_u64("journal_lag", journal_lag)
                .field_bool("reset", reset)
                .field_raw("commands", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "dump-trace" => {
            let stats = registry.obs().ok_or_else(|| {
                "dump-trace: no request tracer attached to this registry".to_string()
            })?;
            let last =
                request.u64_arg("last")?.unwrap_or(32).min(obs::FLIGHT_CAPACITY as u64) as usize;
            let traces = stats.recent(last);
            let path = stats.dump("demand");
            let rows: Vec<String> = traces.iter().map(|t| t.to_record().to_json()).collect();
            let mut obj = ok_response();
            obj.field_u64("count", rows.len() as u64);
            match path {
                Some(p) => obj.field_str("path", &p.display().to_string()),
                None => obj.field_null("path"),
            };
            obj.field_raw("traces", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            let mut obj = ok_response();
            obj.field_bool("stopping", true);
            Ok(obj.finish())
        }
        other => Err(format!("unknown cmd {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (Registry, AtomicBool) {
        (Registry::new(None), AtomicBool::new(false))
    }

    #[test]
    fn dispatch_covers_the_population_lifecycle() {
        let (registry, stop) = fresh();
        let create = handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"a","protocol":"ciw","backend":"agents","n":16,"seed":7}"#,
        );
        assert!(create.contains("\"ok\":true"), "{create}");
        assert!(create.contains("\"live\":16"), "{create}");

        let step = handle_line(&registry, &stop, r#"{"cmd":"step","name":"a","interactions":500}"#);
        assert!(step.contains("\"performed\":500"), "{step}");

        let corrupt = handle_line(&registry, &stop, r#"{"cmd":"corrupt","name":"a","k":4}"#);
        assert!(corrupt.contains("\"applied\":4"), "{corrupt}");

        let leader = handle_line(&registry, &stop, r#"{"cmd":"leader","name":"a"}"#);
        assert!(leader.contains("\"leaders\":"), "{leader}");

        let timeline = handle_line(&registry, &stop, r#"{"cmd":"timeline","name":"a","last":4}"#);
        assert!(timeline.contains("\"timeline\":["), "{timeline}");

        let metrics = handle_line(&registry, &stop, r#"{"cmd":"metrics","name":"a"}"#);
        assert!(metrics.contains("\"kind\":\"metrics\""), "{metrics}");

        let health = handle_line(&registry, &stop, r#"{"cmd":"health"}"#);
        assert!(health.contains("\"quarantines\":0"), "{health}");
        assert!(health.contains("\"pop\":\"a\""), "{health}");
        assert!(health.contains("\"fsync\":null"), "{health}");

        let list = handle_line(&registry, &stop, r#"{"cmd":"list"}"#);
        assert!(list.contains("\"populations\":[\"a\"]"), "{list}");

        let delete = handle_line(&registry, &stop, r#"{"cmd":"delete","name":"a"}"#);
        assert!(delete.contains("\"deleted\":true"), "{delete}");
        assert!(handle_line(&registry, &stop, r#"{"cmd":"status","name":"a"}"#)
            .contains("\"ok\":false"));
    }

    #[test]
    fn errors_are_enveloped_not_panics() {
        let (registry, stop) = fresh();
        assert!(handle_line(&registry, &stop, "garbage").contains("\"ok\":false"));
        assert!(handle_line(&registry, &stop, r#"{"cmd":"step","name":"nope"}"#)
            .contains("no population"));
        assert!(handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"x","protocol":"sublinear","backend":"agents","n":8}"#
        )
        .contains("unknown protocol"));
    }

    #[test]
    fn shutdown_sets_the_stop_flag() {
        let (registry, stop) = fresh();
        let resp = handle_line(&registry, &stop, r#"{"cmd":"shutdown"}"#);
        assert!(resp.contains("\"stopping\":true"));
        assert!(stop.load(Ordering::SeqCst));
    }

    #[test]
    fn churn_plan_rebinds() {
        let (registry, stop) = fresh();
        handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"c","protocol":"oss","backend":"counts","n":12}"#,
        );
        let resp = handle_line(
            &registry,
            &stop,
            r#"{"cmd":"churn-plan","name":"c","spec":"0.05","seed":3}"#,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let bad =
            handle_line(&registry, &stop, r#"{"cmd":"churn-plan","name":"c","spec":"not-a-plan"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
    }

    #[test]
    fn request_ids_replay_instead_of_reapplying() {
        let (registry, stop) = fresh();
        handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"r","protocol":"ciw","backend":"counts","n":16}"#,
        );
        let first = handle_line(
            &registry,
            &stop,
            r#"{"cmd":"step","name":"r","interactions":300,"id":"s.1"}"#,
        );
        assert!(first.contains("\"replayed\":false"), "{first}");
        assert!(first.contains("\"performed\":300"), "{first}");
        let retry = handle_line(
            &registry,
            &stop,
            r#"{"cmd":"step","name":"r","interactions":300,"id":"s.1"}"#,
        );
        assert!(retry.contains("\"replayed\":true"), "{retry}");
        assert!(retry.contains("\"performed\":0"), "{retry}");
        assert!(retry.contains("\"interactions\":300"), "{retry}");
        let bad = handle_line(&registry, &stop, r#"{"cmd":"step","name":"r","id":"bad id"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
    }

    #[test]
    fn status_reports_seed_seq_and_base_seq() {
        let (registry, stop) = fresh();
        handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"s","protocol":"ciw","backend":"counts","n":8,"seed":42}"#,
        );
        handle_line(&registry, &stop, r#"{"cmd":"step","name":"s","interactions":100}"#);
        let status = handle_line(&registry, &stop, r#"{"cmd":"status","name":"s"}"#);
        assert!(status.contains("\"seed\":42"), "{status}");
        // Create occupies seq 0; the step is the first journaled mutation.
        assert!(status.contains("\"seq\":1"), "{status}");
        assert!(status.contains("\"base_seq\":0"), "{status}");
    }

    #[test]
    fn stats_serves_counters_from_the_attached_tracer() {
        let (registry, stop) = fresh();
        assert!(
            handle_line(&registry, &stop, r#"{"cmd":"stats"}"#).contains("no request tracer"),
            "stats without a tracer must refuse"
        );
        let stats = Arc::new(ServerStats::new(0, None));
        registry.set_obs(Arc::clone(&stats));
        stats.record(obs::Trace {
            cmd: "ping".to_string(),
            pop: String::new(),
            id: String::new(),
            ok: true,
            total_us: 42,
            spans_us: [0; obs::SPAN_COUNT],
        });
        let resp = handle_line(&registry, &stop, r#"{"cmd":"stats","reset":true}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"requests\":1"), "{resp}");
        assert!(resp.contains("\"kind\":\"server_stats\""), "{resp}");
        assert!(resp.contains("\"cmd\":\"ping\""), "{resp}");
        // Read-and-reset: the next window starts empty.
        let after = handle_line(&registry, &stop, r#"{"cmd":"stats"}"#);
        assert!(after.contains("\"requests\":0"), "{after}");
        // The flight recorder survives the reset.
        let dump = handle_line(&registry, &stop, r#"{"cmd":"dump-trace","last":8}"#);
        assert!(dump.contains("\"count\":1"), "{dump}");
        assert!(dump.contains("\"kind\":\"trace\""), "{dump}");
    }

    #[test]
    fn sigterm_sets_the_shutdown_latch() {
        // Raising SIGTERM at ourselves must hit the installed latch, not
        // kill the test process. The latch is process-global and sticky;
        // no lib test runs an accept loop, so setting it here is safe.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        install_sigint_handler();
        assert!(!sigint_received());
        unsafe {
            raise(15);
        }
        assert!(sigint_received());
    }
}
