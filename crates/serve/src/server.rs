//! The daemon: a nonblocking accept loop feeding the bounded thread pool.
//!
//! Each accepted connection becomes one pool job that serves requests
//! line-by-line until the peer closes (or idles past the read timeout).
//! When the pool's queue is full the accept loop answers
//! `{"ok":false,"error":"busy"}` immediately and closes — backpressure,
//! never a hang.
//!
//! Shutdown is graceful from either trigger — a `shutdown` request or
//! SIGINT: the accept loop drains, workers finish their connections, and
//! every population is snapshotted to the configured directory before the
//! daemon returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use population::dynamics::ChurnPlan;
use population::record::JsonObject;

use crate::pool::{PoolError, ThreadPool};
use crate::pop::{Checkpoint, EventKind, Status};
use crate::registry::Registry;
use crate::wire::{error_response, ok_response, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Pending-connection queue capacity before `busy` responses.
    pub queue: usize,
    /// Where snapshots live; `None` disables the snapshot lifecycle.
    pub snapshot_dir: Option<PathBuf>,
    /// Per-connection idle read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            threads: 4,
            queue: 64,
            snapshot_dir: None,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// What a daemon run did, for the caller's report.
#[derive(Debug)]
pub struct ServeSummary {
    /// Populations restored at boot: `(name, outcome)`.
    pub restored: Vec<(String, Result<(), String>)>,
    /// Populations snapshotted at shutdown: `(name, outcome)`.
    pub snapshots: Vec<(String, Result<PathBuf, String>)>,
    /// Handler panics survived (workers respawned).
    pub panics: u64,
}

/// SIGINT latch — set by the raw signal handler, polled by the accept
/// loop. Process-global because signal handlers are.
static SIGINT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT → graceful-shutdown latch via the raw C `signal`
/// binding (the environment has no signal-handling crate). Idempotent.
pub fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT_NUM: i32 = 2;
    unsafe {
        signal(SIGINT_NUM, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// Whether SIGINT has been received since process start.
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    pool: ThreadPool,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
    restored: Vec<(String, Result<(), String>)>,
}

impl Server {
    /// Binds the listener, restores any snapshots in the configured
    /// directory, and prepares the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let registry = Arc::new(Registry::new(config.snapshot_dir.clone()));
        let restored = registry.restore_all();
        Ok(Server {
            listener,
            registry,
            pool: ThreadPool::new(config.threads.max(1), config.queue.max(1)),
            stop: Arc::new(AtomicBool::new(false)),
            read_timeout: config.read_timeout,
            restored,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    ///
    /// # Errors
    ///
    /// Returns the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return (same effect as the
    /// `shutdown` request).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The shared registry (for in-process embedding, e.g. benches).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Runs the accept loop until `shutdown`/SIGINT/stop-handle, then
    /// drains the pool and snapshots every population.
    pub fn run(self) -> ServeSummary {
        loop {
            if self.stop.load(Ordering::SeqCst) || sigint_received() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        self.pool.shutdown();
        let snapshots = self.registry.snapshot_all();
        ServeSummary { restored: self.restored, snapshots, panics: self.pool.panics() }
    }

    fn dispatch(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        // The pool consumes the closure (and the stream inside it) even on
        // refusal, so clone a handle for the busy response first.
        let refusal = stream.try_clone().ok();
        let registry = Arc::clone(&self.registry);
        let stop = Arc::clone(&self.stop);
        match self.pool.try_execute(move || handle_connection(stream, &registry, &stop)) {
            Ok(()) => {}
            Err(PoolError::Busy | PoolError::ShuttingDown) => {
                // Backpressure: answer immediately rather than queueing
                // unboundedly or hanging the accept loop.
                if let Some(mut s) = refusal {
                    let _ = s.write_all(error_response("busy").as_bytes());
                    let _ = s.write_all(b"\n");
                    let _ = s.flush();
                }
            }
        }
    }
}

fn handle_connection(stream: TcpStream, registry: &Arc<Registry>, stop: &Arc<AtomicBool>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(_) => return, // timeout or reset
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_line(registry, stop, trimmed);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serves one request line — the full command dispatch. Pure with respect
/// to the socket, so tests can drive the protocol without a listener.
pub fn handle_line(registry: &Registry, stop: &AtomicBool, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    match serve_request(registry, stop, &request) {
        Ok(response) => response,
        Err(e) => error_response(&e),
    }
}

fn push_status(obj: &mut JsonObject, status: &Status) {
    obj.field_str("protocol", status.protocol)
        .field_str("backend", status.backend)
        .field_u64("n", status.n0 as u64)
        .field_u64("live", status.live as u64)
        .field_u64("interactions", status.interactions)
        .field_f64("parallel_time", status.parallel_time)
        .field_bool("ranked", status.ranked)
        .field_u64("leaders", u64::from(status.leaders))
        .field_u64("joins", status.joins)
        .field_u64("leaves", status.leaves)
        .field_u64("replacements", status.replacements)
        .field_u64("corruptions", status.corruptions)
        .field_u64("byz_strikes", status.byz_strikes)
        .field_u64("open_faults", status.open_faults as u64)
        .field_f64("availability", status.availability)
        .field_u64("seed", status.seed);
}

fn checkpoint_json(c: &Checkpoint) -> String {
    let mut obj = JsonObject::new();
    obj.field_u64("interactions", c.interactions)
        .field_f64("parallel_time", c.parallel_time)
        .field_u64("live", c.live as u64)
        .field_u64("leaders", u64::from(c.leaders))
        .field_bool("ranked", c.ranked);
    obj.finish()
}

fn serve_request(
    registry: &Registry,
    stop: &AtomicBool,
    request: &Request,
) -> Result<String, String> {
    let with_pop = |name: &str| registry.get(name).ok_or_else(|| format!("no population {name:?}"));
    match request.cmd.as_str() {
        "ping" => {
            let mut obj = ok_response();
            obj.field_bool("pong", true);
            Ok(obj.finish())
        }
        "create" => {
            let name = request.str_arg("name")?;
            let protocol = request.str_arg("protocol")?;
            let backend = request.str_arg("backend")?;
            let n = request.required_u64("n")?;
            let seed = request.u64_arg("seed")?.unwrap_or(1);
            let slot = registry.create(name, protocol, backend, n, seed)?;
            let status = slot.lock().unwrap().status();
            let mut obj = ok_response();
            obj.field_str("name", name);
            push_status(&mut obj, &status);
            Ok(obj.finish())
        }
        "step" => {
            let name = request.str_arg("name")?;
            let slot = with_pop(name)?;
            let mut pop = slot.lock().unwrap();
            // Default: one parallel-time unit of the live population.
            let interactions = match request.u64_arg("interactions")? {
                Some(k) => k,
                None => pop.status().live as u64,
            };
            const MAX_STEP: u64 = 1 << 32;
            if interactions > MAX_STEP {
                return Err(format!("step of {interactions} exceeds the cap of {MAX_STEP}"));
            }
            let report = pop.step(interactions);
            let status = pop.status();
            let mut obj = ok_response();
            obj.field_u64("performed", report.performed).field_u64("slices", report.slices);
            push_status(&mut obj, &status);
            Ok(obj.finish())
        }
        "join" | "leave" | "corrupt" => {
            let name = request.str_arg("name")?;
            let k = request.u64_arg("k")?.unwrap_or(1);
            if k > crate::pop::MAX_N {
                return Err(format!("k = {k} exceeds the service cap"));
            }
            let kind = match request.cmd.as_str() {
                "join" => EventKind::Join,
                "leave" => EventKind::Leave,
                _ => EventKind::Corrupt,
            };
            let slot = with_pop(name)?;
            let mut pop = slot.lock().unwrap();
            let applied = pop.inject(kind, k as usize);
            let status = pop.status();
            let mut obj = ok_response();
            obj.field_u64("applied", applied as u64);
            push_status(&mut obj, &status);
            Ok(obj.finish())
        }
        "churn-plan" => {
            let name = request.str_arg("name")?;
            let spec = request.str_arg("spec")?;
            let seed = request.u64_arg("seed")?.unwrap_or(0);
            let plan = ChurnPlan::parse(spec, seed)?;
            let slot = with_pop(name)?;
            let mut pop = slot.lock().unwrap();
            pop.set_churn(&plan);
            let status = pop.status();
            let mut obj = ok_response();
            push_status(&mut obj, &status);
            Ok(obj.finish())
        }
        "leader" => {
            let name = request.str_arg("name")?;
            let slot = with_pop(name)?;
            let report = slot.lock().unwrap().leader();
            let mut obj = ok_response();
            obj.field_u64("leaders", u64::from(report.leaders)).field_bool("ranked", report.ranked);
            match report.index {
                Some(idx) => obj.field_u64("leader_index", idx as u64),
                None => obj.field_null("leader_index"),
            };
            Ok(obj.finish())
        }
        "ranks" => {
            let name = request.str_arg("name")?;
            let slot = with_pop(name)?;
            let report = slot.lock().unwrap().ranks();
            let mut obj = ok_response();
            obj.field_bool("ranked", report.ranked)
                .field_u64("singleton_ranks", report.singleton_ranks as u64)
                .field_u64("duplicated_ranks", report.duplicated_ranks as u64)
                .field_u64("missing_ranks", report.missing_ranks as u64);
            Ok(obj.finish())
        }
        "status" => {
            let name = request.str_arg("name")?;
            let slot = with_pop(name)?;
            let status = slot.lock().unwrap().status();
            let mut obj = ok_response();
            obj.field_str("name", name);
            push_status(&mut obj, &status);
            Ok(obj.finish())
        }
        "timeline" => {
            let name = request.str_arg("name")?;
            let last = request.u64_arg("last")?.unwrap_or(16).min(4096) as usize;
            let slot = with_pop(name)?;
            let points = slot.lock().unwrap().timeline(last);
            let rows: Vec<String> = points.iter().map(checkpoint_json).collect();
            let mut obj = ok_response();
            obj.field_u64("points", rows.len() as u64)
                .field_raw("timeline", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "metrics" => {
            let name = request.str_arg("name")?;
            let slot = with_pop(name)?;
            let record = slot.lock().unwrap().metrics_record_json("service");
            let mut obj = ok_response();
            obj.field_raw("metrics", &record);
            Ok(obj.finish())
        }
        "snapshot" => {
            let name = request.str_arg("name")?;
            let path = registry.snapshot(name)?;
            let mut obj = ok_response();
            obj.field_str("path", &path.display().to_string());
            Ok(obj.finish())
        }
        "list" => {
            let names = registry.list();
            let rows: Vec<String> = names.iter().map(|n| format!("\"{}\"", n)).collect();
            let mut obj = ok_response();
            obj.field_u64("count", names.len() as u64)
                .field_raw("populations", &format!("[{}]", rows.join(",")));
            Ok(obj.finish())
        }
        "delete" => {
            let name = request.str_arg("name")?;
            if !registry.delete(name) {
                return Err(format!("no population {name:?}"));
            }
            let mut obj = ok_response();
            obj.field_bool("deleted", true);
            Ok(obj.finish())
        }
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            let mut obj = ok_response();
            obj.field_bool("stopping", true);
            Ok(obj.finish())
        }
        other => Err(format!("unknown cmd {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (Registry, AtomicBool) {
        (Registry::new(None), AtomicBool::new(false))
    }

    #[test]
    fn dispatch_covers_the_population_lifecycle() {
        let (registry, stop) = fresh();
        let create = handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"a","protocol":"ciw","backend":"agents","n":16,"seed":7}"#,
        );
        assert!(create.contains("\"ok\":true"), "{create}");
        assert!(create.contains("\"live\":16"), "{create}");

        let step = handle_line(&registry, &stop, r#"{"cmd":"step","name":"a","interactions":500}"#);
        assert!(step.contains("\"performed\":500"), "{step}");

        let corrupt = handle_line(&registry, &stop, r#"{"cmd":"corrupt","name":"a","k":4}"#);
        assert!(corrupt.contains("\"applied\":4"), "{corrupt}");

        let leader = handle_line(&registry, &stop, r#"{"cmd":"leader","name":"a"}"#);
        assert!(leader.contains("\"leaders\":"), "{leader}");

        let timeline = handle_line(&registry, &stop, r#"{"cmd":"timeline","name":"a","last":4}"#);
        assert!(timeline.contains("\"timeline\":["), "{timeline}");

        let metrics = handle_line(&registry, &stop, r#"{"cmd":"metrics","name":"a"}"#);
        assert!(metrics.contains("\"kind\":\"metrics\""), "{metrics}");

        let list = handle_line(&registry, &stop, r#"{"cmd":"list"}"#);
        assert!(list.contains("\"populations\":[\"a\"]"), "{list}");

        let delete = handle_line(&registry, &stop, r#"{"cmd":"delete","name":"a"}"#);
        assert!(delete.contains("\"deleted\":true"), "{delete}");
        assert!(handle_line(&registry, &stop, r#"{"cmd":"status","name":"a"}"#)
            .contains("\"ok\":false"));
    }

    #[test]
    fn errors_are_enveloped_not_panics() {
        let (registry, stop) = fresh();
        assert!(handle_line(&registry, &stop, "garbage").contains("\"ok\":false"));
        assert!(handle_line(&registry, &stop, r#"{"cmd":"step","name":"nope"}"#)
            .contains("no population"));
        assert!(handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"x","protocol":"sublinear","backend":"agents","n":8}"#
        )
        .contains("unknown protocol"));
    }

    #[test]
    fn shutdown_sets_the_stop_flag() {
        let (registry, stop) = fresh();
        let resp = handle_line(&registry, &stop, r#"{"cmd":"shutdown"}"#);
        assert!(resp.contains("\"stopping\":true"));
        assert!(stop.load(Ordering::SeqCst));
    }

    #[test]
    fn churn_plan_rebinds() {
        let (registry, stop) = fresh();
        handle_line(
            &registry,
            &stop,
            r#"{"cmd":"create","name":"c","protocol":"oss","backend":"counts","n":12}"#,
        );
        let resp = handle_line(
            &registry,
            &stop,
            r#"{"cmd":"churn-plan","name":"c","spec":"0.05","seed":3}"#,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let bad =
            handle_line(&registry, &stop, r#"{"cmd":"churn-plan","name":"c","spec":"not-a-plan"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
    }
}
