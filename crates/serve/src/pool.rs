//! A hand-rolled bounded thread pool for connection handling.
//!
//! The build environment is offline, so there is no tokio/rayon to lean
//! on: this is a classic `Mutex<VecDeque>` + `Condvar` work queue with two
//! graceful-degradation properties the daemon needs:
//!
//! * **Backpressure, not hangs.** [`ThreadPool::try_execute`] refuses a job
//!   when the queue is at capacity ([`PoolError::Busy`]) instead of
//!   blocking the accept loop — the server turns that into an immediate
//!   `busy` response, the wire-protocol analog of HTTP 503.
//! * **Panic isolation.** A job that panics takes down only its worker
//!   thread; a drop guard notices the unwind, bumps the panic counter, and
//!   respawns a replacement so the pool never shrinks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`ThreadPool::try_execute`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pending-job queue is at capacity.
    Busy,
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Busy => write!(f, "job queue full"),
            PoolError::ShuttingDown => write!(f, "pool shutting down"),
        }
    }
}

struct PoolState {
    jobs: VecDeque<Job>,
    stop: bool,
    handles: Vec<JoinHandle<()>>,
}

/// Called on the panicking worker thread after a job unwinds, before the
/// replacement worker spawns — the daemon hooks this to dump the
/// observability flight recorder while the evidence is fresh.
pub type PanicHook = Arc<dyn Fn() + Send + Sync>;

struct PoolInner {
    state: Mutex<PoolState>,
    jobs_ready: Condvar,
    capacity: usize,
    panics: AtomicU64,
    panic_hook: Option<PanicHook>,
}

/// Locks the pool state, recovering from poison: every critical section
/// here is a queue push/pop or a flag flip that either completes or never
/// starts, so a poisoned lock carries consistent state and refusing to
/// serve (the old `unwrap` panic cascade) would wedge the whole daemon
/// over one unwound worker.
fn lock_state(inner: &PoolInner) -> MutexGuard<'_, PoolState> {
    inner.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The bounded worker pool.
#[derive(Clone)]
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Spawns `workers` threads sharing a queue of at most `capacity`
    /// pending jobs.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `capacity` is zero.
    pub fn new(workers: usize, capacity: usize) -> Self {
        ThreadPool::with_panic_hook(workers, capacity, None)
    }

    /// Like [`ThreadPool::new`], with a hook run on the worker thread
    /// whenever a job panics (before the replacement worker spawns). The
    /// hook must not panic; if it does, the unwind is contained.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `capacity` is zero.
    pub fn with_panic_hook(workers: usize, capacity: usize, panic_hook: Option<PanicHook>) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        assert!(capacity > 0, "a pool needs room for at least one pending job");
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                stop: false,
                handles: Vec::with_capacity(workers),
            }),
            jobs_ready: Condvar::new(),
            capacity,
            panics: AtomicU64::new(0),
            panic_hook,
        });
        {
            let mut state = lock_state(&inner);
            for _ in 0..workers {
                let handle = spawn_worker(&inner);
                state.handles.push(handle);
            }
        }
        ThreadPool { inner }
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PoolError::Busy`] when the queue is at capacity,
    /// [`PoolError::ShuttingDown`] after [`ThreadPool::shutdown`].
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = lock_state(&self.inner);
        if state.stop {
            return Err(PoolError::ShuttingDown);
        }
        if state.jobs.len() >= self.inner.capacity {
            return Err(PoolError::Busy);
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.inner.jobs_ready.notify_one();
        Ok(())
    }

    /// How many handler jobs have panicked (and had their worker respawned)
    /// so far.
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::SeqCst)
    }

    /// Jobs waiting in the queue right now.
    pub fn queued(&self) -> usize {
        lock_state(&self.inner).jobs.len()
    }

    /// Drains the queue, stops the workers, and joins them. Jobs already
    /// queued still run; new submissions are refused.
    pub fn shutdown(&self) {
        {
            let mut state = lock_state(&self.inner);
            state.stop = true;
        }
        self.inner.jobs_ready.notify_all();
        // Respawned workers may append handles while we join, so drain
        // repeatedly until the list stays empty.
        loop {
            let handle = {
                let mut state = lock_state(&self.inner);
                state.handles.pop()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Respawns this thread's replacement when a job panic unwinds the worker
/// loop. On a normal (shutdown) exit `thread::panicking()` is false and the
/// guard does nothing.
struct RespawnGuard {
    inner: Arc<PoolInner>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !thread::panicking() {
            return;
        }
        self.inner.panics.fetch_add(1, Ordering::SeqCst);
        if let Some(hook) = &self.inner.panic_hook {
            // A panicking hook inside this unwinding drop would abort the
            // process; contain it.
            let hook = Arc::clone(hook);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || hook()));
        }
        let mut state = lock_state(&self.inner);
        if !state.stop {
            let handle = spawn_worker(&self.inner);
            state.handles.push(handle);
        }
    }
}

fn spawn_worker(inner: &Arc<PoolInner>) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    thread::spawn(move || {
        let _guard = RespawnGuard { inner: Arc::clone(&inner) };
        loop {
            let job = {
                let mut state = lock_state(&inner);
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.stop {
                        return;
                    }
                    state = inner.jobs_ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            };
            job();
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete() {
        let pool = ThreadPool::new(4, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn full_queue_reports_busy_instead_of_hanging() {
        let pool = ThreadPool::new(1, 2);
        // Wedge the single worker, then fill the queue.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.try_execute(|| {}).unwrap();
        pool.try_execute(|| {}).unwrap();
        // Queue (capacity 2) is full and the worker is wedged: the next
        // submission must fail fast, not block.
        assert_eq!(pool.try_execute(|| {}), Err(PoolError::Busy));
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_is_isolated_and_worker_respawned() {
        let pool = ThreadPool::new(1, 8);
        let (panicked_tx, panicked_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _tx = panicked_tx; // dropped on unwind → rx unblocks
            panic!("handler bug");
        })
        .unwrap();
        // The sender is dropped by the unwind, disconnecting the channel.
        assert_eq!(
            panicked_rx.recv_timeout(Duration::from_secs(5)),
            Err(mpsc::RecvTimeoutError::Disconnected)
        );
        // The pool must still run jobs after the panic.
        let (done_tx, done_rx) = mpsc::channel::<u32>();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let done_tx = done_tx.clone();
            match pool.try_execute(move || {
                done_tx.send(7).unwrap();
            }) {
                Ok(()) => break,
                Err(PoolError::Busy) if std::time::Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("pool refused work after a panic: {e}"),
            }
        }
        assert_eq!(done_rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        assert_eq!(pool.panics(), 1);
        pool.shutdown();
    }

    #[test]
    fn panic_hook_fires_on_job_panic() {
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_fired = Arc::clone(&fired);
        let pool = ThreadPool::with_panic_hook(
            1,
            8,
            Some(Arc::new(move || {
                hook_fired.fetch_add(1, Ordering::SeqCst);
            })),
        );
        pool.try_execute(|| panic!("handler bug")).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "panic hook never fired");
        // A clean job must not fire the hook.
        let (done_tx, done_rx) = mpsc::channel::<()>();
        pool.try_execute(move || done_tx.send(()).unwrap()).unwrap();
        done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn poisoned_state_lock_still_serves() {
        let pool = ThreadPool::new(2, 8);
        // Poison the state mutex directly: panic while holding it.
        let inner = Arc::clone(&pool.inner);
        let _ = thread::spawn(move || {
            let _state = inner.state.lock().unwrap();
            panic!("poison the pool state");
        })
        .join();
        assert!(pool.inner.state.is_poisoned());
        // The pool must keep accepting and running jobs regardless.
        let (done_tx, done_rx) = mpsc::channel::<u32>();
        pool.try_execute(move || {
            done_tx.send(11).unwrap();
        })
        .unwrap();
        assert_eq!(done_rx.recv_timeout(Duration::from_secs(5)), Ok(11));
        pool.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let pool = ThreadPool::new(2, 4);
        pool.shutdown();
        assert_eq!(pool.try_execute(|| {}), Err(PoolError::ShuttingDown));
    }
}
