//! Per-population append-only write-ahead journal.
//!
//! Every mutating command the daemon acknowledges is first appended here
//! as one flat-JSON line, so a crash at *any* byte offset loses at most
//! the tail the [`FsyncPolicy`] had not yet forced to disk. Boot-time
//! recovery replays the journal on top of the last snapshot (whose
//! `seq` header says how far it already covers) and reproduces the
//! population state bit-identically — the service-layer analogue of the
//! protocols' own recover-from-anything guarantee.
//!
//! File layout (`<name>.journal.jsonl`):
//!
//! ```text
//! {"v":1,"kind":"wal","name":"a","protocol":"ciw","backend":"agents","n":16,"seed":7,"base_seq":0,"ids":""}
//! {"kind":"wal-entry","seq":1,"op":"step","k":500}
//! {"kind":"wal-entry","seq":2,"op":"corrupt","k":3,"id":"cli-7"}
//! ```
//!
//! The header pins the create parameters (so a journal alone, without any
//! snapshot, is enough to rebuild the population) plus the dedup-window
//! request ids carried across truncation. Entries carry a contiguous
//! sequence number starting at `base_seq + 1`.
//!
//! **Torn-tail tolerance.** A crash mid-append leaves a final line that is
//! a strict prefix of a flat-JSON object — such a prefix can never parse
//! (the object's only top-level `}` is its last byte, and a `}` inside a
//! string value is preceded by an unclosed quote), so the reader detects
//! it reliably and drops it. An unparsable line *before* the last one, or
//! a gap in the sequence numbers, is real corruption and fails the load.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use population::record::{parse_flat_json, JsonObject, JsonScalar};

/// Suffix of every journal file the registry reads and writes.
pub const JOURNAL_SUFFIX: &str = ".journal.jsonl";

/// Version of the journal format (independent of the record schema).
pub const WAL_VERSION: u64 = 1;

/// How many request ids the per-population dedup window retains.
pub const DEDUP_WINDOW: usize = 64;

/// When appended journal entries are forced to disk.
///
/// The policy bounds the **lost-event window**: the number of acknowledged
/// commands a `kill -9` can silently discard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every entry — loss window 0, slowest.
    Always,
    /// Fsync after every `n`-th entry — loss window `n - 1`.
    EveryN(u64),
    /// Never fsync explicitly — loss window unbounded (OS flush only).
    Never,
}

impl FsyncPolicy {
    /// Parses a policy spec: `always`, `every:N` (N ≥ 1), or `never`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown specs or a zero interval.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => {
                let n =
                    spec.strip_prefix("every:").and_then(|n| n.parse::<u64>().ok()).ok_or_else(
                        || format!("unknown fsync policy {spec:?} (always, every:N, never)"),
                    )?;
                if n == 0 {
                    return Err("fsync interval must be at least 1".to_string());
                }
                Ok(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// The canonical spec string (`parse` round-trips it).
    pub fn spec(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every:{n}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }

    /// Worst-case acknowledged commands a crash can lose; `None` means
    /// unbounded ([`FsyncPolicy::Never`]).
    pub fn loss_window(&self) -> Option<u64> {
        match self {
            FsyncPolicy::Always => Some(0),
            FsyncPolicy::EveryN(n) => Some(n - 1),
            FsyncPolicy::Never => None,
        }
    }
}

/// Whether `id` is acceptable as an idempotency request id: 1–128 chars of
/// `[A-Za-z0-9._-]`. The charset keeps ids comma-joinable in the journal
/// header and free of JSON metacharacters.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// One journaled mutating command.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `step` with an explicit interaction budget (the server resolves the
    /// "one parallel-time unit" default *before* journaling, so replay is
    /// deterministic even though the live size drifts).
    Step(u64),
    /// `join` of `k` adversarial agents.
    Join(u64),
    /// `leave` of `k` random agents.
    Leave(u64),
    /// `corrupt` of `k` random agents.
    Corrupt(u64),
    /// `churn-plan` rebind: spec string plus schedule seed.
    Churn(String, u64),
}

impl Op {
    fn tag(&self) -> &'static str {
        match self {
            Op::Step(_) => "step",
            Op::Join(_) => "join",
            Op::Leave(_) => "leave",
            Op::Corrupt(_) => "corrupt",
            Op::Churn(..) => "churn",
        }
    }
}

/// One journal entry: a sequence number, the command, and the request id
/// it was acknowledged under (when the client sent one).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Contiguous per-journal sequence number (`base_seq + 1` onward).
    pub seq: u64,
    /// The journaled command.
    pub op: Op,
    /// Idempotency id, if the request carried one.
    pub id: Option<String>,
}

impl Entry {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("kind", "wal-entry");
        obj.field_u64("seq", self.seq);
        obj.field_str("op", self.op.tag());
        match &self.op {
            Op::Step(k) | Op::Join(k) | Op::Leave(k) | Op::Corrupt(k) => {
                obj.field_u64("k", *k);
            }
            Op::Churn(spec, seed) => {
                obj.field_str("spec", spec);
                obj.field_u64("cseed", *seed);
            }
        }
        if let Some(id) = &self.id {
            obj.field_str("id", id);
        }
        obj.finish()
    }

    fn from_fields(
        fields: &std::collections::BTreeMap<String, JsonScalar>,
    ) -> Result<Self, String> {
        let seq = scalar_u64(fields, "seq")?;
        let op = match scalar_str(fields, "op")? {
            "step" => Op::Step(scalar_u64(fields, "k")?),
            "join" => Op::Join(scalar_u64(fields, "k")?),
            "leave" => Op::Leave(scalar_u64(fields, "k")?),
            "corrupt" => Op::Corrupt(scalar_u64(fields, "k")?),
            "churn" => {
                Op::Churn(scalar_str(fields, "spec")?.to_string(), scalar_u64(fields, "cseed")?)
            }
            other => return Err(format!("unknown journal op {other:?}")),
        };
        let id = match fields.get("id") {
            Some(JsonScalar::Str(s)) => Some(s.clone()),
            None => None,
            Some(other) => return Err(format!("field \"id\": expected string, got {other:?}")),
        };
        Ok(Entry { seq, op, id })
    }
}

/// The journal's first line: create parameters plus truncation carry-over.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Population name (duplicated from the filename as a sanity check).
    pub name: String,
    /// Protocol tag the population was created with.
    pub protocol: String,
    /// Backend name the population was created with.
    pub backend: String,
    /// Population size at creation.
    pub n: u64,
    /// Creation seed.
    pub seed: u64,
    /// Sequence number already covered by the snapshot this journal was
    /// rotated against; entries start at `base_seq + 1`.
    pub base_seq: u64,
    /// Dedup-window request ids carried across the last truncation,
    /// oldest first.
    pub ids: Vec<String>,
    /// The churn-plan binding `(spec, seed)` active at `base_seq`, if
    /// any. Bindings live in the driver, not the population snapshot, so
    /// rotation must carry them or recovery would silently drop an
    /// active schedule. Note a recovered binding restarts the schedule's
    /// random stream — the plan is restored, not its stream position.
    pub churn: Option<(String, u64)>,
}

impl Header {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", WAL_VERSION);
        obj.field_str("kind", "wal");
        obj.field_str("name", &self.name);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_u64("seed", self.seed);
        obj.field_u64("base_seq", self.base_seq);
        obj.field_str("ids", &self.ids.join(","));
        if let Some((spec, seed)) = &self.churn {
            obj.field_str("churn_spec", spec);
            obj.field_u64("churn_seed", *seed);
        }
        obj.finish()
    }

    fn from_fields(
        fields: &std::collections::BTreeMap<String, JsonScalar>,
    ) -> Result<Self, String> {
        let v = scalar_u64(fields, "v")?;
        if v != WAL_VERSION {
            return Err(format!("unsupported journal version {v} (writer supports {WAL_VERSION})"));
        }
        let ids_str = scalar_str(fields, "ids")?;
        let ids = if ids_str.is_empty() {
            Vec::new()
        } else {
            ids_str.split(',').map(str::to_string).collect()
        };
        let churn = match fields.get("churn_spec") {
            Some(JsonScalar::Str(spec)) => Some((spec.clone(), scalar_u64(fields, "churn_seed")?)),
            None => None,
            Some(other) => {
                return Err(format!("field \"churn_spec\": expected string, got {other:?}"))
            }
        };
        Ok(Header {
            name: scalar_str(fields, "name")?.to_string(),
            protocol: scalar_str(fields, "protocol")?.to_string(),
            backend: scalar_str(fields, "backend")?.to_string(),
            n: scalar_u64(fields, "n")?,
            seed: scalar_u64(fields, "seed")?,
            base_seq: scalar_u64(fields, "base_seq")?,
            ids,
            churn,
        })
    }
}

fn scalar_str<'a>(
    fields: &'a std::collections::BTreeMap<String, JsonScalar>,
    key: &str,
) -> Result<&'a str, String> {
    match fields.get(key) {
        Some(JsonScalar::Str(s)) => Ok(s),
        Some(other) => Err(format!("field {key:?}: expected string, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn scalar_u64(
    fields: &std::collections::BTreeMap<String, JsonScalar>,
    key: &str,
) -> Result<u64, String> {
    match fields.get(key) {
        Some(JsonScalar::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
            Ok(*x as u64)
        }
        Some(other) => {
            Err(format!("field {key:?}: expected a non-negative integer, got {other:?}"))
        }
        None => Err(format!("missing field {key:?}")),
    }
}

/// A parsed journal: the header plus every intact entry, with the byte
/// length of the valid prefix so a torn tail can be truncated away before
/// appending resumes.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDoc {
    /// The parsed header line.
    pub header: Header,
    /// Entries in sequence order (`header.base_seq + 1` onward).
    pub entries: Vec<Entry>,
    /// Bytes of the file occupied by intact lines; anything past this is
    /// the torn tail of a crash mid-append.
    pub valid_len: u64,
    /// Whether a torn final line was dropped.
    pub torn_tail: bool,
}

impl JournalDoc {
    /// Sequence number of the last intact entry (`base_seq` when empty).
    pub fn last_seq(&self) -> u64 {
        self.entries.last().map_or(self.header.base_seq, |e| e.seq)
    }

    /// Parses journal text with torn-tail tolerance.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing/corrupt header, an unparsable line
    /// that is *not* the final one, or a sequence gap.
    pub fn parse(text: &str) -> Result<JournalDoc, String> {
        let mut offset = 0usize;
        let mut valid_len = 0u64;
        let mut torn_tail = false;
        let mut header: Option<Header> = None;
        let mut entries = Vec::new();
        let mut lineno = 0usize;
        while offset < text.len() {
            let rest = &text[offset..];
            let (line, consumed) = match rest.find('\n') {
                Some(pos) => (&rest[..pos], pos + 1),
                // A final line without its newline was interrupted
                // mid-append even if it happens to parse: drop it.
                None => {
                    torn_tail = true;
                    break;
                }
            };
            lineno += 1;
            if !line.trim().is_empty() {
                let parsed =
                    parse_flat_json(line.trim()).map_err(|e| e.to_string()).and_then(|fields| {
                        match scalar_str(&fields, "kind")? {
                            "wal" => Header::from_fields(&fields).map(Some),
                            "wal-entry" => {
                                entries.push(Entry::from_fields(&fields)?);
                                Ok(None)
                            }
                            other => Err(format!("unknown journal line kind {other:?}")),
                        }
                    });
                match parsed {
                    Ok(Some(h)) => {
                        if header.is_some() {
                            return Err(format!("line {lineno}: duplicate journal header"));
                        }
                        if !entries.is_empty() {
                            return Err(format!("line {lineno}: header after entries"));
                        }
                        header = Some(h);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        // Only the file's final line may be torn.
                        if offset + consumed >= text.len() {
                            torn_tail = true;
                            break;
                        }
                        return Err(format!("line {lineno}: {e}"));
                    }
                }
            }
            offset += consumed;
            valid_len = offset as u64;
        }
        let header = header.ok_or_else(|| "journal has no header line".to_string())?;
        let mut expected = header.base_seq;
        for e in &entries {
            expected += 1;
            if e.seq != expected {
                return Err(format!(
                    "journal sequence gap: expected seq {expected}, found {}",
                    e.seq
                ));
            }
        }
        Ok(JournalDoc { header, entries, valid_len, torn_tail })
    }
}

/// The append handle for one population's journal.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_seq: u64,
    since_sync: u64,
    len: u64,
    synced_len: u64,
}

impl Wal {
    /// Creates a fresh journal at `path` (truncating any previous file)
    /// with the given header, fsynced before return.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as strings.
    pub fn create(path: &Path, header: &Header, policy: FsyncPolicy) -> Result<Wal, String> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        let mut file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
        let line = format!("{}\n", header.to_json());
        file.write_all(line.as_bytes()).map_err(|e| format!("write {}: {e}", path.display()))?;
        file.sync_all().map_err(|e| format!("sync {}: {e}", path.display()))?;
        let len = line.len() as u64;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            next_seq: header.base_seq + 1,
            since_sync: 0,
            len,
            synced_len: len,
        })
    }

    /// Reopens an existing journal for appending after recovery: the file
    /// is truncated to `doc.valid_len` (dropping any torn tail) and the
    /// next appended entry continues the sequence.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as strings.
    pub fn reopen(path: &Path, doc: &JournalDoc, policy: FsyncPolicy) -> Result<Wal, String> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        file.set_len(doc.valid_len).map_err(|e| format!("truncate {}: {e}", path.display()))?;
        file.sync_all().map_err(|e| format!("sync {}: {e}", path.display()))?;
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            policy,
            next_seq: doc.last_seq() + 1,
            since_sync: 0,
            len: doc.valid_len,
            synced_len: doc.valid_len,
        };
        // Position at the end for appends (OpenOptions::append would
        // fight set_len bookkeeping on some platforms; seek is explicit).
        use std::io::Seek;
        wal.file
            .seek(std::io::SeekFrom::Start(doc.valid_len))
            .map_err(|e| format!("seek {}: {e}", wal.path.display()))?;
        Ok(wal)
    }

    /// The sequence number the next appended entry will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes guaranteed durable under the policy's worst case — the
    /// crash-simulation point for benches and property tests.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Bytes written (durable or not).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no entries have been appended since creation/rotation.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 1 && self.since_sync == 0
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one command, assigning it the next sequence number, and
    /// fsyncs according to policy. Returns the assigned sequence number.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as strings; the entry is not considered
    /// journaled on error.
    pub fn append(&mut self, op: Op, id: Option<&str>) -> Result<u64, String> {
        let entry = Entry { seq: self.next_seq, op, id: map_id(id) };
        let line = format!("{}\n", entry.to_json());
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("append {}: {e}", self.path.display()))?;
        self.len += line.len() as u64;
        self.next_seq += 1;
        self.since_sync += 1;
        let should_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if should_sync {
            self.sync()?;
        }
        Ok(entry.seq)
    }

    /// Forces everything appended so far to disk.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as strings.
    pub fn sync(&mut self) -> Result<(), String> {
        crate::obs::time_span(crate::obs::Span::Fsync, || self.file.sync_all())
            .map_err(|e| format!("sync {}: {e}", self.path.display()))?;
        self.since_sync = 0;
        self.synced_len = self.len;
        Ok(())
    }

    /// Atomically replaces the journal with a fresh one (the
    /// snapshot-truncation step): writes the new header to a temp file,
    /// fsyncs, renames over the old journal, and rearms this handle.
    ///
    /// The caller must have written (and fsynced) the snapshot covering
    /// `header.base_seq` *before* rotating — a crash between the two then
    /// recovers from the snapshot plus the old journal's tail, never
    /// losing acknowledged entries.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as strings; on error the old journal is
    /// still in place and this handle still appends to it.
    pub fn rotate(&mut self, header: &Header) -> Result<(), String> {
        let tmp = self.path.with_extension("tmp");
        let mut file = File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        let line = format!("{}\n", header.to_json());
        file.write_all(line.as_bytes()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        file.sync_all().map_err(|e| format!("sync {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &self.path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), self.path.display()))?;
        let len = line.len() as u64;
        self.file = file;
        self.next_seq = header.base_seq + 1;
        self.since_sync = 0;
        self.len = len;
        self.synced_len = len;
        Ok(())
    }
}

fn map_id(id: Option<&str>) -> Option<String> {
    id.map(str::to_string)
}

/// The bounded, journaled window of recently acknowledged request ids
/// backing exactly-once retries.
#[derive(Debug, Default, Clone)]
pub struct DedupWindow {
    ids: VecDeque<String>,
}

impl DedupWindow {
    /// An empty window.
    pub fn new() -> Self {
        DedupWindow { ids: VecDeque::new() }
    }

    /// Rebuilds a window from journal-carried ids, oldest first.
    pub fn from_ids<I: IntoIterator<Item = String>>(ids: I) -> Self {
        let mut window = DedupWindow::new();
        for id in ids {
            window.insert(&id);
        }
        window
    }

    /// Whether `id` was acknowledged within the window.
    pub fn contains(&self, id: &str) -> bool {
        self.ids.iter().any(|seen| seen == id)
    }

    /// Records an acknowledged id, evicting the oldest past
    /// [`DEDUP_WINDOW`].
    pub fn insert(&mut self, id: &str) {
        if self.ids.len() == DEDUP_WINDOW {
            self.ids.pop_front();
        }
        self.ids.push_back(id.to_string());
    }

    /// The retained ids, oldest first (for header carry-over).
    pub fn ids(&self) -> Vec<String> {
        self.ids.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("ssle-journal-{tag}-{}{JOURNAL_SUFFIX}", std::process::id()))
    }

    fn sample_header() -> Header {
        Header {
            name: "a".to_string(),
            protocol: "ciw".to_string(),
            backend: "agents".to_string(),
            n: 16,
            seed: 7,
            base_seq: 0,
            ids: Vec::new(),
            churn: None,
        }
    }

    #[test]
    fn fsync_policy_specs_round_trip() {
        for spec in ["always", "every:16", "never"] {
            assert_eq!(FsyncPolicy::parse(spec).unwrap().spec(), spec);
        }
        assert_eq!(FsyncPolicy::parse("always").unwrap().loss_window(), Some(0));
        assert_eq!(FsyncPolicy::parse("every:16").unwrap().loss_window(), Some(15));
        assert_eq!(FsyncPolicy::parse("never").unwrap().loss_window(), None);
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn request_ids_are_validated() {
        assert!(valid_request_id("cli-1.a_B"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("brace}"));
        assert!(!valid_request_id(&"x".repeat(129)));
    }

    #[test]
    fn entries_and_header_round_trip() {
        let ops = [
            Op::Step(500),
            Op::Join(3),
            Op::Leave(1),
            Op::Corrupt(4),
            Op::Churn("burst:5:0.1".to_string(), 9),
        ];
        let mut text = String::new();
        let mut header = sample_header();
        header.ids = vec!["a-1".to_string(), "a-2".to_string()];
        header.churn = Some(("burst:5:0.1".to_string(), 11));
        text.push_str(&header.to_json());
        text.push('\n');
        for (i, op) in ops.iter().enumerate() {
            let entry = Entry {
                seq: i as u64 + 1,
                op: op.clone(),
                id: (i % 2 == 0).then(|| format!("id-{i}")),
            };
            text.push_str(&entry.to_json());
            text.push('\n');
        }
        let doc = JournalDoc::parse(&text).unwrap();
        assert_eq!(doc.header, header);
        assert_eq!(doc.entries.len(), 5);
        assert_eq!(doc.entries[4].op, ops[4]);
        assert_eq!(doc.entries[0].id.as_deref(), Some("id-0"));
        assert_eq!(doc.last_seq(), 5);
        assert!(!doc.torn_tail);
        assert_eq!(doc.valid_len, text.len() as u64);
    }

    #[test]
    fn torn_final_line_is_dropped_mid_file_garbage_is_fatal() {
        let mut text = format!("{}\n", sample_header().to_json());
        let full = Entry { seq: 1, op: Op::Step(100), id: None };
        text.push_str(&full.to_json());
        text.push('\n');
        let torn = Entry { seq: 2, op: Op::Step(200), id: None };
        let torn_json = torn.to_json();
        // Truncate the final line at every byte offset: always recoverable,
        // always to exactly one surviving entry.
        for cut in 0..torn_json.len() {
            let crashed = format!("{text}{}", &torn_json[..cut]);
            let doc = JournalDoc::parse(&crashed).unwrap();
            assert_eq!(doc.entries.len(), 1, "cut at {cut}");
            assert_eq!(doc.valid_len, text.len() as u64, "cut at {cut}");
        }
        // Even a fully written final line without its newline is torn.
        let no_newline = format!("{text}{torn_json}");
        let doc = JournalDoc::parse(&no_newline).unwrap();
        assert_eq!(doc.entries.len(), 1);
        assert!(doc.torn_tail);

        // Garbage before the end is corruption, not a torn tail.
        let mid = format!("{text}garbage\n{torn_json}\n");
        assert!(JournalDoc::parse(&mid).is_err());
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let mut text = format!("{}\n", sample_header().to_json());
        text.push_str(&Entry { seq: 1, op: Op::Step(1), id: None }.to_json());
        text.push('\n');
        text.push_str(&Entry { seq: 3, op: Op::Step(1), id: None }.to_json());
        text.push('\n');
        let err = JournalDoc::parse(&text).unwrap_err();
        assert!(err.contains("sequence gap"), "{err}");
    }

    #[test]
    fn wal_appends_rotates_and_reopens() {
        let path = temp_path("lifecycle");
        let mut wal = Wal::create(&path, &sample_header(), FsyncPolicy::EveryN(2)).unwrap();
        assert_eq!(wal.append(Op::Step(100), Some("r-1")).unwrap(), 1);
        // One unsynced entry: durable bytes still at the header.
        assert!(wal.synced_len() < wal.len());
        assert_eq!(wal.append(Op::Join(2), None).unwrap(), 2);
        // The every:2 policy synced on the second append.
        assert_eq!(wal.synced_len(), wal.len());

        let doc = JournalDoc::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.last_seq(), 2);

        // Rotation replaces the file with a fresh header at base_seq 2.
        let rotated = Header { base_seq: 2, ids: vec!["r-1".to_string()], ..sample_header() };
        wal.rotate(&rotated).unwrap();
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(wal.append(Op::Corrupt(1), None).unwrap(), 3);
        let doc = JournalDoc::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.header.base_seq, 2);
        assert_eq!(doc.header.ids, vec!["r-1".to_string()]);
        assert_eq!(doc.entries.len(), 1);

        // Reopen appends past the recovered tail.
        drop(wal);
        let doc = JournalDoc::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        let mut wal = Wal::reopen(&path, &doc, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.append(Op::Leave(1), None).unwrap(), 4);
        let doc = JournalDoc::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.last_seq(), 4);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reopen_truncates_a_torn_tail() {
        let path = temp_path("torn");
        let mut wal = Wal::create(&path, &sample_header(), FsyncPolicy::Always).unwrap();
        wal.append(Op::Step(10), None).unwrap();
        wal.append(Op::Step(20), None).unwrap();
        drop(wal);
        // Simulate a crash mid-append of entry 3.
        let mut bytes = fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(br#"{"kind":"wal-entry","seq":3,"op":"st"#);
        fs::write(&path, &bytes).unwrap();

        let doc = JournalDoc::parse(&String::from_utf8(bytes).unwrap()).unwrap();
        assert!(doc.torn_tail);
        assert_eq!(doc.valid_len, intact as u64);
        let mut wal = Wal::reopen(&path, &doc, FsyncPolicy::Always).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), intact as u64);
        assert_eq!(wal.append(Op::Step(30), None).unwrap(), 3);
        let doc = JournalDoc::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!doc.torn_tail);
        assert_eq!(doc.last_seq(), 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let mut window = DedupWindow::new();
        for i in 0..DEDUP_WINDOW + 8 {
            window.insert(&format!("id-{i}"));
        }
        assert!(!window.contains("id-0"));
        assert!(window.contains(&format!("id-{}", DEDUP_WINDOW + 7)));
        assert_eq!(window.ids().len(), DEDUP_WINDOW);
        let rebuilt = DedupWindow::from_ids(window.ids());
        assert!(rebuilt.contains("id-9"));
    }
}
