#![warn(missing_docs)]

//! `ssle serve` — the election service daemon.
//!
//! Long-running leader election as a *service*: the daemon multiplexes
//! many named live populations, each paced by the shared
//! [`population::SteppedDriver`] in bounded slices so membership events
//! injected over the wire fire between slices and convergence is probed
//! at every boundary. The environment is offline (no tokio/hyper), so the
//! stack is hand-rolled end to end:
//!
//! * [`pool`] — bounded thread pool with busy backpressure and panic
//!   isolation (workers respawn);
//! * [`obs`] — zero-cost-when-off request tracing: per-command log₂
//!   latency histograms and span attribution (queue/lock/engine/journal/
//!   fsync/write) aggregated lock-free, a flight recorder dumped on
//!   panic/quarantine, and the `--slow-ms` slow-request log;
//! * [`wire`] — line-delimited flat-JSON requests/responses sharing the
//!   record module's codec;
//! * [`pop`] — the managed-population trait object: `ciw`/`oss` on
//!   `agents`/`counts`, with per-population timelines and engine metrics;
//! * [`journal`] — the per-population append-only write-ahead journal
//!   (configurable fsync policy, torn-tail-tolerant parsing, bounded
//!   request-id dedup window);
//! * [`registry`] — the named-population map plus the durability and
//!   self-healing layer: journal-then-apply writes, auto-snapshot with
//!   journal rotation, restore-on-boot (snapshot + journal tail), and
//!   quarantine-and-heal for poisoned populations;
//! * [`server`] — nonblocking accept loop, request dispatch with bounded
//!   request lines and per-line read deadlines, SIGINT/SIGTERM →
//!   graceful shutdown;
//! * [`client`] — the blocking client plus [`client::RetryClient`]: per-
//!   request deadlines, jittered exponential backoff, idempotent request
//!   ids for exactly-once retried mutations;
//! * [`chaos`] — a deterministic seeded fault-injecting TCP proxy
//!   (delays, resets, partial writes, slowloris) for crash/partition
//!   drills against a live daemon.

pub mod chaos;
pub mod client;
pub mod journal;
pub mod obs;
pub mod pool;
pub mod pop;
pub mod registry;
pub mod server;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use client::{ClientError, RetryClient};
pub use journal::{DedupWindow, FsyncPolicy, JournalDoc, Op, Wal};
pub use obs::{ServerStats, Span, StatsSnapshot, Trace};
pub use pool::{PoolError, ThreadPool};
pub use pop::{Checkpoint, EventKind, LeaderReport, Managed, RanksReport, Status, StepReport};
pub use registry::{Applied, ApplyOutcome, Durability, HealthRow, PopCell, Registry};
pub use server::{
    handle_line, install_sigint_handler, sigint_received, ServeConfig, ServeSummary, Server,
};
pub use wire::{check_response, error_response, ok_response, Request};
