#![warn(missing_docs)]

//! `ssle serve` — the election service daemon.
//!
//! Long-running leader election as a *service*: the daemon multiplexes
//! many named live populations, each paced by the shared
//! [`population::SteppedDriver`] in bounded slices so membership events
//! injected over the wire fire between slices and convergence is probed
//! at every boundary. The environment is offline (no tokio/hyper), so the
//! stack is hand-rolled end to end:
//!
//! * [`pool`] — bounded thread pool with busy backpressure and panic
//!   isolation (workers respawn);
//! * [`wire`] — line-delimited flat-JSON requests/responses sharing the
//!   record module's codec;
//! * [`pop`] — the managed-population trait object: `ciw`/`oss` on
//!   `agents`/`counts`, with per-population timelines and engine metrics;
//! * [`registry`] — the named-population map plus the snapshot lifecycle
//!   (`snapshot` requests, snapshot-all on shutdown, restore-on-boot);
//! * [`server`] — nonblocking accept loop, request dispatch, SIGINT →
//!   graceful shutdown;
//! * [`client`] — the blocking client the `ssle client` subcommand and
//!   the throughput bench use.

pub mod client;
pub mod pool;
pub mod pop;
pub mod registry;
pub mod server;
pub mod wire;

pub use pool::{PoolError, ThreadPool};
pub use pop::{Checkpoint, EventKind, LeaderReport, Managed, RanksReport, Status, StepReport};
pub use registry::Registry;
pub use server::{
    handle_line, install_sigint_handler, sigint_received, ServeConfig, ServeSummary, Server,
};
pub use wire::{check_response, error_response, ok_response, Request};
