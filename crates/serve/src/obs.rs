//! Zero-cost-when-off request observability: span tracing, lock-free
//! latency aggregation, a flight recorder, and a slow-request log.
//!
//! Every request the daemon serves is stamped with monotonic span
//! timestamps across its full life — pool queue wait, parse, registry
//! lock, per-population lock, engine work, journal append, fsync, and
//! response write — and folded into a shared [`ServerStats`]:
//!
//! * **Per-command latency histograms.** log₂-bucketed microsecond
//!   histograms plus per-span totals, aggregated entirely with atomics so
//!   the hot path never takes a lock. The buckets use the same
//!   `bound:count,…,inf:count` encoding as the engine's batch-size
//!   metrics ([`analysis::encode_buckets`]), so the `stats` wire command
//!   can emit them as schema-v9 `server_stats` records directly.
//! * **A flight recorder.** A bounded ring buffer of the last
//!   [`FLIGHT_CAPACITY`] request traces, dumped to JSONL automatically
//!   when a worker panics or a population is quarantined, or on demand
//!   via the `dump-trace` admin command — the post-mortem for "what was
//!   the daemon doing right before it went wrong".
//! * **A slow-request log.** Requests slower than `--slow-ms` are logged
//!   to stderr with their full span breakdown.
//!
//! The tracer is *zero-cost in two tiers*. Compiled out (`obs-off`
//! feature): [`COMPILED`] is `false` and every instrumentation site
//! const-folds to the untimed path. Compiled in but inactive (no trace
//! begun on this thread — e.g. the registry driven directly by tests or
//! benches): [`time_span`] checks a thread-local flag and skips the
//! clock entirely.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use population::record::TraceRecord;

/// Whether the tracer is compiled in; the `obs-off` feature flips this to
/// `false` and instrumentation const-folds away.
pub const COMPILED: bool = !cfg!(feature = "obs-off");

/// How many request traces the flight recorder retains.
pub const FLIGHT_CAPACITY: usize = 256;

/// The spans a request's time is attributed across, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Span {
    /// Waiting in the pool queue before a worker picked the connection up
    /// (attributed to the connection's first request).
    Queue = 0,
    /// Parsing the request line.
    Parse = 1,
    /// Waiting for the registry map lock (name → slot lookup).
    RegistryLock = 2,
    /// Waiting for the per-population cell lock.
    PopLock = 3,
    /// Engine work while holding the cell lock (step/inject/read).
    Engine = 4,
    /// Journal append, *excluding* the fsync it may trigger.
    Journal = 5,
    /// Forcing the journal to disk (`sync_all`).
    Fsync = 6,
    /// Writing + flushing the response line.
    Write = 7,
}

/// Number of [`Span`] variants.
pub const SPAN_COUNT: usize = 8;

/// Span labels, indexed by the [`Span`] discriminant.
pub const SPAN_LABELS: [&str; SPAN_COUNT] =
    ["queue", "parse", "registry_lock", "pop_lock", "engine", "journal", "fsync", "write"];

/// The wire commands tracked individually; anything else (including
/// requests too malformed to name a command) aggregates under `other`.
pub const COMMANDS: [&str; 20] = [
    "ping",
    "create",
    "step",
    "join",
    "leave",
    "corrupt",
    "churn-plan",
    "leader",
    "ranks",
    "status",
    "timeline",
    "metrics",
    "snapshot",
    "health",
    "list",
    "delete",
    "shutdown",
    "stats",
    "dump-trace",
    "other",
];

/// The per-command slot a command name aggregates under.
pub fn cmd_index(cmd: &str) -> usize {
    COMMANDS.iter().position(|c| *c == cmd).unwrap_or(COMMANDS.len() - 1)
}

/// Number of log₂ latency-histogram bounds (microseconds, `1 << k`); one
/// overflow bucket sits above the last bound (~0.5 s).
pub const HIST_BOUNDS: usize = 20;

/// The latency-histogram bucket upper bounds, in microseconds.
pub const HIST_BOUNDS_US: [u64; HIST_BOUNDS] = {
    let mut bounds = [0u64; HIST_BOUNDS];
    let mut i = 0;
    while i < HIST_BOUNDS {
        bounds[i] = 1 << i;
        i += 1;
    }
    bounds
};

thread_local! {
    /// Whether a trace is active on this thread. A plain flag (the span
    /// accumulator lives separately) so [`time_span`]'s inactive path is
    /// one TLS read and no borrow bookkeeping.
    static TRACE_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TRACE_SPANS: Cell<[u64; SPAN_COUNT]> = const { Cell::new([0; SPAN_COUNT]) };
}

/// Starts a trace on this thread: subsequent [`time_span`] /
/// [`span_add`] calls accumulate until [`trace_take`]. No-op when
/// compiled out.
pub fn trace_begin() {
    if !COMPILED {
        return;
    }
    TRACE_SPANS.with(|s| s.set([0; SPAN_COUNT]));
    TRACE_ACTIVE.with(|a| a.set(true));
}

/// Whether a trace is active on this thread.
#[inline]
pub fn trace_active() -> bool {
    COMPILED && TRACE_ACTIVE.with(Cell::get)
}

/// Adds `nanos` to `span` on the active trace (no-op when inactive).
pub fn span_add(span: Span, nanos: u64) {
    if !trace_active() {
        return;
    }
    TRACE_SPANS.with(|s| {
        let mut spans = s.get();
        spans[span as usize] = spans[span as usize].saturating_add(nanos);
        s.set(spans);
    });
}

/// Ends the active trace, returning its per-span nanosecond totals;
/// `None` when no trace was active.
pub fn trace_take() -> Option<[u64; SPAN_COUNT]> {
    if !trace_active() {
        return None;
    }
    TRACE_ACTIVE.with(|a| a.set(false));
    Some(TRACE_SPANS.with(Cell::get))
}

/// Runs `f`, attributing its wall time to `span` on the active trace.
/// When compiled out or no trace is active, `f` runs without touching
/// the clock — this is the zero-cost-when-off contract every
/// instrumentation site relies on.
#[inline]
pub fn time_span<T>(span: Span, f: impl FnOnce() -> T) -> T {
    if !trace_active() {
        return f();
    }
    let started = Instant::now();
    let out = f();
    span_add(span, started.elapsed().as_nanos() as u64);
    out
}

/// One finished request trace — the flight recorder's unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The wire command (or `other` for unparseable requests).
    pub cmd: String,
    /// Target population name; empty for population-less commands.
    pub pop: String,
    /// Client request id (PR 9 retry dedup), so retried requests
    /// correlate across traces; empty when the client sent none.
    pub id: String,
    /// Whether the response carried `ok:true`.
    pub ok: bool,
    /// End-to-end microseconds (queue wait through response flush).
    pub total_us: u64,
    /// Per-span microseconds, indexed by [`Span`] discriminant.
    pub spans_us: [u64; SPAN_COUNT],
}

impl Trace {
    /// Converts to the schema-v9 `trace` record.
    pub fn to_record(&self) -> TraceRecord {
        TraceRecord {
            cmd: self.cmd.clone(),
            pop: self.pop.clone(),
            id: self.id.clone(),
            ok: self.ok,
            total_us: self.total_us,
            queue_us: self.spans_us[Span::Queue as usize],
            parse_us: self.spans_us[Span::Parse as usize],
            registry_lock_us: self.spans_us[Span::RegistryLock as usize],
            pop_lock_us: self.spans_us[Span::PopLock as usize],
            engine_us: self.spans_us[Span::Engine as usize],
            journal_us: self.spans_us[Span::Journal as usize],
            fsync_us: self.spans_us[Span::Fsync as usize],
            write_us: self.spans_us[Span::Write as usize],
        }
    }
}

/// Lock-free per-command counters: request/error counts, total latency,
/// a log₂ latency histogram, and per-span totals.
#[derive(Debug)]
pub struct CmdStats {
    count: AtomicU64,
    errors: AtomicU64,
    total_us: AtomicU64,
    hist: [AtomicU64; HIST_BOUNDS + 1],
    spans_us: [AtomicU64; SPAN_COUNT],
}

impl CmdStats {
    fn new() -> Self {
        CmdStats {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
            spans_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.total_us.store(0, Ordering::Relaxed);
        for bucket in &self.hist {
            bucket.store(0, Ordering::Relaxed);
        }
        for span in &self.spans_us {
            span.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of one command's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdSnapshot {
    /// The wire command.
    pub cmd: &'static str,
    /// Requests served.
    pub count: u64,
    /// Requests answered with `ok:false`.
    pub errors: u64,
    /// Sum of end-to-end microseconds.
    pub total_us: u64,
    /// Per-span microsecond totals, indexed by [`Span`] discriminant.
    pub spans_us: [u64; SPAN_COUNT],
    /// The latency histogram in the shared `bound:count,…` encoding;
    /// `None` when no requests landed.
    pub hist: Option<String>,
    /// Median end-to-end latency (bucket upper bound), microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_us: f64,
}

/// A point-in-time copy of the whole [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Seconds since boot or the last reset — the rps window.
    pub window_s: f64,
    /// Total requests across all commands.
    pub requests: u64,
    /// Busy-envelope refusals at the accept loop.
    pub busy: u64,
    /// Requests that crossed the `--slow-ms` threshold.
    pub slow: u64,
    /// Pool queue depth at the last accept.
    pub queue_depth: u64,
    /// Flight-recorder dumps written so far.
    pub dumps: u64,
    /// Per-command rows, only for commands that saw traffic.
    pub commands: Vec<CmdSnapshot>,
}

/// The shared, lock-free (on the hot path) server-wide aggregation of
/// request traces, plus the flight recorder behind a mutex that only
/// trace *completion* touches.
pub struct ServerStats {
    cmds: Vec<CmdStats>,
    busy: AtomicU64,
    slow: AtomicU64,
    queue_depth: AtomicU64,
    dumps: AtomicU64,
    slow_us: u64,
    window_start: Mutex<Instant>,
    flight: Mutex<VecDeque<Trace>>,
    dump_dir: Option<PathBuf>,
}

impl std::fmt::Debug for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerStats")
            .field("requests", &self.snapshot().requests)
            .field("dump_dir", &self.dump_dir)
            .finish()
    }
}

impl ServerStats {
    /// Fresh stats. `slow_ms = 0` disables the slow-request log;
    /// `dump_dir` is where flight-recorder dumps land (`None` disables
    /// automatic dumps — `dump-trace` still returns traces inline).
    pub fn new(slow_ms: u64, dump_dir: Option<PathBuf>) -> Self {
        ServerStats {
            cmds: (0..COMMANDS.len()).map(|_| CmdStats::new()).collect(),
            busy: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            slow_us: slow_ms.saturating_mul(1_000),
            window_start: Mutex::new(Instant::now()),
            flight: Mutex::new(VecDeque::with_capacity(FLIGHT_CAPACITY)),
            dump_dir,
        }
    }

    /// Folds one finished trace into the aggregates, the flight
    /// recorder, and (past the threshold) the slow-request log.
    pub fn record(&self, trace: Trace) {
        let stats = &self.cmds[cmd_index(&trace.cmd)];
        stats.count.fetch_add(1, Ordering::Relaxed);
        if !trace.ok {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        stats.total_us.fetch_add(trace.total_us, Ordering::Relaxed);
        let bucket = HIST_BOUNDS_US.partition_point(|&b| b < trace.total_us.max(1));
        stats.hist[bucket].fetch_add(1, Ordering::Relaxed);
        for (slot, &us) in stats.spans_us.iter().zip(trace.spans_us.iter()) {
            slot.fetch_add(us, Ordering::Relaxed);
        }
        if self.slow_us > 0 && trace.total_us >= self.slow_us {
            self.slow.fetch_add(1, Ordering::Relaxed);
            let spans: Vec<String> = SPAN_LABELS
                .iter()
                .zip(trace.spans_us.iter())
                .filter(|(_, &us)| us > 0)
                .map(|(label, us)| format!("{label}={us}us"))
                .collect();
            eprintln!(
                "slow request: cmd={} pop={:?} id={:?} total={}us {}",
                trace.cmd,
                trace.pop,
                trace.id,
                trace.total_us,
                spans.join(" ")
            );
        }
        let mut flight = self.flight.lock().unwrap_or_else(|p| p.into_inner());
        if flight.len() == FLIGHT_CAPACITY {
            flight.pop_front();
        }
        flight.push_back(trace);
    }

    /// Counts one busy-envelope refusal at the accept loop.
    pub fn record_busy(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the pool-queue-depth gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The `--slow-ms` threshold in microseconds (0 = disabled).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_us
    }

    /// The last `last` traces, most recent last.
    pub fn recent(&self, last: usize) -> Vec<Trace> {
        let flight = self.flight.lock().unwrap_or_else(|p| p.into_inner());
        flight.iter().skip(flight.len().saturating_sub(last)).cloned().collect()
    }

    /// Zeroes every counter and restarts the rps window. The flight
    /// recorder is *not* cleared — a reset must never erase the
    /// post-mortem.
    pub fn reset(&self) {
        for cmd in &self.cmds {
            cmd.reset();
        }
        self.busy.store(0, Ordering::Relaxed);
        self.slow.store(0, Ordering::Relaxed);
        *self.window_start.lock().unwrap_or_else(|p| p.into_inner()) = Instant::now();
    }

    /// A point-in-time copy of all counters, with per-command quantiles
    /// computed from the latency histograms.
    pub fn snapshot(&self) -> StatsSnapshot {
        let window_s = {
            let started = self.window_start.lock().unwrap_or_else(|p| p.into_inner());
            started.elapsed().as_secs_f64()
        };
        let mut commands = Vec::new();
        let mut requests = 0;
        for (idx, cmd) in self.cmds.iter().enumerate() {
            let count = cmd.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            requests += count;
            let counts: Vec<u64> = cmd.hist.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let hist = analysis::encode_buckets(&HIST_BOUNDS_US, &counts);
            let decoded = hist.as_deref().and_then(analysis::decode_buckets).unwrap_or_default();
            // A quantile in the overflow bucket comes back infinite;
            // clamp to the top finite bound (the value is "at least
            // this") so the JSON field stays a number, not null.
            let top = *HIST_BOUNDS_US.last().expect("non-empty bounds") as f64;
            let quantile = |q: f64| {
                analysis::bucket_quantile(&decoded, q).map_or(0.0, |v| {
                    if v.is_finite() {
                        v
                    } else {
                        top
                    }
                })
            };
            commands.push(CmdSnapshot {
                cmd: COMMANDS[idx],
                count,
                errors: cmd.errors.load(Ordering::Relaxed),
                total_us: cmd.total_us.load(Ordering::Relaxed),
                spans_us: std::array::from_fn(|i| cmd.spans_us[i].load(Ordering::Relaxed)),
                hist,
                p50_us: quantile(0.50),
                p95_us: quantile(0.95),
                p99_us: quantile(0.99),
            });
        }
        StatsSnapshot {
            window_s,
            requests,
            busy: self.busy.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            dumps: self.dumps.load(Ordering::Relaxed),
            commands,
        }
    }

    /// Dumps the flight recorder to
    /// `<dump_dir>/flight-<reason>-<k>.jsonl` (schema-v9 `trace` rows).
    /// Returns the path, or `None` when no dump directory is configured
    /// or the recorder is empty. Failures are swallowed: the dump runs
    /// on panic/quarantine paths where a second failure must not cascade.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dump_dir.as_ref()?;
        let traces = self.recent(FLIGHT_CAPACITY);
        if traces.is_empty() {
            return None;
        }
        let k = self.dumps.fetch_add(1, Ordering::Relaxed);
        if fs::create_dir_all(dir).is_err() {
            return None;
        }
        let path = dir.join(format!("flight-{reason}-{k}.jsonl"));
        let mut file = fs::File::create(&path).ok()?;
        for trace in &traces {
            if writeln!(file, "{}", trace.to_record().to_json()).is_err() {
                return None;
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(cmd: &str, total_us: u64, ok: bool) -> Trace {
        Trace {
            cmd: cmd.to_string(),
            pop: "p".to_string(),
            id: String::new(),
            ok,
            total_us,
            spans_us: [0, 1, 0, 0, total_us.saturating_sub(1), 0, 0, 0],
        }
    }

    #[test]
    fn spans_accumulate_only_while_a_trace_is_active() {
        assert!(trace_take().is_none());
        span_add(Span::Engine, 100); // inactive: dropped
        trace_begin();
        span_add(Span::Engine, 40);
        let n = time_span(Span::Parse, || 7);
        assert_eq!(n, 7);
        if COMPILED {
            let spans = trace_take().expect("active trace");
            assert_eq!(spans[Span::Engine as usize], 40);
        } else {
            assert!(trace_take().is_none(), "obs-off never activates a trace");
        }
        assert!(trace_take().is_none(), "take ends the trace");
    }

    #[test]
    fn records_aggregate_per_command_with_histogram_mass() {
        let stats = ServerStats::new(0, None);
        for us in [1, 3, 900, 70_000] {
            stats.record(trace("step", us, true));
        }
        stats.record(trace("status", 5, false));
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 5);
        let step = snap.commands.iter().find(|c| c.cmd == "step").expect("step row");
        assert_eq!(step.count, 4);
        assert_eq!(step.errors, 0);
        let decoded = analysis::decode_buckets(step.hist.as_deref().unwrap()).unwrap();
        let mass: u64 = decoded.iter().map(|(_, c)| c).sum();
        assert_eq!(mass, 4, "histogram mass equals requests recorded");
        assert!(step.p99_us >= step.p50_us);
        let status = snap.commands.iter().find(|c| c.cmd == "status").expect("status row");
        assert_eq!(status.errors, 1);
    }

    /// A request slower than the top histogram bound lands in the
    /// overflow bucket; its quantiles must clamp to the top finite
    /// bound, never go infinite (which would serialize as JSON null).
    #[test]
    fn overflow_bucket_quantiles_clamp_to_the_top_bound() {
        let stats = ServerStats::new(0, None);
        let top = *HIST_BOUNDS_US.last().unwrap();
        stats.record(trace("step", top * 4, true));
        let snap = stats.snapshot();
        let step = snap.commands.iter().find(|c| c.cmd == "step").expect("step row");
        assert!(step.p50_us.is_finite());
        assert_eq!(step.p50_us, top as f64);
        assert_eq!(step.p99_us, top as f64);
    }

    #[test]
    fn unknown_commands_fold_into_other() {
        let stats = ServerStats::new(0, None);
        stats.record(trace("frobnicate", 10, false));
        let snap = stats.snapshot();
        assert_eq!(snap.commands.len(), 1);
        assert_eq!(snap.commands[0].cmd, "other");
    }

    #[test]
    fn flight_recorder_is_bounded_and_survives_reset() {
        let stats = ServerStats::new(0, None);
        for i in 0..(FLIGHT_CAPACITY as u64 + 10) {
            stats.record(trace("ping", i, true));
        }
        let recent = stats.recent(FLIGHT_CAPACITY + 100);
        assert_eq!(recent.len(), FLIGHT_CAPACITY);
        assert_eq!(recent.last().unwrap().total_us, FLIGHT_CAPACITY as u64 + 9);
        stats.reset();
        assert_eq!(stats.snapshot().requests, 0);
        assert_eq!(stats.recent(4).len(), 4, "reset must not clear the flight recorder");
    }

    #[test]
    fn dump_writes_trace_records() {
        let dir = std::env::temp_dir().join(format!("ssle-obs-dump-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let stats = ServerStats::new(0, Some(dir.clone()));
        assert!(stats.dump("empty").is_none(), "empty recorder dumps nothing");
        stats.record(trace("step", 42, true));
        let path = stats.dump("test").expect("dump path");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\":\"trace\""), "{text}");
        assert!(text.contains("\"cmd\":\"step\""), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_requests_are_counted_past_the_threshold() {
        let stats = ServerStats::new(5, None); // 5 ms
        stats.record(trace("step", 4_999, true));
        stats.record(trace("step", 5_000, true));
        assert_eq!(stats.snapshot().slow, 1);
    }
}
