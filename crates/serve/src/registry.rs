//! The named-population registry the daemon multiplexes over — now the
//! durability and self-healing layer as well.
//!
//! Locking is two-level so a long `step` on one population never blocks
//! requests against another: the registry lock is held only long enough to
//! clone a population's `Arc`, then per-population mutexes serialize the
//! actual work. Every lock acquisition is poison-recovering: a handler
//! panic mid-mutation quarantines the population — when a state directory
//! is configured it is restarted from snapshot + journal (losing nothing
//! acknowledged as durable), otherwise the possibly half-mutated state is
//! kept as-is and the self-stabilizing protocol absorbs it like any other
//! adversarial configuration.
//!
//! When a state directory is configured, every mutating command is
//! appended to the population's write-ahead journal *before* it is
//! applied, snapshots record the journal sequence they cover, and the
//! journal is truncated (rotated) against each snapshot. Boot-time
//! recovery replays the journal tail on top of the last snapshot and then
//! re-snapshots, so any crash state normalizes to a clean
//! snapshot-plus-empty-journal pair.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use population::dynamics::ChurnPlan;
use population::snapshot::SnapshotDoc;

use crate::journal::{
    valid_request_id, DedupWindow, FsyncPolicy, Header, JournalDoc, Op, Wal, JOURNAL_SUFFIX,
};
use crate::obs::{self, ServerStats, Span};
use crate::pop::{self, EventKind, Managed, Status, StepReport};

/// Suffix of every snapshot file the registry reads and writes.
pub const SNAPSHOT_SUFFIX: &str = ".snapshot.jsonl";

/// How the durable path behaves; only meaningful with a state directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Durability {
    /// When journal appends are forced to disk.
    pub fsync: FsyncPolicy,
    /// Auto-snapshot (and truncate the journal) after this many journaled
    /// commands since the last snapshot.
    pub autosnap_every: u64,
}

impl Default for Durability {
    fn default() -> Self {
        Durability { fsync: FsyncPolicy::Always, autosnap_every: 256 }
    }
}

/// One population plus its durability state, individually lockable.
pub struct PopCell {
    /// The live population.
    pub pop: Box<dyn Managed>,
    /// The append handle for the population's journal (durable mode only).
    pub wal: Option<Wal>,
    /// Recently acknowledged request ids, for exactly-once retries.
    pub dedup: DedupWindow,
    /// The creation seed — carried in the journal header across restarts
    /// (the population snapshot does not store it) because injected-event
    /// randomness is derived from `(seed, seq)` on every apply and replay.
    pub seed: u64,
    /// Sequence number of the last applied mutating command.
    pub seq: u64,
    /// Sequence number covered by the last written snapshot.
    pub snapshot_seq: u64,
    /// The active churn-plan binding `(spec, seed)` — driver state the
    /// population snapshot cannot capture, carried in the journal header
    /// across rotations instead.
    pub churn: Option<(String, u64)>,
}

/// One population slot.
pub type Slot = Arc<Mutex<PopCell>>;

/// What a mutating command did (beyond the common status payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Applied {
    /// A `step`: the driver's report.
    Step(StepReport),
    /// A membership event: agents touched after clamps.
    Event(usize),
    /// A `churn-plan` rebind.
    Churn,
}

/// The result of [`Registry::apply`] / [`Registry::create`].
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyOutcome {
    /// What the command did; `None` when it was a deduplicated retry.
    pub applied: Option<Applied>,
    /// Status after the command (or as-is for a deduplicated retry).
    pub status: Status,
    /// Whether the request id was already acknowledged (retry absorbed).
    pub replayed: bool,
    /// Journal sequence number of the command (last applied seq for a
    /// deduplicated retry; 0 without durability).
    pub seq: u64,
}

/// One row of the `health` report.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRow {
    /// Population name.
    pub name: String,
    /// Full status at report time.
    pub status: Status,
    /// Last applied journal sequence number.
    pub seq: u64,
    /// Sequence covered by the last snapshot.
    pub snapshot_seq: u64,
    /// Active fsync policy; `None` when the daemon runs stateless.
    pub fsync: Option<FsyncPolicy>,
}

/// The daemon's shared state: named populations plus the durability layer.
pub struct Registry {
    pops: Mutex<HashMap<String, Slot>>,
    state_dir: Option<PathBuf>,
    durability: Durability,
    quarantines: AtomicU64,
    /// The daemon's shared request-trace aggregation, when one is
    /// attached ([`Registry::set_obs`]). Carried here so the `stats` /
    /// `dump-trace` wire commands can reach it from request dispatch and
    /// so a quarantine can dump the flight recorder.
    obs: Mutex<Option<Arc<ServerStats>>>,
}

fn valid_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("population names must be 1–64 characters".to_string());
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
        return Err(format!("population name {name:?} may only contain letters, digits, '-', '_'"));
    }
    Ok(())
}

fn checked_id(id: Option<&str>) -> Result<Option<&str>, String> {
    match id {
        None => Ok(None),
        Some(id) if valid_request_id(id) => Ok(Some(id)),
        Some(id) => Err(format!("request id {id:?} must be 1–128 chars of [A-Za-z0-9._-]")),
    }
}

impl Registry {
    /// An empty registry with default [`Durability`]. `state_dir` enables
    /// the snapshot + journal lifecycle; without it the daemon runs
    /// stateless and `snapshot` requests are refused.
    pub fn new(state_dir: Option<PathBuf>) -> Self {
        Registry::with_durability(state_dir, Durability::default())
    }

    /// An empty registry with an explicit fsync/auto-snapshot policy.
    pub fn with_durability(state_dir: Option<PathBuf>, durability: Durability) -> Self {
        Registry {
            pops: Mutex::new(HashMap::new()),
            state_dir,
            durability,
            quarantines: AtomicU64::new(0),
            obs: Mutex::new(None),
        }
    }

    /// Attaches the daemon's shared request-trace aggregation; the
    /// `stats` and `dump-trace` wire commands serve from it, and
    /// quarantines dump the flight recorder to it.
    pub fn set_obs(&self, stats: Arc<ServerStats>) {
        *self.obs.lock().unwrap_or_else(PoisonError::into_inner) = Some(stats);
    }

    /// The attached request-trace aggregation, if any.
    pub fn obs(&self) -> Option<Arc<ServerStats>> {
        self.obs.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// How often a poisoned population has been quarantined and healed.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::SeqCst)
    }

    /// The active durability policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Whether a state directory is configured.
    pub fn durable(&self) -> bool {
        self.state_dir.is_some()
    }

    fn map(&self) -> MutexGuard<'_, HashMap<String, Slot>> {
        // The map is only ever inserted into / removed from under the
        // lock; a panic can not leave it mid-mutation, so poisoning is
        // recoverable by construction.
        self.pops.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates, registers, and (in durable mode) journals a population.
    /// A duplicate name with a request id already in the existing
    /// population's dedup window is an absorbed retry, not an error.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid names/ids, duplicate names, or
    /// [`pop::create`] failures.
    pub fn create(
        &self,
        name: &str,
        protocol: &str,
        backend: &str,
        n: u64,
        seed: u64,
        id: Option<&str>,
    ) -> Result<ApplyOutcome, String> {
        valid_name(name)?;
        let id = checked_id(id)?;
        let managed = pop::create(protocol, backend, n, seed)?;
        let mut pops = self.map();
        if let Some(existing) = pops.get(name) {
            if let Some(id) = id {
                let cell = lock_slot(existing);
                if cell.dedup.contains(id) {
                    return Ok(ApplyOutcome {
                        applied: None,
                        status: cell.pop.status(),
                        replayed: true,
                        seq: cell.seq,
                    });
                }
            }
            return Err(format!("population {name:?} already exists"));
        }
        let mut dedup = DedupWindow::new();
        if let Some(id) = id {
            dedup.insert(id);
        }
        let wal = match &self.state_dir {
            Some(dir) => {
                let header = Header {
                    name: name.to_string(),
                    protocol: protocol.to_string(),
                    backend: backend.to_string(),
                    n,
                    seed,
                    base_seq: 0,
                    ids: dedup.ids(),
                    churn: None,
                };
                Some(Wal::create(&journal_path(dir, name), &header, self.durability.fsync)?)
            }
            None => None,
        };
        let status = managed.status();
        let cell = PopCell { pop: managed, wal, dedup, seed, seq: 0, snapshot_seq: 0, churn: None };
        pops.insert(name.to_string(), Arc::new(Mutex::new(cell)));
        Ok(ApplyOutcome { applied: None, status, replayed: false, seq: 0 })
    }

    /// Looks up a population by name. The wait for the registry map lock
    /// is attributed to the active trace's `registry_lock` span.
    pub fn get(&self, name: &str) -> Option<Slot> {
        obs::time_span(Span::RegistryLock, || self.map()).get(name).cloned()
    }

    /// Runs `f` against the named population's locked cell, quarantining
    /// and healing a poisoned lock first (`lock_healing` semantics).
    ///
    /// # Errors
    ///
    /// Returns a message when the population does not exist.
    pub fn with_cell<R>(&self, name: &str, f: impl FnOnce(&mut PopCell) -> R) -> Result<R, String> {
        let slot = self.get(name).ok_or_else(|| format!("no population {name:?}"))?;
        let mut cell = self.lock_healing(name, &slot);
        Ok(obs::time_span(Span::Engine, || f(&mut cell)))
    }

    /// Locks a slot, quarantining and healing it when poisoned: with a
    /// state directory the cell is rebuilt from snapshot + journal
    /// (nothing durable is lost); without one the possibly half-mutated
    /// in-memory state is kept — the protocol is self-stabilizing, so a
    /// torn mutation is just another adversarial configuration it
    /// recovers from.
    fn lock_healing<'a>(&self, name: &str, slot: &'a Slot) -> MutexGuard<'a, PopCell> {
        match obs::time_span(Span::PopLock, || slot.lock()) {
            Ok(cell) => cell,
            Err(poisoned) => {
                let mut cell = poisoned.into_inner();
                self.quarantines.fetch_add(1, Ordering::SeqCst);
                // Post-mortem first: the traces leading up to the poison
                // are exactly what a quarantine investigation needs.
                if let Some(stats) = self.obs() {
                    let _ = stats.dump("quarantine");
                }
                if let Some(dir) = &self.state_dir {
                    if let Ok(healed) = self.recover_cell(name, dir) {
                        *cell = healed;
                    }
                    // An unrecoverable disk state falls back to the
                    // in-memory cell, same as the stateless path.
                }
                slot.clear_poison();
                cell
            }
        }
    }

    /// Journals (durable mode) and applies one mutating command, with
    /// request-id deduplication and auto-snapshotting.
    ///
    /// # Errors
    ///
    /// Returns a message for missing populations, invalid ids/specs, or
    /// journal I/O failures (the command is then *not* applied).
    pub fn apply(&self, name: &str, op: Op, id: Option<&str>) -> Result<ApplyOutcome, String> {
        let id = checked_id(id)?;
        let slot = self.get(name).ok_or_else(|| format!("no population {name:?}"))?;
        let mut cell = self.lock_healing(name, &slot);
        if let Some(id) = id {
            if cell.dedup.contains(id) {
                return Ok(ApplyOutcome {
                    applied: None,
                    status: cell.pop.status(),
                    replayed: true,
                    seq: cell.seq,
                });
            }
        }
        // Validate before journaling so the journal never holds a command
        // replay would refuse.
        if let Op::Churn(spec, seed) = &op {
            ChurnPlan::parse(spec, *seed)?;
        }
        // Write-ahead: the command is durable (per policy) before its
        // effects exist, so a crash between the two replays it.
        // The append is traced as `journal` (the fsync it may trigger is
        // measured separately inside `Wal::sync` and subtracted out).
        let seq = match cell.wal.as_mut() {
            Some(wal) => obs::time_span(Span::Journal, || wal.append(op.clone(), id))?,
            None => cell.seq + 1,
        };
        cell.seq = seq;
        let eseed = event_seed(cell.seed, seq);
        let applied = obs::time_span(Span::Engine, || apply_op(&mut cell.pop, &op, eseed))?;
        if let Op::Churn(spec, cseed) = &op {
            cell.churn = Some((spec.clone(), *cseed));
        }
        if let Some(id) = id {
            cell.dedup.insert(id);
        }
        let status = cell.pop.status();
        if self.state_dir.is_some() && seq - cell.snapshot_seq >= self.durability.autosnap_every {
            // Auto-snapshot failures must not fail the command that
            // triggered them; the journal still covers everything.
            let _ = self.snapshot_locked(name, &mut cell);
        }
        Ok(ApplyOutcome { applied: Some(applied), status, replayed: false, seq })
    }

    /// All population names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map().keys().cloned().collect();
        names.sort();
        names
    }

    /// Unregisters a population and removes its on-disk state; returns
    /// whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        let existed = self.map().remove(name).is_some();
        if existed {
            if let Some(dir) = &self.state_dir {
                let _ = fs::remove_file(snapshot_path(dir, name));
                let _ = fs::remove_file(journal_path(dir, name));
            }
        }
        existed
    }

    /// Serializes one population to `<dir>/<name>.snapshot.jsonl` and
    /// rotates its journal against the new snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message when no state directory is configured, the
    /// population does not exist, or the write fails.
    pub fn snapshot(&self, name: &str) -> Result<PathBuf, String> {
        let slot = self.get(name).ok_or_else(|| format!("no population {name:?}"))?;
        let mut cell = self.lock_healing(name, &slot);
        self.snapshot_locked(name, &mut cell)
    }

    fn snapshot_locked(&self, name: &str, cell: &mut PopCell) -> Result<PathBuf, String> {
        let dir = self
            .state_dir
            .as_ref()
            .ok_or_else(|| "no state directory configured (--snapshot-dir)".to_string())?;
        // Flush any unsynced journal tail first: the snapshot must never
        // be *ahead* of the durable journal.
        if let Some(wal) = cell.wal.as_mut() {
            wal.sync()?;
        }
        let mut doc =
            SnapshotDoc::from_jsonl(&cell.pop.snapshot_jsonl()).map_err(|e| e.to_string())?;
        doc.seq = cell.seq;
        let path = write_snapshot(dir, name, &doc.to_jsonl())?;
        cell.snapshot_seq = cell.seq;
        if let Some(wal) = cell.wal.as_mut() {
            let status = cell.pop.status();
            wal.rotate(&Header {
                name: name.to_string(),
                protocol: status.protocol.to_string(),
                backend: status.backend.to_string(),
                n: status.n0 as u64,
                // The cell's creation seed, not `status.seed`: a restored
                // population reports seed 0, and losing the real seed
                // would desynchronize injected-event replay.
                seed: cell.seed,
                base_seq: cell.seq,
                ids: cell.dedup.ids(),
                churn: cell.churn.clone(),
            })?;
        }
        Ok(path)
    }

    /// Serializes every population; returns `(name, outcome)` pairs.
    /// Without a state directory this is a no-op returning the empty
    /// list (a daemon without persistence shuts down stateless).
    pub fn snapshot_all(&self) -> Vec<(String, Result<PathBuf, String>)> {
        if self.state_dir.is_none() {
            return Vec::new();
        }
        let mut results = Vec::new();
        for name in self.list() {
            let Some(slot) = self.get(&name) else { continue };
            let mut cell = self.lock_healing(&name, &slot);
            results.push((name.clone(), self.snapshot_locked(&name, &mut cell)));
        }
        results
    }

    /// Restores every population with on-disk state (a snapshot, a
    /// journal, or both) in the state directory; returns `(name,
    /// outcome)` pairs. Corrupt state is reported and skipped, never
    /// fatal — one bad file must not brick the daemon.
    pub fn restore_all(&self) -> Vec<(String, Result<(), String>)> {
        let Some(dir) = self.state_dir.clone() else {
            return Vec::new();
        };
        let mut names: Vec<String> = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(_) => return Vec::new(), // directory not created yet
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(file) = path.file_name().and_then(|f| f.to_str()) else { continue };
            let name =
                file.strip_suffix(SNAPSHOT_SUFFIX).or_else(|| file.strip_suffix(JOURNAL_SUFFIX));
            if let Some(name) = name {
                if !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        let mut results = Vec::new();
        for name in names {
            results.push((name.clone(), self.restore_one(&name, &dir)));
        }
        results
    }

    fn restore_one(&self, name: &str, dir: &Path) -> Result<(), String> {
        valid_name(name)?;
        if self.map().contains_key(name) {
            return Err(format!("population {name:?} already exists"));
        }
        let cell = self.recover_cell(name, dir)?;
        self.map().insert(name.to_string(), Arc::new(Mutex::new(cell)));
        Ok(())
    }

    /// Rebuilds one population from its on-disk state: restore the
    /// snapshot (or recreate from the journal header when no snapshot
    /// covers seq 0), replay the journal tail, then normalize by writing
    /// a fresh snapshot and rotating the journal — so every crash state
    /// converges to a clean snapshot-plus-empty-journal pair.
    fn recover_cell(&self, name: &str, dir: &Path) -> Result<PopCell, String> {
        let journal = match fs::read_to_string(journal_path(dir, name)) {
            Ok(text) => Some(JournalDoc::parse(&text).map_err(|e| format!("journal: {e}"))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("journal: read: {e}")),
        };
        let snapshot = match fs::read_to_string(snapshot_path(dir, name)) {
            Ok(text) => Some(SnapshotDoc::from_jsonl(&text).map_err(|e| format!("snapshot: {e}"))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("snapshot: read: {e}")),
        };
        // The creation seed travels in the journal header — the snapshot
        // does not store it. A snapshot-only recovery (journal deleted by
        // hand) has no seed to recover; future injections then draw from
        // a zero-based stream, which the protocol absorbs like any other
        // adversarial input, but replay determinism is kept only when the
        // journal survives. Extracted *before* the restore so the rebuilt
        // population reports its real seed in `status`.
        let seed = match &journal {
            Some(Ok(j)) => j.header.seed,
            _ => 0,
        };
        let (mut pop, mut seq, mut dedup) = match (&snapshot, &journal) {
            (Some(Ok(doc)), _) => (pop::restore(doc, seed)?, doc.seq, DedupWindow::new()),
            // No usable snapshot: only a journal from seq 0 carries the
            // full history.
            (_, Some(Ok(j))) if j.header.base_seq == 0 => (
                pop::create(&j.header.protocol, &j.header.backend, j.header.n, j.header.seed)?,
                0,
                DedupWindow::new(),
            ),
            (Some(Err(e)), _) => return Err(e.clone()),
            (None, Some(Ok(j))) => {
                return Err(format!(
                    "journal starts at seq {} but no snapshot covers it",
                    j.header.base_seq
                ))
            }
            (None, Some(Err(e))) => return Err(e.clone()),
            (None, None) => return Err("no on-disk state".to_string()),
        };
        let mut churn: Option<(String, u64)> = None;
        if let Some(Ok(j)) = &journal {
            if j.header.base_seq > seq {
                return Err(format!(
                    "journal starts at seq {} but the snapshot only covers seq {seq}",
                    j.header.base_seq
                ));
            }
            dedup = DedupWindow::from_ids(j.header.ids.iter().cloned());
            // Churn bindings live in the driver, which the snapshot does
            // not capture: rebind the header-carried plan before any
            // replay (the schedule restarts its random stream).
            if let Some((spec, cseed)) = &j.header.churn {
                pop.set_churn(&ChurnPlan::parse(spec, *cseed)?);
                churn = j.header.churn.clone();
            }
            for entry in &j.entries {
                let replay = entry.seq > seq;
                if let Op::Churn(spec, cseed) = &entry.op {
                    // Rebind even when the snapshot already covers this
                    // entry — the binding itself is not in the snapshot.
                    pop.set_churn(
                        &ChurnPlan::parse(spec, *cseed)
                            .map_err(|e| format!("journal replay seq {}: {e}", entry.seq))?,
                    );
                    churn = Some((spec.clone(), *cseed));
                } else if replay {
                    apply_op(&mut pop, &entry.op, event_seed(seed, entry.seq))
                        .map_err(|e| format!("journal replay seq {}: {e}", entry.seq))?;
                }
                if replay {
                    seq = entry.seq;
                }
                if let Some(id) = &entry.id {
                    dedup.insert(id);
                }
            }
        }
        let mut cell = PopCell { pop, wal: None, dedup, seed, seq, snapshot_seq: 0, churn };
        // Normalize: fresh snapshot at the recovered seq, fresh journal
        // rotated against it. Written snapshot-first, so a crash inside
        // recovery itself just recovers again.
        let mut doc =
            SnapshotDoc::from_jsonl(&cell.pop.snapshot_jsonl()).map_err(|e| e.to_string())?;
        doc.seq = seq;
        write_snapshot(dir, name, &doc.to_jsonl())?;
        cell.snapshot_seq = seq;
        let status = cell.pop.status();
        cell.wal = Some(Wal::create(
            &journal_path(dir, name),
            &Header {
                name: name.to_string(),
                protocol: status.protocol.to_string(),
                backend: status.backend.to_string(),
                n: status.n0 as u64,
                seed: cell.seed,
                base_seq: seq,
                ids: cell.dedup.ids(),
                churn: cell.churn.clone(),
            },
            self.durability.fsync,
        )?);
        Ok(cell)
    }

    /// One liveness/journal-lag row per population, sorted by name.
    pub fn health(&self) -> Vec<HealthRow> {
        let mut rows = Vec::new();
        for name in self.list() {
            let row = self.with_cell(&name, |cell| HealthRow {
                name: name.clone(),
                status: cell.pop.status(),
                seq: cell.seq,
                snapshot_seq: cell.snapshot_seq,
                fsync: cell.wal.as_ref().map(|w| w.policy()),
            });
            if let Ok(row) = row {
                rows.push(row);
            }
        }
        rows
    }
}

/// Locks a slot without healing (registry-internal paths that already
/// hold the map lock); poisoned state is adopted as-is.
fn lock_slot(slot: &Slot) -> MutexGuard<'_, PopCell> {
    match slot.lock() {
        Ok(cell) => cell,
        Err(poisoned) => {
            slot.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Applies one journaled command to a population. Only `churn` can fail,
/// and only on a spec the write path should have validated.
///
/// Injections pin the driver's event stream to `eseed` first, so victim
/// and adversarial-state selection depend only on `(creation seed, seq)`
/// — boot-time replay of the same entry lands on the same agents even
/// though the snapshot carries no driver RNG state.
fn apply_op(pop: &mut Box<dyn Managed>, op: &Op, eseed: u64) -> Result<Applied, String> {
    if matches!(op, Op::Join(_) | Op::Leave(_) | Op::Corrupt(_)) {
        pop.reseed_events(eseed);
    }
    Ok(match op {
        Op::Step(k) => Applied::Step(pop.step(*k)),
        Op::Join(k) => Applied::Event(pop.inject(EventKind::Join, *k as usize)),
        Op::Leave(k) => Applied::Event(pop.inject(EventKind::Leave, *k as usize)),
        Op::Corrupt(k) => Applied::Event(pop.inject(EventKind::Corrupt, *k as usize)),
        Op::Churn(spec, seed) => {
            pop.set_churn(&ChurnPlan::parse(spec, *seed)?);
            Applied::Churn
        }
    })
}

/// The per-injection event-stream seed: a [`SplitMix64`]-style mix of the
/// population's creation seed and the command's journal sequence number.
///
/// [`SplitMix64`]: https://prng.di.unimi.it/splitmix64.c
fn event_seed(seed: u64, seq: u64) -> u64 {
    seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}{SNAPSHOT_SUFFIX}"))
}

fn journal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}{JOURNAL_SUFFIX}"))
}

fn write_snapshot(dir: &Path, name: &str, doc: &str) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = snapshot_path(dir, name);
    // Write-then-rename so a crash mid-write never leaves a truncated
    // snapshot under the restorable name.
    let tmp = dir.join(format!("{name}{SNAPSHOT_SUFFIX}.tmp"));
    let mut file = fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    file.write_all(doc.as_bytes()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    file.sync_all().map_err(|e| format!("sync {}: {e}", tmp.display()))?;
    drop(file);
    fs::rename(&tmp, &path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = env::temp_dir().join(format!("ssle-serve-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_list_delete_round_trip() {
        let reg = Registry::new(None);
        reg.create("a", "ciw", "agents", 8, 1, None).unwrap();
        reg.create("b", "oss", "counts", 8, 2, None).unwrap();
        assert_eq!(reg.list(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg
            .create("a", "ciw", "agents", 8, 1, None)
            .err()
            .unwrap()
            .contains("already exists"));
        assert!(reg.get("a").is_some());
        assert!(reg.delete("a"));
        assert!(!reg.delete("a"));
        assert_eq!(reg.list(), vec!["b".to_string()]);
    }

    #[test]
    fn names_are_validated() {
        let reg = Registry::new(None);
        assert!(reg.create("", "ciw", "agents", 8, 1, None).is_err());
        assert!(reg.create("a/b", "ciw", "agents", 8, 1, None).is_err());
        assert!(reg.create("../evil", "ciw", "agents", 8, 1, None).is_err());
        assert!(reg
            .create("ok", "ciw", "agents", 8, 1, Some("bad id"))
            .err()
            .unwrap()
            .contains("request id"));
    }

    #[test]
    fn snapshot_requires_a_directory() {
        let reg = Registry::new(None);
        reg.create("a", "ciw", "agents", 8, 1, None).unwrap();
        assert!(reg.snapshot("a").unwrap_err().contains("state directory"));
        assert!(reg.snapshot_all().is_empty());
    }

    #[test]
    fn snapshot_all_then_restore_all_round_trips() {
        let dir = temp_dir("roundtrip");
        let reg = Registry::new(Some(dir.clone()));
        reg.create("a", "ciw", "agents", 10, 1, None).unwrap();
        reg.create("b", "oss", "counts", 12, 2, None).unwrap();
        reg.apply("a", Op::Step(3_000), None).unwrap();
        reg.apply("b", Op::Step(3_000), None).unwrap();
        let snapshots = reg.snapshot_all();
        assert_eq!(snapshots.len(), 2);
        assert!(snapshots.iter().all(|(_, r)| r.is_ok()));

        let fresh = Registry::new(Some(dir.clone()));
        let restored = fresh.restore_all();
        assert_eq!(restored.len(), 2);
        assert!(restored.iter().all(|(_, r)| r.is_ok()), "{restored:?}");
        assert_eq!(fresh.list(), vec!["a".to_string(), "b".to_string()]);
        let status = fresh.with_cell("a", |cell| cell.pop.status()).unwrap();
        assert_eq!(status.interactions, 3_000);
        assert_eq!(status.protocol, "ciw");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_reports_and_does_not_brick_boot() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("bad{SNAPSHOT_SUFFIX}")), "not json\n").unwrap();
        let reg = Registry::new(Some(dir.clone()));
        reg.create("good", "ciw", "agents", 8, 1, None).unwrap();
        reg.snapshot("good").unwrap();
        let fresh = Registry::new(Some(dir.clone()));
        let restored = fresh.restore_all();
        assert_eq!(restored.len(), 2);
        let bad = restored.iter().find(|(n, _)| n == "bad").unwrap();
        assert!(bad.1.is_err());
        let good = restored.iter().find(|(n, _)| n == "good").unwrap();
        assert!(good.1.is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_alone_rebuilds_the_population() {
        let dir = temp_dir("journal-only");
        let reg = Registry::new(Some(dir.clone()));
        reg.create("j", "oss", "counts", 16, 5, None).unwrap();
        reg.apply("j", Op::Step(2_000), None).unwrap();
        reg.apply("j", Op::Corrupt(3), None).unwrap();
        reg.apply("j", Op::Step(1_000), None).unwrap();
        let reference = reg.with_cell("j", |c| c.pop.snapshot_jsonl()).unwrap();
        // Delete the snapshot (none was ever written — only create +
        // journal): recovery must replay the journal from scratch.
        let _ = fs::remove_file(dir.join(format!("j{SNAPSHOT_SUFFIX}")));

        let fresh = Registry::new(Some(dir.clone()));
        let restored = fresh.restore_all();
        assert!(restored.iter().all(|(_, r)| r.is_ok()), "{restored:?}");
        let recovered = fresh.with_cell("j", |c| c.pop.snapshot_jsonl()).unwrap();
        assert_eq!(reference, recovered, "journal replay diverged");
        // Recovery normalized: snapshot now covers seq 3, journal is empty.
        let health = &fresh.health()[0];
        assert_eq!(health.seq, 3);
        assert_eq!(health.snapshot_seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_ids_deduplicate_retries() {
        let dir = temp_dir("dedup");
        let reg = Registry::new(Some(dir.clone()));
        reg.create("d", "ciw", "counts", 16, 1, Some("create-1")).unwrap();
        // Retried create with the same id is absorbed, not an error.
        let retry = reg.create("d", "ciw", "counts", 16, 1, Some("create-1")).unwrap();
        assert!(retry.replayed);

        let first = reg.apply("d", Op::Step(1_000), Some("step-1")).unwrap();
        assert!(!first.replayed);
        let before = reg.with_cell("d", |c| c.pop.status().interactions).unwrap();
        let retry = reg.apply("d", Op::Step(1_000), Some("step-1")).unwrap();
        assert!(retry.replayed);
        assert!(retry.applied.is_none());
        let after = reg.with_cell("d", |c| c.pop.status().interactions).unwrap();
        assert_eq!(before, after, "deduplicated retry must not re-apply");

        // The dedup window survives restart via the journal.
        drop(reg);
        let fresh = Registry::new(Some(dir.clone()));
        fresh.restore_all();
        let replayed = fresh.apply("d", Op::Step(1_000), Some("step-1")).unwrap();
        assert!(replayed.replayed, "dedup window lost across restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn autosnap_truncates_the_journal() {
        let dir = temp_dir("autosnap");
        let reg = Registry::with_durability(
            Some(dir.clone()),
            Durability { fsync: FsyncPolicy::Always, autosnap_every: 4 },
        );
        reg.create("s", "oss", "counts", 12, 3, None).unwrap();
        for _ in 0..5 {
            reg.apply("s", Op::Step(100), None).unwrap();
        }
        let health = &reg.health()[0];
        assert_eq!(health.seq, 5);
        assert!(health.snapshot_seq >= 4, "auto-snapshot never fired: {health:?}");
        // The journal was rotated against the snapshot: base_seq matches.
        let text = fs::read_to_string(dir.join(format!("s{JOURNAL_SUFFIX}"))).unwrap();
        let doc = JournalDoc::parse(&text).unwrap();
        assert_eq!(doc.header.base_seq, health.snapshot_seq);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_slot_is_quarantined_and_healed_from_disk() {
        let dir = temp_dir("poison");
        let reg = Arc::new(Registry::new(Some(dir.clone())));
        reg.create("p", "ciw", "counts", 16, 2, None).unwrap();
        reg.apply("p", Op::Step(2_000), None).unwrap();
        let reference = reg.with_cell("p", |c| c.pop.snapshot_jsonl()).unwrap();

        // Poison the slot: panic while holding its lock, then mangle the
        // in-memory state so only a disk heal can explain recovery.
        let slot = reg.get("p").unwrap();
        let slot2 = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let mut cell = slot2.lock().unwrap();
            cell.pop.step(12_345); // torn mutation the journal never saw
            panic!("wedged handler");
        })
        .join();
        assert!(slot.is_poisoned());

        // The next access heals: quarantine counted, state rebuilt from
        // snapshot + journal, identical to the pre-panic state.
        let healed = reg.with_cell("p", |c| c.pop.snapshot_jsonl()).unwrap();
        assert_eq!(reg.quarantines(), 1);
        assert_eq!(healed, reference, "heal did not restore the journaled state");
        assert!(!reg.get("p").unwrap().is_poisoned());

        // And the population still serves.
        let out = reg.apply("p", Op::Step(500), None).unwrap();
        assert!(matches!(out.applied, Some(Applied::Step(r)) if r.performed == 500));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_slot_without_state_dir_keeps_memory_state() {
        let reg = Registry::new(None);
        reg.create("m", "oss", "counts", 12, 1, None).unwrap();
        reg.apply("m", Op::Step(1_000), None).unwrap();
        let slot = reg.get("m").unwrap();
        let slot2 = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _cell = slot2.lock().unwrap();
            panic!("wedged handler");
        })
        .join();
        assert!(slot.is_poisoned());
        // Heal keeps the in-memory state (nothing on disk to restore).
        let status = reg.with_cell("m", |c| c.pop.status()).unwrap();
        assert_eq!(status.interactions, 1_000);
        assert_eq!(reg.quarantines(), 1);
        assert!(!reg.get("m").unwrap().is_poisoned());
    }
}
