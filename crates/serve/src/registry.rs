//! The named-population registry the daemon multiplexes over.
//!
//! Locking is two-level so a long `step` on one population never blocks
//! requests against another: the registry lock is held only long enough to
//! clone a population's `Arc`, then per-population mutexes serialize the
//! actual work.
//!
//! When a snapshot directory is configured, `snapshot` requests write
//! `<dir>/<name>.snapshot.jsonl`, shutdown snapshots every population, and
//! boot restores every `*.snapshot.jsonl` found in the directory.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use population::snapshot::SnapshotDoc;

use crate::pop::{self, Managed};

/// Suffix of every snapshot file the registry reads and writes.
pub const SNAPSHOT_SUFFIX: &str = ".snapshot.jsonl";

/// One population slot, individually lockable.
pub type Slot = Arc<Mutex<Box<dyn Managed>>>;

/// The daemon's shared state: named populations plus the snapshot
/// directory.
pub struct Registry {
    pops: Mutex<HashMap<String, Slot>>,
    snapshot_dir: Option<PathBuf>,
}

fn valid_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("population names must be 1–64 characters".to_string());
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
        return Err(format!("population name {name:?} may only contain letters, digits, '-', '_'"));
    }
    Ok(())
}

impl Registry {
    /// An empty registry. `snapshot_dir` enables the snapshot lifecycle;
    /// without it, `snapshot` requests are refused.
    pub fn new(snapshot_dir: Option<PathBuf>) -> Self {
        Registry { pops: Mutex::new(HashMap::new()), snapshot_dir }
    }

    /// Creates and registers a population.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid names, duplicate names, or
    /// [`pop::create`] failures.
    pub fn create(
        &self,
        name: &str,
        protocol: &str,
        backend: &str,
        n: u64,
        seed: u64,
    ) -> Result<Slot, String> {
        valid_name(name)?;
        let managed = pop::create(protocol, backend, n, seed)?;
        let mut pops = self.pops.lock().unwrap();
        if pops.contains_key(name) {
            return Err(format!("population {name:?} already exists"));
        }
        let slot: Slot = Arc::new(Mutex::new(managed));
        pops.insert(name.to_string(), Arc::clone(&slot));
        Ok(slot)
    }

    /// Looks up a population by name.
    pub fn get(&self, name: &str) -> Option<Slot> {
        self.pops.lock().unwrap().get(name).cloned()
    }

    /// All population names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pops.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Unregisters a population; returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.pops.lock().unwrap().remove(name).is_some()
    }

    /// Serializes one population to `<dir>/<name>.snapshot.jsonl`.
    ///
    /// # Errors
    ///
    /// Returns a message when no snapshot directory is configured, the
    /// population does not exist, or the write fails.
    pub fn snapshot(&self, name: &str) -> Result<PathBuf, String> {
        let dir = self
            .snapshot_dir
            .as_ref()
            .ok_or_else(|| "no snapshot directory configured (--snapshot-dir)".to_string())?;
        let slot = self.get(name).ok_or_else(|| format!("no population {name:?}"))?;
        let doc = slot.lock().unwrap().snapshot_jsonl();
        write_snapshot(dir, name, &doc)
    }

    /// Serializes every population; returns `(name, outcome)` pairs.
    /// Without a snapshot directory this is a no-op returning the empty
    /// list (a daemon without persistence shuts down stateless).
    pub fn snapshot_all(&self) -> Vec<(String, Result<PathBuf, String>)> {
        let Some(dir) = self.snapshot_dir.as_ref() else {
            return Vec::new();
        };
        let mut results = Vec::new();
        for name in self.list() {
            let Some(slot) = self.get(&name) else { continue };
            let doc = slot.lock().unwrap().snapshot_jsonl();
            results.push((name.clone(), write_snapshot(dir, &name, &doc)));
        }
        results
    }

    /// Restores every `*.snapshot.jsonl` in the snapshot directory;
    /// returns `(name, outcome)` pairs. Populations that fail to parse are
    /// reported, not fatal — a corrupt snapshot must not brick the daemon.
    pub fn restore_all(&self) -> Vec<(String, Result<(), String>)> {
        let Some(dir) = self.snapshot_dir.as_ref() else {
            return Vec::new();
        };
        let mut results = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(_) => return results, // directory not created yet
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name().and_then(|f| f.to_str()).is_some_and(|f| f.ends_with(SNAPSHOT_SUFFIX))
            })
            .collect();
        files.sort();
        for path in files {
            let name = path
                .file_name()
                .and_then(|f| f.to_str())
                .and_then(|f| f.strip_suffix(SNAPSHOT_SUFFIX))
                .unwrap_or_default()
                .to_string();
            results.push((name.clone(), self.restore_one(&name, &path)));
        }
        results
    }

    fn restore_one(&self, name: &str, path: &Path) -> Result<(), String> {
        valid_name(name)?;
        let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = SnapshotDoc::from_jsonl(&text).map_err(|e| e.to_string())?;
        let managed = pop::restore(&doc)?;
        let mut pops = self.pops.lock().unwrap();
        if pops.contains_key(name) {
            return Err(format!("population {name:?} already exists"));
        }
        pops.insert(name.to_string(), Arc::new(Mutex::new(managed)));
        Ok(())
    }
}

fn write_snapshot(dir: &Path, name: &str, doc: &str) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}{SNAPSHOT_SUFFIX}"));
    // Write-then-rename so a crash mid-write never leaves a truncated
    // snapshot under the restorable name.
    let tmp = dir.join(format!("{name}{SNAPSHOT_SUFFIX}.tmp"));
    let mut file = fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    file.write_all(doc.as_bytes()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    file.sync_all().map_err(|e| format!("sync {}: {e}", tmp.display()))?;
    drop(file);
    fs::rename(&tmp, &path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = env::temp_dir().join(format!("ssle-serve-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_list_delete_round_trip() {
        let reg = Registry::new(None);
        reg.create("a", "ciw", "agents", 8, 1).unwrap();
        reg.create("b", "oss", "counts", 8, 2).unwrap();
        assert_eq!(reg.list(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.create("a", "ciw", "agents", 8, 1).err().unwrap().contains("already exists"));
        assert!(reg.get("a").is_some());
        assert!(reg.delete("a"));
        assert!(!reg.delete("a"));
        assert_eq!(reg.list(), vec!["b".to_string()]);
    }

    #[test]
    fn names_are_validated() {
        let reg = Registry::new(None);
        assert!(reg.create("", "ciw", "agents", 8, 1).is_err());
        assert!(reg.create("a/b", "ciw", "agents", 8, 1).is_err());
        assert!(reg.create("../evil", "ciw", "agents", 8, 1).is_err());
    }

    #[test]
    fn snapshot_requires_a_directory() {
        let reg = Registry::new(None);
        reg.create("a", "ciw", "agents", 8, 1).unwrap();
        assert!(reg.snapshot("a").unwrap_err().contains("snapshot directory"));
        assert!(reg.snapshot_all().is_empty());
    }

    #[test]
    fn snapshot_all_then_restore_all_round_trips() {
        let dir = temp_dir("roundtrip");
        let reg = Registry::new(Some(dir.clone()));
        reg.create("a", "ciw", "agents", 10, 1).unwrap();
        reg.create("b", "oss", "counts", 12, 2).unwrap();
        reg.get("a").unwrap().lock().unwrap().step(3_000);
        reg.get("b").unwrap().lock().unwrap().step(3_000);
        let snapshots = reg.snapshot_all();
        assert_eq!(snapshots.len(), 2);
        assert!(snapshots.iter().all(|(_, r)| r.is_ok()));

        let fresh = Registry::new(Some(dir.clone()));
        let restored = fresh.restore_all();
        assert_eq!(restored.len(), 2);
        assert!(restored.iter().all(|(_, r)| r.is_ok()), "{restored:?}");
        assert_eq!(fresh.list(), vec!["a".to_string(), "b".to_string()]);
        let a = fresh.get("a").unwrap();
        let status = a.lock().unwrap().status();
        assert_eq!(status.interactions, 3_000);
        assert_eq!(status.protocol, "ciw");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_reports_and_does_not_brick_boot() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("bad{SNAPSHOT_SUFFIX}")), "not json\n").unwrap();
        let reg = Registry::new(Some(dir.clone()));
        reg.create("good", "ciw", "agents", 8, 1).unwrap();
        reg.snapshot("good").unwrap();
        let fresh = Registry::new(Some(dir.clone()));
        let restored = fresh.restore_all();
        assert_eq!(restored.len(), 2);
        let bad = restored.iter().find(|(n, _)| n == "bad").unwrap();
        assert!(bad.1.is_err());
        let good = restored.iter().find(|(n, _)| n == "good").unwrap();
        assert!(good.1.is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
