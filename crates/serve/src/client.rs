//! Blocking clients for the wire protocol: the minimal one-shot helpers
//! plus [`RetryClient`], the hardened client with per-request deadlines,
//! jittered exponential backoff, and idempotent request ids so retried
//! mutations are applied exactly once even through a flaky network.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use population::record::JsonScalar;
use population::runner::rng_from_seed;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::journal::valid_request_id;
use crate::wire::check_response;

/// Sends one request line and reads one response line.
///
/// # Errors
///
/// Returns connection and I/O errors; protocol-level errors come back in
/// the response envelope (see [`request_map`]).
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if response.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    Ok(response.trim_end().to_string())
}

/// [`request`] plus envelope checking: returns the response fields on
/// `ok:true`, the server's error message otherwise.
///
/// # Errors
///
/// Returns transport errors and server-reported errors as strings.
pub fn request_map(addr: &str, line: &str) -> Result<BTreeMap<String, JsonScalar>, String> {
    let response = request(addr, line).map_err(|e| format!("request to {addr}: {e}"))?;
    check_response(&response)
}

/// Holds one connection open and sends many request lines in order,
/// collecting one response line per request — the interleaved-session
/// shape the e2e tests and benches drive.
///
/// # Errors
///
/// Returns connection and I/O errors.
pub fn session(addr: &str, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-session",
            ));
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}

/// Retry/deadline policy for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Overall wall-clock budget for one logical request, retries
    /// included.
    pub deadline: Duration,
    /// First backoff; doubles per retry (before jitter).
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Attempt cap (1 = no retries).
    pub max_attempts: u32,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            deadline: Duration::from_secs(10),
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            max_attempts: 8,
            connect_timeout: Duration::from_secs(2),
        }
    }
}

/// Why a [`RetryClient`] request ultimately failed. The three variants
/// are deliberately distinguishable so callers (the CLI in particular)
/// can map them to distinct process exit codes: saturation, outage, and
/// semantic refusal call for different operator responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every failing attempt inside the budget was refused with the
    /// server's `busy` backpressure envelope — the service is up but
    /// saturated; backing off longer may succeed.
    Busy,
    /// The retry/deadline budget ran out on transport failures (connect,
    /// read, or write) without a definitive server answer — the service
    /// looks unreachable.
    Exhausted(String),
    /// The server answered `ok:false` with a semantic error; never
    /// retried (except `busy`, which exhausts into [`ClientError::Busy`]).
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy => {
                write!(f, "server busy: retry budget exhausted on backpressure")
            }
            ClientError::Exhausted(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one attempt produced, before retry classification.
enum Attempt {
    /// Transport-level ok, envelope `ok:true`.
    Ok(BTreeMap<String, JsonScalar>),
    /// Server answered `ok:false` — semantic, never retried except
    /// `busy` (pure backpressure, safe to retry by definition).
    ServerError(String),
    /// Connect/read/write failed or the server closed mid-request —
    /// retried, because with a request id a replay is exactly-once.
    Transport(String),
}

/// The hardened client: one fresh connection per attempt, a per-request
/// deadline across all attempts, jittered exponential backoff between
/// them, and generated request ids on mutating commands so a retry whose
/// original was applied (but whose response was lost to a reset) is
/// absorbed by the server's dedup window instead of applied twice.
///
/// Backoff jitter is drawn from a seeded [`SmallRng`], so a given
/// `(seed, schedule of failures)` retries identically — the chaos tests
/// are reproducible end to end.
pub struct RetryClient {
    addr: String,
    config: RetryConfig,
    rng: SmallRng,
    id_prefix: String,
    next_id: u64,
    retries: u64,
}

impl RetryClient {
    /// A client for `addr` with default [`RetryConfig`]; `seed` drives
    /// both backoff jitter and the request-id prefix.
    pub fn new(addr: &str, seed: u64) -> RetryClient {
        RetryClient::with_config(addr, seed, RetryConfig::default())
    }

    /// A client with an explicit retry policy.
    pub fn with_config(addr: &str, seed: u64, config: RetryConfig) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            config,
            rng: rng_from_seed(seed),
            id_prefix: format!("c{seed:x}"),
            next_id: 0,
            retries: 0,
        }
    }

    /// Total retried attempts so far (0 when every request succeeded
    /// first try).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The next generated request id (visible for tests/logging).
    pub fn peek_id(&self) -> String {
        format!("{}-{}", self.id_prefix, self.next_id)
    }

    /// Sends a *read* request with retries; the caller guarantees it is
    /// side-effect free (no id is attached).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for a semantic refusal, [`ClientError::Busy`]
    /// or [`ClientError::Exhausted`] once the deadline/attempt budget runs
    /// out on backpressure or transport failures respectively.
    pub fn request_map(&mut self, line: &str) -> Result<BTreeMap<String, JsonScalar>, ClientError> {
        self.drive(line.to_string())
    }

    /// Sends a *mutating* request: injects a generated `id` field, then
    /// retries under the same policy — the id makes retries exactly-once.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::request_map`]; also rejects lines that already
    /// carry an `id` or are not a flat JSON object.
    pub fn mutate_map(&mut self, line: &str) -> Result<BTreeMap<String, JsonScalar>, ClientError> {
        let id = self.peek_id();
        debug_assert!(valid_request_id(&id));
        let line = inject_id(line, &id).map_err(ClientError::Server)?;
        self.next_id += 1;
        self.drive(line)
    }

    fn drive(&mut self, line: String) -> Result<BTreeMap<String, JsonScalar>, ClientError> {
        let start = Instant::now();
        // When attempts mixed busy refusals and transport failures, the
        // last one decides the variant — it reflects the freshest view of
        // the server.
        let mut exhausted = ClientError::Exhausted("no attempt made".to_string());
        for attempt in 0..self.config.max_attempts {
            let remaining = match self.config.deadline.checked_sub(start.elapsed()) {
                Some(r) if !r.is_zero() => r,
                _ => break,
            };
            if attempt > 0 {
                self.retries += 1;
            }
            match self.attempt(&line, remaining) {
                Attempt::Ok(map) => return Ok(map),
                Attempt::ServerError(e) if e == "busy" => exhausted = ClientError::Busy,
                Attempt::ServerError(e) => return Err(ClientError::Server(e)),
                Attempt::Transport(e) => {
                    exhausted = ClientError::Exhausted(format!(
                        "request to {} failed after retries: {e}",
                        self.addr
                    ));
                }
            }
            // Jittered exponential backoff, clipped to the remaining
            // deadline so the last retry still gets socket time.
            let exp = self
                .config
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.config.max_backoff);
            let jitter: f64 = self.rng.gen_range(0.5..1.0);
            let pause = exp.mul_f64(jitter).min(remaining);
            std::thread::sleep(pause);
        }
        Err(exhausted)
    }

    fn attempt(&self, line: &str, remaining: Duration) -> Attempt {
        let transport = |e: std::io::Error| Attempt::Transport(e.to_string());
        let addr = match self.addr.to_socket_addrs().map(|mut a| a.next()) {
            Ok(Some(addr)) => addr,
            Ok(None) => return Attempt::Transport(format!("{} resolves to nothing", self.addr)),
            Err(e) => return transport(e),
        };
        let connect_timeout = self.config.connect_timeout.min(remaining);
        let stream = match TcpStream::connect_timeout(&addr, connect_timeout) {
            Ok(s) => s,
            Err(e) => return transport(e),
        };
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(remaining)).is_err()
            || stream.set_write_timeout(Some(remaining)).is_err()
        {
            return Attempt::Transport("socket timeout setup failed".to_string());
        }
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(e) => return transport(e),
        };
        if let Err(e) = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
        {
            return transport(e);
        }
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => Attempt::Transport("server closed the connection".to_string()),
            Ok(_) => match check_response(response.trim_end()) {
                Ok(map) => Attempt::Ok(map),
                Err(e) => Attempt::ServerError(e),
            },
            Err(e) => transport(e),
        }
    }
}

/// Splices `"id":"..."` into a flat JSON object line.
fn inject_id(line: &str, id: &str) -> Result<String, String> {
    let trimmed = line.trim_end();
    if trimmed.contains("\"id\"") {
        return Err("request line already carries an \"id\"".to_string());
    }
    let body =
        trimmed.strip_suffix('}').ok_or_else(|| "request line is not a JSON object".to_string())?;
    Ok(format!("{body},\"id\":\"{id}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_id_splices_before_the_brace() {
        let line = r#"{"cmd":"step","name":"a","interactions":10}"#;
        assert_eq!(
            inject_id(line, "c1-0").unwrap(),
            r#"{"cmd":"step","name":"a","interactions":10,"id":"c1-0"}"#
        );
        assert!(inject_id(r#"{"cmd":"step","id":"x"}"#, "y").is_err());
        assert!(inject_id("not json", "y").is_err());
    }

    #[test]
    fn retry_client_generates_monotonic_valid_ids() {
        let mut c = RetryClient::new("127.0.0.1:1", 42);
        let first = c.peek_id();
        assert!(valid_request_id(&first));
        // Even a failed mutate consumes the id it attached: the server
        // may have applied it before the response was lost.
        let _ = c.mutate_map(r#"{"cmd":"ping"}"#);
        assert_ne!(c.peek_id(), first);
    }

    #[test]
    fn deadline_bounds_the_retry_loop() {
        let mut c = RetryClient::with_config(
            "127.0.0.1:1", // reserved port: connection refused instantly
            7,
            RetryConfig {
                deadline: Duration::from_millis(200),
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(40),
                max_attempts: 100,
                connect_timeout: Duration::from_millis(50),
            },
        );
        let start = Instant::now();
        let err = c.request_map(r#"{"cmd":"ping"}"#).unwrap_err();
        match &err {
            ClientError::Exhausted(msg) => {
                assert!(msg.contains("failed after retries"), "{msg}");
            }
            other => panic!("expected transport exhaustion, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(3), "deadline ignored");
        assert!(c.retries() > 0);
    }

    #[test]
    fn client_error_variants_render_distinctly() {
        assert!(ClientError::Busy.to_string().contains("busy"));
        assert_eq!(ClientError::Server("no population".to_string()).to_string(), "no population");
        let e = ClientError::Exhausted("request to x failed after retries: refused".to_string());
        assert!(e.to_string().contains("failed after retries"));
    }
}
