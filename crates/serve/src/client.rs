//! Minimal blocking client for the wire protocol.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use population::record::JsonScalar;

use crate::wire::check_response;

/// Sends one request line and reads one response line.
///
/// # Errors
///
/// Returns connection and I/O errors; protocol-level errors come back in
/// the response envelope (see [`request_map`]).
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if response.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    Ok(response.trim_end().to_string())
}

/// [`request`] plus envelope checking: returns the response fields on
/// `ok:true`, the server's error message otherwise.
///
/// # Errors
///
/// Returns transport errors and server-reported errors as strings.
pub fn request_map(addr: &str, line: &str) -> Result<BTreeMap<String, JsonScalar>, String> {
    let response = request(addr, line).map_err(|e| format!("request to {addr}: {e}"))?;
    check_response(&response)
}

/// Holds one connection open and sends many request lines in order,
/// collecting one response line per request — the interleaved-session
/// shape the e2e tests and benches drive.
///
/// # Errors
///
/// Returns connection and I/O errors.
pub fn session(addr: &str, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-session",
            ));
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}
