//! Fault-injection end-to-end tests: the daemon behind the seeded chaos
//! proxy. Slowloris must not pin a worker, oversized request lines must
//! be refused with an error envelope, and the hardened [`RetryClient`]
//! must stay exactly-once through connection resets.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::{Duration, Instant};

use population::record::JsonScalar;
use ssle_serve::client::{request_map, RetryConfig};
use ssle_serve::{ChaosConfig, ChaosProxy, RetryClient, ServeConfig, Server};

fn spawn_server(config: ServeConfig) -> (String, thread::JoinHandle<ssle_serve::ServeSummary>) {
    let server = Server::start(&config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn spawn_proxy(config: ChaosConfig) -> (String, ChaosHandle) {
    let proxy = ChaosProxy::start(config).expect("bind proxy");
    let addr = proxy.local_addr().expect("proxy addr").to_string();
    let stats = proxy.stats();
    let stop = proxy.stop_handle();
    let handle = proxy.spawn();
    (addr, ChaosHandle { stats, stop, handle })
}

struct ChaosHandle {
    stats: std::sync::Arc<ssle_serve::ChaosStats>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: thread::JoinHandle<()>,
}

impl ChaosHandle {
    fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

fn shutdown_server(addr: &str, handle: thread::JoinHandle<ssle_serve::ServeSummary>) {
    let _ = request_map(addr, r#"{"cmd":"shutdown"}"#);
    let _ = handle.join();
}

fn num(map: &std::collections::BTreeMap<String, JsonScalar>, key: &str) -> f64 {
    match map.get(key) {
        Some(JsonScalar::Num(x)) => *x,
        other => panic!("expected number {key}, got {other:?}"),
    }
}

/// A slowloris connection through the chaos proxy must be cut by the
/// server's per-line deadline instead of pinning the (only) worker.
#[test]
fn slowloris_through_the_proxy_cannot_pin_a_worker() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1, // a pinned worker would stall *everything*
        line_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let (proxy_addr, proxy) = spawn_proxy(ChaosConfig {
        upstream: addr.clone(),
        seed: 7,
        slowloris: true,
        slowloris_ms: 100, // ~15 s for a whole request line
        ..ChaosConfig::default()
    });

    // The attacker dribbles a request one byte per 100 ms; the server's
    // 300 ms line deadline must free the worker long before the line
    // completes.
    let attacker_addr = proxy_addr.clone();
    let attacker = thread::spawn(move || {
        let stream = TcpStream::connect(&attacker_addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut writer = stream.try_clone()?;
        writer.write_all(br#"{"cmd":"list","padding":"0123456789"}"#)?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        Ok::<String, std::io::Error>(line)
    });

    // Give the slowloris stream time to start occupying the worker, then
    // prove the worker is free again: a direct request must answer fast.
    thread::sleep(Duration::from_millis(700));
    let start = Instant::now();
    let pong = request_map(&addr, r#"{"cmd":"ping"}"#).unwrap();
    assert!(matches!(pong.get("pong"), Some(JsonScalar::Bool(true))));
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "worker stayed pinned for {:?}",
        start.elapsed()
    );
    // The slowloris client got a deadline error or a cut connection
    // (reset mid-dribble is also a win) — anything but a successful
    // response.
    if let Ok(line) = attacker.join().unwrap() {
        assert!(
            line.is_empty() || line.contains("deadline"),
            "slowloris request succeeded: {line:?}"
        );
    }

    proxy.shutdown();
    shutdown_server(&addr, server);
}

/// A request line longer than `max_line` is refused with an error
/// envelope, not buffered without bound.
#[test]
fn oversized_request_line_is_refused() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_line: 300,
        ..ServeConfig::default()
    });
    let huge = format!(r#"{{"cmd":"ping","junk":"{}"}}"#, "x".repeat(4096));
    let err = request_map(&addr, &huge).unwrap_err();
    assert!(err.contains("exceeds 300 bytes"), "unexpected refusal: {err}");
    // The connection was closed after the refusal; a fresh one works.
    let pong = request_map(&addr, r#"{"cmd":"ping"}"#).unwrap();
    assert!(matches!(pong.get("pong"), Some(JsonScalar::Bool(true))));
    shutdown_server(&addr, server);
}

/// The hardened client through a reset-happy proxy: every mutation is
/// applied exactly once (interaction count proves it), even though the
/// proxy tears down connections and the client retries.
#[test]
fn retry_client_is_exactly_once_through_resets() {
    let (addr, server) =
        spawn_server(ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() });
    let (proxy_addr, proxy) = spawn_proxy(ChaosConfig {
        upstream: addr.clone(),
        seed: 1234,
        reset_prob: 0.25,
        ..ChaosConfig::default()
    });

    let mut client = RetryClient::with_config(
        &proxy_addr,
        99,
        RetryConfig {
            deadline: Duration::from_secs(20),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            max_attempts: 20,
            connect_timeout: Duration::from_secs(2),
        },
    );
    client
        .mutate_map(
            r#"{"cmd":"create","name":"cr","protocol":"ciw","backend":"counts","n":32,"seed":5}"#,
        )
        .unwrap();
    let steps = 12u64;
    let per_step = 500u64;
    for _ in 0..steps {
        let out = client
            .mutate_map(&format!(r#"{{"cmd":"step","name":"cr","interactions":{per_step}}}"#))
            .unwrap();
        // Replayed or fresh, the response carries the post-step status.
        assert!(num(&out, "interactions") > 0.0);
    }

    // Ground truth straight from the daemon, no proxy in the way.
    let status = request_map(&addr, r#"{"cmd":"status","name":"cr"}"#).unwrap();
    assert_eq!(
        num(&status, "interactions") as u64,
        steps * per_step,
        "mutations were lost or double-applied through chaos"
    );
    // And the chaos was real: connections were reset, retries happened.
    assert!(
        proxy.stats.resets.load(Ordering::SeqCst) > 0,
        "proxy never fired its reset fault — test proves nothing"
    );
    assert!(client.retries() > 0, "client never retried — test proves nothing");

    proxy.shutdown();
    shutdown_server(&addr, server);
}
