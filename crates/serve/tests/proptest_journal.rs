//! Crash-recovery properties of the write-ahead journal.
//!
//! The central claim of the durability layer: a crash at *any* byte
//! offset of the journal — including a torn final line — recovers
//! bit-identically to a never-crashed run over the commands that
//! survived, on both backends. Plus replay idempotence: recovering the
//! same on-disk state twice is indistinguishable from recovering it
//! once.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use ssle_serve::journal::{FsyncPolicy, JournalDoc, Op, JOURNAL_SUFFIX};
use ssle_serve::registry::{Durability, Registry};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssle-proptest-journal-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One generated mutating command.
#[derive(Debug, Clone)]
enum GenOp {
    Step(u64),
    Join(u64),
    Leave(u64),
    Corrupt(u64),
    Churn,
}

impl GenOp {
    fn to_op(&self) -> Op {
        match self {
            GenOp::Step(k) => Op::Step(*k),
            GenOp::Join(k) => Op::Join(*k),
            GenOp::Leave(k) => Op::Leave(*k),
            GenOp::Corrupt(k) => Op::Corrupt(*k),
            GenOp::Churn => Op::Churn("0.05".to_string(), 9),
        }
    }
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    // The vendored proptest has no weighted alternatives; repeating the
    // `Step` arm biases toward it the same way.
    prop_oneof![
        (1u64..400).prop_map(GenOp::Step),
        (1u64..400).prop_map(GenOp::Step),
        (1u64..400).prop_map(GenOp::Step),
        (1u64..4).prop_map(GenOp::Join),
        (1u64..4).prop_map(GenOp::Leave),
        (1u64..4).prop_map(GenOp::Corrupt),
        Just(GenOp::Churn),
    ]
}

fn backend() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("agents"), Just("counts")]
}

fn protocol() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("ciw"), Just("oss")]
}

/// Serialized state of a population after `ops[..k]` on a registry that
/// never touched disk — the never-crashed reference.
fn reference_state(protocol: &str, backend: &str, n: u64, seed: u64, ops: &[GenOp]) -> String {
    let reg = Registry::new(None);
    reg.create("p", protocol, backend, n, seed, None).unwrap();
    for op in ops {
        reg.apply("p", op.to_op(), None).unwrap();
    }
    reg.with_cell("p", |cell| cell.pop.snapshot_jsonl()).unwrap()
}

proptest! {
    /// Crash at any byte offset: truncate the journal anywhere, recover,
    /// and the state must be bit-identical to a never-crashed replay of
    /// exactly the entries that survived the cut.
    #[test]
    fn crash_at_any_offset_recovers_bit_identical(
        protocol in protocol(),
        backend in backend(),
        n in 8u64..48,
        seed in 1u64..1_000,
        ops in prop::collection::vec(gen_op(), 1..10),
        cut in 0.0f64..=1.0,
    ) {
        // Write the journal with fsync:always and no auto-snapshot, so
        // the file is the complete command history.
        let dir = temp_dir("cut");
        let reg = Registry::with_durability(
            Some(dir.clone()),
            Durability { fsync: FsyncPolicy::Always, autosnap_every: u64::MAX },
        );
        reg.create("p", protocol, backend, n, seed, None).unwrap();
        for op in &ops {
            reg.apply("p", op.to_op(), None).unwrap();
        }
        drop(reg);

        // Simulate the crash: keep only the first `offset` bytes, and no
        // snapshot (none was ever written).
        let journal_path = dir.join(format!("p{JOURNAL_SUFFIX}"));
        let full = fs::read(&journal_path).unwrap();
        let offset = (cut * full.len() as f64).round() as usize;
        let crash_dir = temp_dir("crashed");
        fs::create_dir_all(&crash_dir).unwrap();
        fs::write(crash_dir.join(format!("p{JOURNAL_SUFFIX}")), &full[..offset]).unwrap();
        let _ = fs::remove_dir_all(&dir);

        // What should survive the cut, per the parser itself.
        let truncated_text = String::from_utf8_lossy(&full[..offset]).to_string();
        let parsed = JournalDoc::parse(&truncated_text);

        let recovered = Registry::new(Some(crash_dir.clone()));
        let outcomes = recovered.restore_all();
        prop_assert_eq!(outcomes.len(), 1);
        match parsed {
            Err(_) => {
                // The cut tore the header: recovery must refuse this
                // population (reported, not a panic or a wrong state).
                prop_assert!(outcomes[0].1.is_err(), "torn header accepted: {:?}", outcomes[0]);
            }
            Ok(doc) => {
                prop_assert!(outcomes[0].1.is_ok(), "recovery failed: {:?}", outcomes[0]);
                let survivors = doc.entries.len();
                let expected = reference_state(protocol, backend, n, seed, &ops[..survivors]);
                let got = recovered.with_cell("p", |cell| cell.pop.snapshot_jsonl()).unwrap();
                prop_assert_eq!(
                    expected, got,
                    "crash at offset {}/{} ({} of {} ops survive) diverged",
                    offset, full.len(), survivors, ops.len()
                );
            }
        }
        let _ = fs::remove_dir_all(&crash_dir);
    }

    /// Replay idempotence: recovering the same on-disk state twice (the
    /// second pass sees the normalized snapshot + rotated journal the
    /// first pass wrote, with every entry already covered) equals
    /// recovering it once. A prefix replayed twice is a prefix replayed
    /// once.
    #[test]
    fn recovery_is_idempotent(
        protocol in protocol(),
        backend in backend(),
        n in 8u64..48,
        seed in 1u64..1_000,
        ops in prop::collection::vec(gen_op(), 1..10),
        autosnap in prop_oneof![Just(2u64), Just(3), Just(u64::MAX)],
    ) {
        // A churn-plan binding restored across a snapshot boundary is
        // rebound but its schedule stream restarts (the snapshot format
        // does not carry driver RNG state), so bit-identity *through a
        // mid-run snapshot* is only claimed churn-plan-free; join/leave/
        // corrupt replay exactly because the registry pins the event
        // stream to (seed, seq) before every injection. The pure-journal
        // path (crash_at_any_offset...) covers churn bit-identically.
        let mut ops = ops;
        if autosnap != u64::MAX {
            ops.retain(|op| !matches!(op, GenOp::Churn));
            if ops.is_empty() {
                ops.push(GenOp::Step(50));
            }
        }
        let dir = temp_dir("idem");
        let reg = Registry::with_durability(
            Some(dir.clone()),
            Durability { fsync: FsyncPolicy::Always, autosnap_every: autosnap },
        );
        reg.create("p", protocol, backend, n, seed, None).unwrap();
        for op in &ops {
            reg.apply("p", op.to_op(), None).unwrap();
        }
        drop(reg); // crash without snapshot-all

        let once = Registry::new(Some(dir.clone()));
        prop_assert!(once.restore_all().iter().all(|(_, r)| r.is_ok()));
        let state_once = once.with_cell("p", |cell| cell.pop.snapshot_jsonl()).unwrap();
        let seq_once = once.with_cell("p", |cell| cell.seq).unwrap();
        drop(once);

        let twice = Registry::new(Some(dir.clone()));
        prop_assert!(twice.restore_all().iter().all(|(_, r)| r.is_ok()));
        let state_twice = twice.with_cell("p", |cell| cell.pop.snapshot_jsonl()).unwrap();
        let seq_twice = twice.with_cell("p", |cell| cell.seq).unwrap();

        prop_assert_eq!(seq_once, seq_twice, "sequence diverged on second recovery");
        prop_assert_eq!(state_once, state_twice, "state diverged on second recovery");
        // And both equal the never-crashed reference: every op was
        // fsynced, so nothing may be lost regardless of autosnap timing.
        let reference = reference_state(protocol, backend, n, seed, &ops);
        prop_assert_eq!(state_twice, reference, "recovered state diverged from reference");
        let _ = fs::remove_dir_all(&dir);
    }

    /// `fsync:always` bounds the lost-event window at zero: the synced
    /// length always covers every acknowledged command, so a crash that
    /// preserves synced bytes loses nothing.
    #[test]
    fn synced_length_covers_every_acknowledged_command(
        backend in backend(),
        ops in prop::collection::vec(gen_op(), 1..8),
    ) {
        let dir = temp_dir("synced");
        let reg = Registry::with_durability(
            Some(dir.clone()),
            Durability { fsync: FsyncPolicy::Always, autosnap_every: u64::MAX },
        );
        reg.create("p", "ciw", backend, 16, 3, None).unwrap();
        for op in &ops {
            reg.apply("p", op.to_op(), None).unwrap();
        }
        let (synced, len, seq) = reg
            .with_cell("p", |cell| {
                let wal = cell.wal.as_ref().unwrap();
                (wal.synced_len(), wal.len(), cell.seq)
            })
            .unwrap();
        prop_assert_eq!(synced, len, "fsync:always left unsynced bytes");
        prop_assert_eq!(seq, ops.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }
}
