//! End-to-end observability tests: K parallel clients drive a known
//! command mix through the chaos proxy, then the `stats` command must
//! reconcile *exactly* with the client-side counts — per-command request
//! counters, error counters, and histogram mass all agree with what the
//! clients actually sent. A second test injects a worker-poisoning panic
//! and asserts the flight recorder dumps its trace ring to disk.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::{Duration, Instant};

use population::record::{ServerStatsRecord, TraceRecord};
use ssle_serve::client::{request, request_map};
use ssle_serve::wire::embedded_rows;
use ssle_serve::{ChaosConfig, ChaosProxy, RetryClient, ServeConfig, Server};

fn spawn_server(config: ServeConfig) -> (String, thread::JoinHandle<ssle_serve::ServeSummary>) {
    let server = Server::start(&config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown_server(addr: &str, handle: thread::JoinHandle<ssle_serve::ServeSummary>) {
    let _ = request_map(addr, r#"{"cmd":"shutdown"}"#);
    let _ = handle.join();
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssle-obs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Fetches `stats` raw and parses the embedded per-command rows.
fn fetch_stats(addr: &str) -> Vec<ServerStatsRecord> {
    let line = request(addr, r#"{"cmd":"stats"}"#).expect("stats request");
    assert!(line.contains("\"ok\":true"), "{line}");
    embedded_rows(&line, "commands")
        .expect("stats response embeds a commands array")
        .iter()
        .map(|row| ServerStatsRecord::from_json(row).expect("well-formed server_stats row"))
        .collect()
}

/// The tentpole reconciliation test: every request the clients sent is
/// accounted for, by command, and each command's latency histogram holds
/// exactly as much mass as requests recorded.
#[test]
fn stats_reconcile_exactly_with_client_counts_through_the_proxy() {
    if !ssle_serve::obs::COMPILED {
        return; // obs-off build: there is nothing to reconcile
    }
    let (addr, server) =
        spawn_server(ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() });
    // The proxy runs fault-free here: reconciliation must be *exact*, and
    // an injected reset can drop a request after the server counted it
    // (the retry then counts again). Fault-injected runs are covered by
    // chaos_e2e; this test proves the accounting, through the same path.
    let proxy = ChaosProxy::start(ChaosConfig {
        upstream: addr.clone(),
        seed: 11,
        ..ChaosConfig::default()
    })
    .expect("bind proxy");
    let proxy_addr = proxy.local_addr().expect("proxy addr").to_string();
    let proxy_stop = proxy.stop_handle();
    let proxy_handle = proxy.spawn();

    const K: u64 = 4;
    const STEPS: u64 = 10;
    const READS: u64 = 5;
    let mut workers = Vec::new();
    for k in 0..K {
        let proxy_addr = proxy_addr.clone();
        workers.push(thread::spawn(move || {
            let mut client = RetryClient::new(&proxy_addr, 1000 + k);
            client
                .mutate_map(&format!(
                    r#"{{"cmd":"create","name":"p{k}","protocol":"ciw","backend":"counts","n":16,"seed":{k}}}"#
                ))
                .expect("create");
            for _ in 0..STEPS {
                client
                    .mutate_map(&format!(
                        r#"{{"cmd":"step","name":"p{k}","interactions":200}}"#
                    ))
                    .expect("step");
            }
            for _ in 0..READS {
                client
                    .request_map(&format!(r#"{{"cmd":"leader","name":"p{k}"}}"#))
                    .expect("leader");
                client
                    .request_map(&format!(r#"{{"cmd":"status","name":"p{k}"}}"#))
                    .expect("status");
            }
            client.retries()
        }));
    }
    let retries: u64 = workers.into_iter().map(|w| w.join().expect("client thread")).sum();
    assert_eq!(retries, 0, "fault-free proxy forced retries; counts cannot reconcile");

    // A trace is recorded just after its response is written, so the last
    // responses may still be in flight when the clients return — poll
    // until the totals settle.
    let expected: &[(&str, u64)] =
        &[("create", K), ("step", K * STEPS), ("leader", K * READS), ("status", K * READS)];
    let deadline = Instant::now() + Duration::from_secs(10);
    let rows = loop {
        let rows = fetch_stats(&addr);
        let count = |cmd: &str| rows.iter().find(|r| r.cmd == cmd).map_or(0, |r| r.count);
        if expected.iter().all(|&(cmd, want)| count(cmd) >= want) || Instant::now() > deadline {
            break rows;
        }
        thread::sleep(Duration::from_millis(20));
    };

    for &(cmd, want) in expected {
        let row =
            rows.iter().find(|r| r.cmd == cmd).unwrap_or_else(|| panic!("no stats row for {cmd}"));
        assert_eq!(row.count, want, "{cmd} count diverged from the clients");
        assert_eq!(row.errors, 0, "{cmd} reported errors on a clean run");
        // Histogram mass equals requests served for the command.
        let decoded = analysis::decode_buckets(&row.hist).expect("decodable histogram");
        let mass: u64 = decoded.iter().map(|(_, c)| c).sum();
        assert_eq!(mass, want, "{cmd} histogram mass diverged from its count");
        assert!(row.p99_us >= row.p50_us, "{cmd} quantiles out of order");
    }
    // The step span attribution must see real engine work.
    let step = rows.iter().find(|r| r.cmd == "step").expect("step row");
    assert!(step.engine_us > 0.0, "step recorded no engine time: {step:?}");

    proxy_stop.store(true, Ordering::SeqCst);
    let _ = proxy_handle.join();
    shutdown_server(&addr, server);
}

/// A worker-poisoning panic must dump the flight recorder: the traces
/// that led up to the crash land in a `flight-quarantine-*.jsonl` file in
/// the state directory, each line a schema-v9 trace record.
#[test]
fn poisoned_population_dumps_the_flight_recorder() {
    if !ssle_serve::obs::COMPILED {
        return; // obs-off build: no flight recorder to dump
    }
    let dir = temp_dir("flight");
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let registry = server.registry();
    let handle = thread::spawn(move || server.run());

    request_map(
        &addr,
        r#"{"cmd":"create","name":"poison","protocol":"ciw","backend":"counts","n":16,"seed":3}"#,
    )
    .expect("create");
    // A few served requests so the flight recorder has traces to dump.
    for _ in 0..4 {
        request_map(&addr, r#"{"cmd":"status","name":"poison"}"#).expect("status");
    }

    // Inject the fault: panic while holding the population's cell lock,
    // exactly what a handler bug inside the engine would do.
    let poisoner = {
        let registry = std::sync::Arc::clone(&registry);
        thread::spawn(move || {
            let _ = registry.with_cell("poison", |_| panic!("injected handler bug"));
        })
    };
    assert!(poisoner.join().is_err(), "the injected panic must unwind");

    // The next request over the wire trips the poison, quarantines the
    // population, and dumps the flight recorder.
    let _ = request_map(&addr, r#"{"cmd":"status","name":"poison"}"#);

    let deadline = Instant::now() + Duration::from_secs(10);
    let dump = loop {
        let found = std::fs::read_dir(&dir)
            .expect("read state dir")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flight-quarantine-") && n.ends_with(".jsonl"))
            });
        match found {
            Some(path) => break path,
            None if Instant::now() > deadline => panic!("no flight dump appeared in {dir:?}"),
            None => thread::sleep(Duration::from_millis(20)),
        }
    };
    let text = std::fs::read_to_string(&dump).expect("read dump");
    let traces: Vec<TraceRecord> = text
        .lines()
        .map(|line| TraceRecord::from_json(line).expect("well-formed trace record"))
        .collect();
    assert!(!traces.is_empty(), "flight dump is empty");
    assert!(
        traces.iter().any(|t| t.cmd == "status" && t.pop == "poison"),
        "dumped traces never mention the poisoned population: {traces:?}"
    );

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
