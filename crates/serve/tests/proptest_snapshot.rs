//! Property tests for the snapshot lifecycle the daemon depends on.
//!
//! Two families:
//!
//! * **Bit-identity** — for every snapshottable protocol (`ciw`, `oss`,
//!   `loose`) on both backends, an execution that is snapshotted and
//!   restored mid-run continues bit-identically to the uninterrupted run:
//!   same states, same interaction count, same RNG position.
//! * **Robustness** — truncated and corrupted snapshot files produce clean
//!   errors, never panics, and never a silently wrong population.

use population::runner::rng_from_seed;
use population::snapshot::{
    restore_agents, restore_counts, snapshot_agents, snapshot_counts, SnapshotDoc, SnapshotError,
    SnapshotProtocol,
};
use population::{BatchSimulation, Simulation};
use proptest::prelude::*;
use rand::Rng;
use ssle::adversary;
use ssle::loose::{LooseState, LooselyStabilizingLe};
use ssle::{CaiIzumiWada, OptimalSilentSsr};

fn roundtrip_agents<P>(
    protocol: impl Fn() -> P,
    initial: Vec<P::State>,
    seed: u64,
    pre: u64,
    post: u64,
) where
    P: SnapshotProtocol,
    P::State: Clone + PartialEq + std::fmt::Debug,
{
    let mut sim = Simulation::new(protocol(), initial, seed);
    sim.run(pre);
    let doc = snapshot_agents(&sim);
    // The document survives its own wire format.
    let doc = SnapshotDoc::from_jsonl(&doc.to_jsonl()).expect("reparse snapshot");
    let mut restored = restore_agents(protocol(), &doc).expect("restore agents");
    sim.run(post);
    restored.run(post);
    assert_eq!(sim.states(), restored.states());
    assert_eq!(sim.interactions(), restored.interactions());
    assert_eq!(sim.rng_state(), restored.rng_state());
}

fn roundtrip_counts<P>(
    protocol: impl Fn() -> P,
    initial: Vec<P::State>,
    seed: u64,
    pre: u64,
    post: u64,
) where
    P: SnapshotProtocol,
    P::State: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut sim = BatchSimulation::new(protocol(), initial, seed);
    sim.run(pre);
    let doc = snapshot_counts(&sim);
    let doc = SnapshotDoc::from_jsonl(&doc.to_jsonl()).expect("reparse snapshot");
    let mut restored = restore_counts(protocol(), &doc).expect("restore counts");
    sim.run(post);
    restored.run(post);
    assert_eq!(sim.counts().to_states(), restored.counts().to_states());
    assert_eq!(sim.interactions(), restored.interactions());
    assert_eq!(sim.rng_state(), restored.rng_state());
}

fn loose_initial(t_max: u32, n: usize, seed: u64) -> Vec<LooseState> {
    let mut rng = rng_from_seed(seed ^ 1);
    (0..n)
        .map(|_| LooseState { leader: rng.gen_range(0..2) == 1, timer: rng.gen_range(0..=t_max) })
        .collect()
}

proptest! {
    #[test]
    fn ciw_roundtrips_on_both_backends(
        seed in 0u64..1_000,
        n in 4usize..24,
        pre in 0u64..4_000,
        post in 0u64..4_000,
    ) {
        let initial =
            adversary::random_ciw_configuration(&CaiIzumiWada::new(n), &mut rng_from_seed(seed ^ 1));
        roundtrip_agents(|| CaiIzumiWada::new(n), initial.clone(), seed, pre, post);
        roundtrip_counts(|| CaiIzumiWada::new(n), initial, seed, pre, post);
    }

    #[test]
    fn oss_roundtrips_on_both_backends(
        seed in 0u64..1_000,
        n in 4usize..24,
        pre in 0u64..4_000,
        post in 0u64..4_000,
    ) {
        let initial = adversary::random_oss_configuration(
            &OptimalSilentSsr::new(n),
            &mut rng_from_seed(seed ^ 1),
        );
        roundtrip_agents(|| OptimalSilentSsr::new(n), initial.clone(), seed, pre, post);
        roundtrip_counts(|| OptimalSilentSsr::new(n), initial, seed, pre, post);
    }

    #[test]
    fn loose_roundtrips_on_both_backends(
        seed in 0u64..1_000,
        n in 4usize..24,
        t_max in 8u32..64,
        pre in 0u64..4_000,
        post in 0u64..4_000,
    ) {
        let initial = loose_initial(t_max, n, seed);
        roundtrip_agents(|| LooselyStabilizingLe::new(t_max), initial.clone(), seed, pre, post);
        roundtrip_counts(|| LooselyStabilizingLe::new(t_max), initial, seed, pre, post);
    }

    #[test]
    fn truncated_snapshots_error_cleanly(
        seed in 0u64..1_000,
        n in 4usize..16,
        pre in 0u64..2_000,
        cut in 0usize..1_000,
    ) {
        let initial =
            adversary::random_oss_configuration(&OptimalSilentSsr::new(n), &mut rng_from_seed(seed ^ 1));
        let mut sim = Simulation::new(OptimalSilentSsr::new(n), initial, seed);
        sim.run(pre);
        let text = snapshot_agents(&sim).to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        // Every proper line-prefix of a snapshot is truncated: the footer
        // (and possibly runs) are missing, so parsing must fail cleanly.
        let keep = cut % lines.len();
        let truncated = lines[..keep].join("\n");
        match SnapshotDoc::from_jsonl(&truncated) {
            Err(SnapshotError::Truncated) | Err(SnapshotError::Corrupt { .. }) => {}
            Ok(_) => prop_assert!(false, "truncated snapshot parsed successfully"),
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    #[test]
    fn corrupted_snapshot_lines_error_cleanly(
        seed in 0u64..1_000,
        n in 4usize..16,
        pre in 0u64..2_000,
        victim_pick in 0usize..1_000,
        garbage_pick in 0usize..6,
    ) {
        const GARBAGE: [&str; 6] = [
            "not json at all",
            "{\"kind\":\"snapshot-run\"}",
            "{\"kind\":\"snapshot-run\",\"s\":\"99999\",\"c\":1}",
            "{\"kind\":\"galaxy\"}",
            "{\"kind\":\"snapshot-end\",\"runs\":0}",
            "{truncat",
        ];
        let initial =
            adversary::random_ciw_configuration(&CaiIzumiWada::new(n), &mut rng_from_seed(seed ^ 1));
        let mut sim = BatchSimulation::new(CaiIzumiWada::new(n), initial, seed);
        sim.run(pre);
        let text = snapshot_counts(&sim).to_jsonl();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let victim = victim_pick % lines.len();
        lines[victim] = GARBAGE[garbage_pick].to_string();
        let corrupted = lines.join("\n");
        // A clean parse error, or — when the garbage is itself a
        // structurally valid line — a parse whose restore() validation
        // rejects out-of-range states. Either way: no panic, and a
        // wrong-count document never restores silently.
        if let Ok(doc) = SnapshotDoc::from_jsonl(&corrupted) {
            let _ = restore_counts(CaiIzumiWada::new(n), &doc);
        }
    }
}
