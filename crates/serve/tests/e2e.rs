//! End-to-end daemon tests over loopback TCP: concurrent populations,
//! interleaved events and queries, busy backpressure, and the
//! snapshot → restart → restore lifecycle.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::thread;
use std::time::{Duration, Instant};

use population::record::JsonScalar;
use ssle_serve::client::{request, request_map, session};
use ssle_serve::{ServeConfig, Server};

fn spawn_server(config: ServeConfig) -> (String, thread::JoinHandle<ssle_serve::ServeSummary>) {
    let server = Server::start(&config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn loopback_config() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() }
}

fn num(map: &std::collections::BTreeMap<String, JsonScalar>, key: &str) -> f64 {
    match map.get(key) {
        Some(JsonScalar::Num(x)) => *x,
        other => panic!("expected number {key}, got {other:?}"),
    }
}

fn boolean(map: &std::collections::BTreeMap<String, JsonScalar>, key: &str) -> bool {
    match map.get(key) {
        Some(JsonScalar::Bool(b)) => *b,
        other => panic!("expected bool {key}, got {other:?}"),
    }
}

/// [`request`] with a caller-chosen client-side read timeout, so a probe
/// that gets *queued* behind a wedged worker fails fast instead of
/// blocking for the library default.
fn request_with_timeout(addr: &str, line: &str, timeout: Duration) -> std::io::Result<String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssle-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_concurrent_populations_with_interleaved_events_and_queries() {
    let (addr, handle) = spawn_server(loopback_config());

    let pong = request_map(&addr, r#"{"cmd":"ping"}"#).unwrap();
    assert!(boolean(&pong, "pong"));

    request_map(
        &addr,
        r#"{"cmd":"create","name":"alpha","protocol":"ciw","backend":"agents","n":24,"seed":3}"#,
    )
    .unwrap();
    request_map(
        &addr,
        r#"{"cmd":"create","name":"beta","protocol":"oss","backend":"counts","n":32,"seed":4}"#,
    )
    .unwrap();

    // Two clients hammer different populations concurrently, interleaving
    // steps, events, and queries over held-open connections.
    let mut workers = Vec::new();
    for name in ["alpha", "beta"] {
        let addr = addr.clone();
        workers.push(thread::spawn(move || {
            let mut lines = Vec::new();
            for round in 0..20 {
                lines.push(format!(r#"{{"cmd":"step","name":"{name}","interactions":2000}}"#));
                if round % 5 == 2 {
                    lines.push(format!(r#"{{"cmd":"corrupt","name":"{name}","k":3}}"#));
                }
                lines.push(format!(r#"{{"cmd":"leader","name":"{name}"}}"#));
                lines.push(format!(r#"{{"cmd":"status","name":"{name}"}}"#));
            }
            let responses = session(&addr, &lines).expect("session");
            for response in &responses {
                assert!(response.contains("\"ok\":true"), "{name}: {response}");
            }
        }));
    }
    for worker in workers {
        worker.join().expect("client worker");
    }

    // Both populations re-stabilize when driven past their corruptions.
    for name in ["alpha", "beta"] {
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let leader =
                request_map(&addr, &format!(r#"{{"cmd":"leader","name":"{name}"}}"#)).unwrap();
            if boolean(&leader, "ranked") {
                assert_eq!(num(&leader, "leaders"), 1.0, "{name}");
                break;
            }
            assert!(Instant::now() < deadline, "{name} never re-stabilized");
            request_map(
                &addr,
                &format!(r#"{{"cmd":"step","name":"{name}","interactions":50000}}"#),
            )
            .unwrap();
        }
    }

    // The agent backend reports a leader index; the counts backend cannot.
    let alpha = request_map(&addr, r#"{"cmd":"leader","name":"alpha"}"#).unwrap();
    assert!(matches!(alpha.get("leader_index"), Some(JsonScalar::Num(_))));
    let beta = request_map(&addr, r#"{"cmd":"leader","name":"beta"}"#).unwrap();
    assert!(matches!(beta.get("leader_index"), Some(JsonScalar::Null)));

    // Timeline and metrics queries return well-formed payloads.
    let timeline = request(&addr, r#"{"cmd":"timeline","name":"alpha","last":8}"#).unwrap();
    assert!(timeline.contains("\"timeline\":[{"), "{timeline}");
    let metrics = request(&addr, r#"{"cmd":"metrics","name":"beta"}"#).unwrap();
    assert!(metrics.contains("\"kind\":\"metrics\""), "{metrics}");

    // `list` carries a nested array, so read it raw rather than as a flat map.
    let list = request(&addr, r#"{"cmd":"list"}"#).unwrap();
    assert!(list.contains("\"count\":2"), "{list}");
    assert!(list.contains("\"alpha\"") && list.contains("\"beta\""), "{list}");

    request_map(&addr, r#"{"cmd":"shutdown"}"#).unwrap();
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.panics, 0);
}

#[test]
fn snapshot_restart_restore_preserves_leader_and_interactions() {
    let dir = temp_dir("lifecycle");
    let config = ServeConfig { snapshot_dir: Some(dir.clone()), ..loopback_config() };
    let (addr, handle) = spawn_server(config.clone());

    request_map(
        &addr,
        r#"{"cmd":"create","name":"pers","protocol":"oss","backend":"counts","n":16,"seed":9}"#,
    )
    .unwrap();
    request_map(&addr, r#"{"cmd":"corrupt","name":"pers","k":5}"#).unwrap();
    // Drive to stabilization.
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let leader = request_map(&addr, r#"{"cmd":"leader","name":"pers"}"#).unwrap();
        if boolean(&leader, "ranked") {
            break;
        }
        assert!(Instant::now() < deadline, "never stabilized");
        request_map(&addr, r#"{"cmd":"step","name":"pers","interactions":20000}"#).unwrap();
    }
    let status = request_map(&addr, r#"{"cmd":"status","name":"pers"}"#).unwrap();
    let interactions = num(&status, "interactions");

    // Explicit per-population snapshot, then shutdown (which snapshots all).
    let snap = request_map(&addr, r#"{"cmd":"snapshot","name":"pers"}"#).unwrap();
    assert!(matches!(snap.get("path"), Some(JsonScalar::Str(p)) if p.contains("pers")));
    request_map(&addr, r#"{"cmd":"shutdown"}"#).unwrap();
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.snapshots.len(), 1);
    assert!(summary.snapshots[0].1.is_ok());

    // Restart against the same directory: the population is back with the
    // same interaction count and a stable unique leader.
    let (addr, handle) = spawn_server(config);
    let status = request_map(&addr, r#"{"cmd":"status","name":"pers"}"#).unwrap();
    assert_eq!(num(&status, "interactions"), interactions);
    assert_eq!(num(&status, "live"), 16.0);
    let leader = request_map(&addr, r#"{"cmd":"leader","name":"pers"}"#).unwrap();
    assert!(boolean(&leader, "ranked"));
    assert_eq!(num(&leader, "leaders"), 1.0);

    request_map(&addr, r#"{"cmd":"shutdown"}"#).unwrap();
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_pool_answers_busy_instead_of_hanging() {
    let config = ServeConfig {
        threads: 1,
        queue: 1,
        read_timeout: Duration::from_secs(120),
        ..loopback_config()
    };
    let (addr, handle) = spawn_server(config);

    // Wedge the single worker with held-open idle connections. Depending
    // on scheduling, the second holder may itself be refused with a busy
    // envelope during setup; either way the worker ends up blocked reading
    // an idle holder for the full read timeout.
    let hold1 = std::net::TcpStream::connect(&addr).unwrap();
    let hold2 = std::net::TcpStream::connect(&addr).unwrap();
    // Give the accept loop time to hand the holders to the pool.
    thread::sleep(Duration::from_millis(300));

    // The saturated pool must refuse promptly with a busy envelope. Probe
    // with a short client-side timeout: a probe that times out was
    // *queued* behind the wedged worker and keeps occupying that queue
    // slot, so a following probe is guaranteed to be refused.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_busy = false;
    while Instant::now() < deadline {
        match request_with_timeout(&addr, r#"{"cmd":"ping"}"#, Duration::from_secs(2)) {
            Ok(response) if response.contains("busy") => {
                saw_busy = true;
                break;
            }
            _ => thread::sleep(Duration::from_millis(50)),
        }
    }
    assert!(saw_busy, "server never reported busy backpressure");

    drop(hold1);
    drop(hold2);
    // After the holders disconnect, service resumes.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(pong) = request_map(&addr, r#"{"cmd":"ping"}"#) {
            assert!(boolean(&pong, "pong"));
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered after busy");
        thread::sleep(Duration::from_millis(50));
    }

    request_map(&addr, r#"{"cmd":"shutdown"}"#).unwrap();
    handle.join().expect("server thread");
}

#[test]
fn handle_line_is_reusable_without_a_socket() {
    // The dispatch layer is pure w.r.t. the transport: embedders (benches)
    // can drive it in-process.
    let registry = ssle_serve::Registry::new(None);
    let stop = AtomicBool::new(false);
    let response = ssle_serve::handle_line(
        &registry,
        &stop,
        r#"{"cmd":"create","name":"inproc","protocol":"ciw","backend":"counts","n":64}"#,
    );
    assert!(response.contains("\"ok\":true"), "{response}");
}
