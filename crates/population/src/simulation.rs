//! Executions of a protocol under the random scheduler.

use std::time::Instant;

use rand::rngs::SmallRng;

use crate::fault::{FaultSchedule, NoFaults};
use crate::graph::InteractionGraph;
use crate::metrics::{MetricsSink, NoopMetrics, Section, AGENT_FLUSH_EVERY};
use crate::observer::{NoopObserver, Observer};
use crate::protocol::{Protocol, RankingProtocol};
use crate::runner::rng_from_seed;
use crate::scheduler::{Reliability, Scheduler, SchedulerPolicy};
use crate::timeline::{snapshot_states, TimelineObserver};
use crate::tracker::RankTracker;

/// The result of running a simulation toward a goal with a bounded budget of
/// interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The goal was reached after this many interactions (counted from the
    /// start of the execution, not from the start of the call).
    Converged {
        /// Total interactions at the moment of convergence.
        interactions: u64,
    },
    /// The interaction budget was exhausted before the goal was reached.
    Exhausted {
        /// Total interactions performed.
        interactions: u64,
    },
}

impl RunOutcome {
    /// Whether the goal was reached.
    pub fn is_converged(&self) -> bool {
        matches!(self, RunOutcome::Converged { .. })
    }

    /// Total interactions at convergence/exhaustion.
    pub fn interactions(&self) -> u64 {
        match *self {
            RunOutcome::Converged { interactions } | RunOutcome::Exhausted { interactions } => {
                interactions
            }
        }
    }

    /// Interactions divided by `n`: the paper's parallel time.
    pub fn parallel_time(&self, n: usize) -> f64 {
        self.interactions() as f64 / n as f64
    }
}

/// An execution in progress: a protocol, a configuration (one state per
/// agent), a scheduler, and a seeded RNG.
///
/// The RNG drives both the scheduler's pair choices and the protocol's
/// randomized transitions, so a `(protocol, initial configuration, seed)`
/// triple fully determines the execution — trials are reproducible.
///
/// The second type parameter is an [`Observer`] receiving execution events;
/// it defaults to [`NoopObserver`], so `Simulation<P>` is the uninstrumented
/// simulation. Observers never touch the RNG, so attaching one cannot change
/// the execution (see [`Simulation::observe`]).
///
/// The third type parameter is a [`FaultSchedule`] injecting mid-run faults
/// (see [`crate::fault`]); it defaults to [`NoFaults`], whose
/// `ACTIVE = false` gate folds every injection point out of the hot loop, so
/// a simulation without a fault plan compiles to the same code as before the
/// chaos harness existed. Fault schedules draw from their **own** RNG, so a
/// given `(protocol, plan, seed)` triple replays bit-identically.
///
/// The fourth type parameter is the [`SchedulerPolicy`] choosing interaction
/// pairs; it defaults to the paper's uniform [`Scheduler`], so existing code
/// monomorphizes to exactly the pre-policy hot loop. Non-uniform and
/// adversarial policies ([`crate::scheduler::Zipf`],
/// [`crate::scheduler::EpochStarvation`], …) plug in via
/// [`Simulation::with_policy`]; unreliable interactions via
/// [`Simulation::with_reliability`].
///
/// The fifth type parameter is a [`MetricsSink`] receiving **engine**
/// telemetry (interaction counts, RNG draws, per-section wall time); it
/// defaults to [`NoopMetrics`], whose `ENABLED = false` gate folds every
/// instrumentation site out of the hot loop. Sinks flush at batch
/// boundaries ([`AGENT_FLUSH_EVERY`] interactions on this backend) and
/// never touch the RNG, so attaching one cannot change the execution (see
/// [`Simulation::with_metrics`]).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Simulation<
    P: Protocol,
    O: Observer<P> = NoopObserver,
    F: FaultSchedule<P> = NoFaults,
    S: SchedulerPolicy = Scheduler,
    M: MetricsSink = NoopMetrics,
> {
    pub(crate) protocol: P,
    pub(crate) scheduler: S,
    pub(crate) states: Vec<P::State>,
    pub(crate) rng: SmallRng,
    pub(crate) interactions: u64,
    pub(crate) observer: O,
    pub(crate) faults: F,
    pub(crate) reliability: Reliability,
    pub(crate) metrics: M,
}

impl<P: Protocol> Simulation<P> {
    /// Creates an execution on the complete interaction graph (the paper's
    /// setting) from an explicit initial configuration.
    ///
    /// In the self-stabilizing model the initial configuration is chosen by
    /// an adversary, so it is always supplied explicitly.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are supplied.
    pub fn new(protocol: P, initial: Vec<P::State>, seed: u64) -> Self {
        Self::with_graph(protocol, initial, InteractionGraph::Complete, seed)
    }

    /// Rebuilds an execution at an exact checkpoint: agent states,
    /// interaction count, and RNG stream position — the snapshot/restore
    /// constructor (see [`crate::snapshot`]). The interaction graph is the
    /// complete graph and plug-ins are reset to the zero-cost defaults;
    /// continuing the restored execution is bit-identical to continuing
    /// the original.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are supplied.
    pub fn from_checkpoint(
        protocol: P,
        states: Vec<P::State>,
        interactions: u64,
        rng: SmallRng,
    ) -> Self {
        let scheduler = Scheduler::new(states.len(), InteractionGraph::Complete);
        Simulation {
            protocol,
            scheduler,
            states,
            rng,
            interactions,
            observer: NoopObserver,
            faults: NoFaults,
            reliability: Reliability::perfect(),
            metrics: NoopMetrics,
        }
    }

    /// Creates an execution on an arbitrary interaction graph.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are supplied, or if the graph was
    /// validated for a different population size.
    pub fn with_graph(
        protocol: P,
        initial: Vec<P::State>,
        graph: InteractionGraph,
        seed: u64,
    ) -> Self {
        let scheduler = Scheduler::new(initial.len(), graph);
        Simulation {
            protocol,
            scheduler,
            states: initial,
            rng: rng_from_seed(seed),
            interactions: 0,
            observer: NoopObserver,
            faults: NoFaults,
            reliability: Reliability::perfect(),
            metrics: NoopMetrics,
        }
    }
}

impl<P: Protocol, S: SchedulerPolicy> Simulation<P, NoopObserver, NoFaults, S> {
    /// Creates an execution driven by an explicit [`SchedulerPolicy`] — the
    /// entry point for the non-uniform/adversarial schedulers of
    /// [`crate::scheduler`].
    ///
    /// # Panics
    ///
    /// Panics if the policy was built for a different population size.
    pub fn with_policy(protocol: P, initial: Vec<P::State>, policy: S, seed: u64) -> Self {
        assert_eq!(
            policy.population_size(),
            initial.len(),
            "scheduler policy was built for a different population size"
        );
        Simulation {
            protocol,
            scheduler: policy,
            states: initial,
            rng: rng_from_seed(seed),
            interactions: 0,
            observer: NoopObserver,
            faults: NoFaults,
            reliability: Reliability::perfect(),
            metrics: NoopMetrics,
        }
    }
}

impl<P: Protocol, O: Observer<P>, F: FaultSchedule<P>, S: SchedulerPolicy, M: MetricsSink>
    Simulation<P, O, F, S, M>
{
    /// Attaches an observer, replacing the current one.
    ///
    /// Because observers only *watch* — the simulation's RNG stream and state
    /// transitions never depend on them — the observed execution is
    /// bit-identical to the unobserved one from the same `(protocol, initial
    /// configuration, seed)` triple (with or without a fault schedule
    /// attached). Interaction counts already performed are preserved.
    pub fn observe<O2: Observer<P>>(self, observer: O2) -> Simulation<P, O2, F, S, M> {
        Simulation {
            protocol: self.protocol,
            scheduler: self.scheduler,
            states: self.states,
            rng: self.rng,
            interactions: self.interactions,
            observer,
            faults: self.faults,
            reliability: self.reliability,
            metrics: self.metrics,
        }
    }

    /// Attaches a metrics sink, replacing the current one.
    ///
    /// Sinks only *count* — they never draw from the simulation's RNG — so
    /// the instrumented execution is bit-identical to the uninstrumented one
    /// from the same `(protocol, initial configuration, seed)` triple.
    /// Interaction counts already performed are preserved. Lend a sink with
    /// `with_metrics(&mut sink)` to keep ownership for reading afterwards.
    pub fn with_metrics<M2: MetricsSink>(self, metrics: M2) -> Simulation<P, O, F, S, M2> {
        Simulation {
            protocol: self.protocol,
            scheduler: self.scheduler,
            states: self.states,
            rng: self.rng,
            interactions: self.interactions,
            observer: self.observer,
            faults: self.faults,
            reliability: self.reliability,
            metrics,
        }
    }

    /// The attached metrics sink.
    pub fn metrics(&self) -> &M {
        &self.metrics
    }

    /// Consumes the simulation and returns the metrics sink with whatever it
    /// accumulated.
    pub fn into_metrics(self) -> M {
        self.metrics
    }

    /// Sets the interaction-reliability model (omission probability and/or
    /// one-way application) for all subsequent interactions.
    ///
    /// With the default [`Reliability::perfect`] no extra randomness is
    /// consumed, so attaching it is unobservable; any non-perfect model
    /// changes the execution (that is its purpose).
    pub fn with_reliability(mut self, reliability: Reliability) -> Self {
        self.reliability = reliability;
        self
    }

    /// The interaction-reliability model in effect.
    pub fn reliability(&self) -> Reliability {
        self.reliability
    }

    /// The scheduler policy driving pair selection.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The attached observer, mutably (e.g. to reset its counters).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the simulation and returns the observer with whatever it
    /// accumulated.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// The number of agents.
    pub fn population_size(&self) -> usize {
        self.states.len()
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Interactions performed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The simulation RNG's current stream position, for checkpointing
    /// (restore with [`Simulation::from_checkpoint`]).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Overwrites one agent's state in place — **fault injection**.
    ///
    /// This models a transient memory fault hitting a live system (the
    /// scenario self-stabilization exists for): the execution continues from
    /// the corrupted configuration with the same RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn inject_fault(&mut self, agent: usize, state: P::State) {
        assert!(agent < self.states.len(), "agent index {agent} out of range");
        self.states[agent] = state;
    }

    /// Consumes the simulation and returns the final configuration.
    pub fn into_states(self) -> Vec<P::State> {
        self.states
    }

    /// Parallel time elapsed so far (interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.states.len() as f64
    }

    /// Performs one scheduler-chosen interaction and returns the ordered pair
    /// of agent indices that interacted.
    pub fn step(&mut self) -> (usize, usize) {
        let (i, j) = self.scheduler.sample_at(&mut self.rng, self.interactions);
        self.apply(i, j);
        if M::ENABLED {
            self.note_step_metrics();
        }
        (i, j)
    }

    /// Per-interaction metric bookkeeping: counters every step, a flush at
    /// every [`AGENT_FLUSH_EVERY`] boundary. Call sites gate on `M::ENABLED`
    /// so the disabled sink compiles this away entirely.
    #[inline]
    pub(crate) fn note_step_metrics(&mut self) {
        self.metrics.on_interactions(1);
        // One ordered pair per interaction: two uniform draws.
        self.metrics.on_rng_draws(2);
        if self.interactions.is_multiple_of(AGENT_FLUSH_EVERY) {
            self.metrics.on_flush(self.interactions);
        }
    }

    /// Forces an interaction between a specific ordered pair of agents.
    ///
    /// This bypasses the random scheduler; it exists to replay the scripted
    /// executions of the paper's Figure 2 and for tests that need a
    /// particular interaction sequence. The forced interaction still counts
    /// toward [`Simulation::interactions`].
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn force_pair(&mut self, i: usize, j: usize) {
        assert!(i != j, "agents cannot interact with themselves");
        assert!(i < self.states.len() && j < self.states.len(), "agent index out of range");
        self.apply(i, j);
    }

    /// One observed interaction between `i` and `j`: the transition plus all
    /// gated observer hooks, **without** polling the fault schedule — run
    /// loops that keep their own incremental bookkeeping (rank tracking,
    /// chaos recovery) poll separately so they can react to the corruption.
    pub(crate) fn interact_observed(&mut self, i: usize, j: usize) {
        if self.reliability.drops(&mut self.rng) {
            // The pair met but the transition was silently dropped. The
            // meeting still counts: parallel time measures scheduled
            // encounters, and an omitted one wastes exactly its share of it.
            self.interactions += 1;
            self.observer.on_interaction(i, j, self.interactions);
            return;
        }
        // The observer gates are associated consts, so for `NoopObserver`
        // every branch below folds away and this compiles to the original
        // uninstrumented body.
        let phases_before = if O::WATCHES_PHASES {
            (self.protocol.phase_of(&self.states[i]), self.protocol.phase_of(&self.states[j]))
        } else {
            (None, None)
        };
        let effective = O::WATCHES_STATE_CHANGES
            && !self.protocol.is_null_pair(&self.states[i], &self.states[j]);
        let (a, b) = pair_mut(&mut self.states, i, j);
        if self.reliability.one_way {
            // Only the initiator's update lands; the responder's half of the
            // transition is discarded.
            let saved = b.clone();
            self.protocol.interact(a, b, &mut self.rng);
            *b = saved;
        } else {
            self.protocol.interact(a, b, &mut self.rng);
        }
        self.interactions += 1;
        self.observer.on_interaction(i, j, self.interactions);
        if O::WATCHES_STATE_CHANGES && effective {
            self.observer.on_state_change(i, j, self.interactions);
        }
        if O::WATCHES_PHASES {
            let after_i = self.protocol.phase_of(&self.states[i]);
            if after_i != phases_before.0 {
                self.observer.on_phase_transition(i, phases_before.0, after_i, self.interactions);
            }
            let after_j = self.protocol.phase_of(&self.states[j]);
            if after_j != phases_before.1 {
                self.observer.on_phase_transition(j, phases_before.1, after_j, self.interactions);
            }
        }
    }

    /// Polls the fault schedule at the current interaction count, reporting
    /// any fired fault to the observer. Returns the number of corrupted
    /// agents (0 when nothing fired). With [`NoFaults`] this is a no-op that
    /// the compiler removes — the `F::ACTIVE` gate is an associated const.
    pub(crate) fn poll_faults(&mut self) -> usize {
        if !F::ACTIVE {
            return 0;
        }
        let fired_before = self.faults.fired_count();
        let corrupted = self.faults.poll(&self.protocol, &mut self.states, self.interactions);
        if self.faults.fired_count() != fired_before {
            self.observer.on_fault(corrupted, self.interactions);
        }
        corrupted
    }

    fn apply(&mut self, i: usize, j: usize) {
        self.interact_observed(i, j);
        if F::ACTIVE {
            self.poll_faults();
        }
    }

    /// Runs exactly `k` interactions.
    pub fn run(&mut self, k: u64) {
        if M::ENABLED {
            let started = Instant::now();
            for _ in 0..k {
                self.step();
            }
            self.metrics.on_section(Section::Transition, started.elapsed().as_nanos() as u64);
        } else {
            for _ in 0..k {
                self.step();
            }
        }
        self.observer.on_batch(k, self.interactions);
    }

    /// Steps until `goal` holds for the configuration, or until the *total*
    /// interaction count reaches `max_interactions`.
    ///
    /// `goal` is evaluated on the initial configuration too, so a
    /// configuration that already satisfies it converges after 0
    /// interactions. The predicate receives the full state slice; for the
    /// O(1)-per-step ranking goal use
    /// [`run_until_stably_ranked`](Simulation::run_until_stably_ranked).
    pub fn run_until(
        &mut self,
        max_interactions: u64,
        mut goal: impl FnMut(&[P::State]) -> bool,
    ) -> RunOutcome {
        loop {
            let probe_started = if M::ENABLED { Some(Instant::now()) } else { None };
            let reached = goal(&self.states);
            if let Some(t0) = probe_started {
                self.metrics.on_section(Section::Probe, t0.elapsed().as_nanos() as u64);
            }
            if reached {
                self.observer.on_converged(self.interactions);
                if F::ACTIVE {
                    self.faults.notify_converged(self.interactions);
                }
                return RunOutcome::Converged { interactions: self.interactions };
            }
            if self.interactions >= max_interactions {
                self.observer.on_exhausted(self.interactions);
                return RunOutcome::Exhausted { interactions: self.interactions };
            }
            self.step();
        }
    }
}

impl<
        P: RankingProtocol,
        O: Observer<P>,
        F: FaultSchedule<P>,
        S: SchedulerPolicy,
        M: MetricsSink,
    > Simulation<P, O, F, S, M>
{
    /// Runs until the configuration is correctly ranked (each rank `1..=n`
    /// output by exactly one agent) **and stays ranked** for
    /// `confirm_window` further interactions.
    ///
    /// Returns the interaction count at the moment the final (confirmed)
    /// convergence occurred. The confirmation window guards against
    /// mistaking a transiently-correct configuration for a stable one; for
    /// the paper's protocols a correct configuration is stable (silent
    /// protocols) or safe (Sublinear-Time-SSR's no-false-positive
    /// guarantee), so confirmed convergence coincides with stabilization.
    ///
    /// Rank bookkeeping is incremental — O(1) per interaction — via
    /// [`RankTracker`].
    pub fn run_until_stably_ranked(
        &mut self,
        max_interactions: u64,
        confirm_window: u64,
    ) -> RunOutcome {
        self.ranked_loop(max_interactions, confirm_window, None)
    }

    /// Like [`Simulation::run_until_stably_ranked`], but additionally
    /// records a convergence-dynamics timeline: whenever `timeline` reports
    /// a checkpoint due, the current configuration is snapshotted
    /// ([`crate::timeline::snapshot_states`]), and the end-of-run
    /// configuration is sealed as the final checkpoint.
    ///
    /// Snapshots never touch the simulation RNG, so the interaction
    /// sequence — and therefore the outcome — is identical to an
    /// uninstrumented run with the same seed.
    pub fn run_until_stably_ranked_timeline(
        &mut self,
        max_interactions: u64,
        confirm_window: u64,
        timeline: &mut TimelineObserver,
    ) -> RunOutcome {
        self.ranked_loop(max_interactions, confirm_window, Some(timeline))
    }

    fn ranked_loop(
        &mut self,
        max_interactions: u64,
        confirm_window: u64,
        mut timeline: Option<&mut TimelineObserver>,
    ) -> RunOutcome {
        let n = self.protocol.population_size();
        assert_eq!(n, self.states.len(), "protocol configured for a different population size");
        let mut tracker = RankTracker::new(n);
        for s in &self.states {
            tracker.add(self.protocol.rank_of(s));
        }
        let mut converged_at: Option<u64> = None;
        let mut window = if M::ENABLED { Some(Instant::now()) } else { None };
        let outcome = loop {
            if let Some(tl) = timeline.as_deref_mut() {
                if tl.is_due(self.interactions) {
                    let observe_started = if M::ENABLED { Some(Instant::now()) } else { None };
                    tl.record(snapshot_states(&self.protocol, &self.states, self.interactions));
                    if let Some(t0) = observe_started {
                        self.metrics.on_section(Section::Observe, t0.elapsed().as_nanos() as u64);
                    }
                }
            }
            match converged_at {
                Some(t0) => {
                    if self.interactions - t0 >= confirm_window {
                        self.observer.on_converged(t0);
                        if F::ACTIVE {
                            self.faults.notify_converged(t0);
                        }
                        break RunOutcome::Converged { interactions: t0 };
                    }
                }
                None => {
                    if tracker.is_correct() {
                        converged_at = Some(self.interactions);
                        if confirm_window == 0 {
                            self.observer.on_converged(self.interactions);
                            if F::ACTIVE {
                                self.faults.notify_converged(self.interactions);
                            }
                            break RunOutcome::Converged { interactions: self.interactions };
                        }
                    }
                }
            }
            if self.interactions >= max_interactions {
                self.observer.on_exhausted(self.interactions);
                break RunOutcome::Exhausted { interactions: self.interactions };
            }
            let (i, j) = self.scheduler.sample_at(&mut self.rng, self.interactions);
            // Rank tracking needs before/after snapshots around the
            // transition, so this loop drives `interact_observed` directly
            // instead of `apply` (the fault poll below reacts to corruption
            // by rebuilding the tracker).
            let before_i = self.protocol.rank_of(&self.states[i]);
            let before_j = self.protocol.rank_of(&self.states[j]);
            self.interact_observed(i, j);
            let after_i = self.protocol.rank_of(&self.states[i]);
            let after_j = self.protocol.rank_of(&self.states[j]);
            tracker.update(before_i, after_i);
            tracker.update(before_j, after_j);
            if M::ENABLED {
                self.note_step_metrics();
                if self.interactions.is_multiple_of(AGENT_FLUSH_EVERY) {
                    if let Some(w) = window.as_mut() {
                        self.metrics.on_section(Section::Transition, w.elapsed().as_nanos() as u64);
                        *w = Instant::now();
                    }
                }
            }
            if F::ACTIVE {
                let fired_before = self.faults.fired_count();
                self.poll_faults();
                if self.faults.fired_count() != fired_before {
                    // A fault overwrote arbitrary agents: the incremental
                    // histogram is stale, and any in-progress confirmation
                    // window no longer describes this configuration.
                    tracker = RankTracker::new(n);
                    for s in &self.states {
                        tracker.add(self.protocol.rank_of(s));
                    }
                    converged_at = None;
                }
            }
            if converged_at.is_some() && !tracker.is_correct() {
                // The "stable" configuration broke inside the confirmation
                // window — it was not stable after all; keep searching.
                converged_at = None;
            }
        };
        if let Some(tl) = timeline {
            tl.seal(snapshot_states(&self.protocol, &self.states, self.interactions));
        }
        outcome
    }

    /// Number of agents currently outputting leader (rank 1).
    pub fn leader_count(&self) -> usize {
        self.states.iter().filter(|s| self.protocol.is_leader(s)).count()
    }

    /// Whether the configuration is currently correctly ranked.
    pub fn is_ranked(&self) -> bool {
        let n = self.protocol.population_size();
        let mut tracker = RankTracker::new(n);
        for s in &self.states {
            tracker.add(self.protocol.rank_of(s));
        }
        tracker.is_correct()
    }
}

/// One interaction between agents `i` and `j` of an explicit state slice
/// under a [`Reliability`] model, for run loops that manage their own state
/// storage (the count-based backend's non-uniform fallback). Returns whether
/// the transition was applied (i.e. not dropped by omission).
pub(crate) fn interact_reliably<P: Protocol>(
    protocol: &P,
    states: &mut [P::State],
    i: usize,
    j: usize,
    reliability: Reliability,
    rng: &mut SmallRng,
) -> bool {
    if reliability.drops(rng) {
        return false;
    }
    let (a, b) = pair_mut(states, i, j);
    if reliability.one_way {
        let saved = b.clone();
        protocol.interact(a, b, rng);
        *b = saved;
    } else {
        protocol.interact(a, b, rng);
    }
    true
}

/// Borrows two distinct elements of a slice mutably.
///
/// # Panics
///
/// Panics if `i == j` or either index is out of bounds.
pub(crate) fn pair_mut<T>(xs: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert!(i != j, "pair_mut requires distinct indices");
    if i < j {
        let (lo, hi) = xs.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Counter(u32);

    /// Every interaction increments the responder.
    struct Inc;
    impl Protocol for Inc {
        type State = Counter;
        fn interact(&self, _a: &mut Counter, b: &mut Counter, _rng: &mut SmallRng) {
            b.0 += 1;
        }
    }

    #[test]
    fn pair_mut_returns_both_orders() {
        let mut v = vec![1, 2, 3];
        {
            let (a, b) = pair_mut(&mut v, 0, 2);
            *a = 10;
            *b = 30;
        }
        {
            let (a, b) = pair_mut(&mut v, 2, 1);
            assert_eq!((*a, *b), (30, 2));
        }
        assert_eq!(v, vec![10, 2, 30]);
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn pair_mut_rejects_equal_indices() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }

    #[test]
    fn interactions_and_parallel_time_accumulate() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 4], 11);
        sim.run(8);
        assert_eq!(sim.interactions(), 8);
        assert!((sim.parallel_time() - 2.0).abs() < 1e-12);
        let total: u32 = sim.states().iter().map(|c| c.0).sum();
        assert_eq!(total, 8, "each interaction increments exactly one agent");
    }

    #[test]
    fn run_until_checks_initial_configuration() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        let outcome = sim.run_until(100, |_| true);
        assert_eq!(outcome, RunOutcome::Converged { interactions: 0 });
    }

    #[test]
    fn run_until_exhausts_budget() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        let outcome = sim.run_until(25, |_| false);
        assert_eq!(outcome, RunOutcome::Exhausted { interactions: 25 });
        assert!(!outcome.is_converged());
        assert!((outcome.parallel_time(3) - 25.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn force_pair_applies_the_transition() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        sim.force_pair(0, 2);
        assert_eq!(sim.states()[2], Counter(1));
        assert_eq!(sim.interactions(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn force_pair_rejects_bad_index() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        sim.force_pair(0, 3);
    }

    #[test]
    fn inject_fault_overwrites_one_agent() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        sim.inject_fault(1, Counter(99));
        assert_eq!(sim.states()[1], Counter(99));
        assert_eq!(sim.states()[0], Counter(0));
        assert_eq!(sim.interactions(), 0, "fault injection is not an interaction");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_fault_rejects_bad_index() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        sim.inject_fault(3, Counter(1));
    }

    #[test]
    fn into_states_returns_final_configuration() {
        let mut sim = Simulation::new(Inc, vec![Counter(0); 3], 1);
        sim.run(5);
        let states = sim.into_states();
        assert_eq!(states.iter().map(|c| c.0).sum::<u32>(), 5);
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        let mut a = Simulation::new(Inc, vec![Counter(0); 6], 99);
        let mut b = Simulation::new(Inc, vec![Counter(0); 6], 99);
        a.run(500);
        b.run(500);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Simulation::new(Inc, vec![Counter(0); 6], 1);
        let mut b = Simulation::new(Inc, vec![Counter(0); 6], 2);
        a.run(500);
        b.run(500);
        assert_ne!(a.states(), b.states(), "astronomically unlikely to coincide");
    }

    #[test]
    fn omission_drops_that_fraction_of_transitions() {
        use crate::scheduler::Reliability;
        let mut sim = Simulation::new(Inc, vec![Counter(0); 4], 11)
            .with_reliability(Reliability::with_omission(0.5));
        sim.run(10_000);
        assert_eq!(sim.interactions(), 10_000, "omitted meetings still count");
        let total: u32 = sim.states().iter().map(|c| c.0).sum();
        let frac = f64::from(total) / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "applied fraction {frac} should be ≈0.5");
    }

    #[test]
    fn one_way_application_never_touches_the_responder() {
        use crate::scheduler::Reliability;
        // Inc only updates the responder, so one-way application freezes the
        // whole configuration.
        let mut sim = Simulation::new(Inc, vec![Counter(0); 4], 3)
            .with_reliability(Reliability::perfect().and_one_way());
        sim.run(1_000);
        assert!(sim.states().iter().all(|c| c.0 == 0));
        assert_eq!(sim.interactions(), 1_000);
    }

    #[test]
    fn perfect_reliability_is_bit_identical_to_the_default() {
        use crate::scheduler::Reliability;
        let mut plain = Simulation::new(Inc, vec![Counter(0); 6], 42);
        let mut wrapped =
            Simulation::new(Inc, vec![Counter(0); 6], 42).with_reliability(Reliability::perfect());
        plain.run(2_000);
        wrapped.run(2_000);
        assert_eq!(plain.states(), wrapped.states());
    }

    #[test]
    fn with_policy_drives_pair_selection() {
        use crate::scheduler::{AnyScheduler, SchedulerPolicy};
        let policy = AnyScheduler::from_spec("clustered:2:0.5", 8).unwrap();
        let mut sim = Simulation::with_policy(Inc, vec![Counter(0); 8], policy, 9);
        sim.run(500);
        assert_eq!(sim.interactions(), 500);
        assert_eq!(sim.states().iter().map(|c| c.0).sum::<u32>(), 500);
        assert_eq!(sim.scheduler().label(), "clustered");
    }

    #[test]
    #[should_panic(expected = "different population size")]
    fn with_policy_rejects_size_mismatch() {
        let policy = crate::scheduler::AnyScheduler::uniform(4);
        Simulation::with_policy(Inc, vec![Counter(0); 5], policy, 1);
    }

    /// Leaders fight (`ℓ,ℓ → ℓ,f`); only leader/leader pairs are effective.
    #[derive(Clone, Copy)]
    struct Fight;
    impl Protocol for Fight {
        type State = bool;
        fn interact(&self, a: &mut bool, b: &mut bool, _rng: &mut SmallRng) {
            if *a && *b {
                *b = false;
            }
        }
        fn is_null_pair(&self, a: &bool, b: &bool) -> bool {
            !(*a && *b)
        }
        fn phase_of(&self, state: &bool) -> Option<&'static str> {
            Some(if *state { "leader" } else { "follower" })
        }
    }

    impl RankingProtocol for Fight {
        fn population_size(&self) -> usize {
            2 // only meaningful for the n = 2 tests below
        }
        fn rank_of(&self, state: &bool) -> Option<usize> {
            Some(if *state { 1 } else { 2 })
        }
    }

    #[test]
    fn observer_does_not_perturb_the_execution() {
        use crate::telemetry::TelemetryObserver;
        // Acceptance check for the zero-cost observer: the same (protocol,
        // initial configuration, seed) triple must give bit-identical states
        // and interaction counts with and without a full observer attached —
        // including one whose gates force per-step phase and null-pair
        // evaluation.
        let mut plain = Simulation::new(Fight, vec![true; 16], 99);
        let mut observed =
            Simulation::new(Fight, vec![true; 16], 99).observe(TelemetryObserver::new());
        plain.run(500);
        observed.run(500);
        assert_eq!(plain.states(), observed.states());
        assert_eq!(plain.interactions(), observed.interactions());

        let mut plain = Simulation::new(Fight, vec![true; 2], 7);
        let mut observed =
            Simulation::new(Fight, vec![true; 2], 7).observe(TelemetryObserver::new());
        let a = plain.run_until_stably_ranked(10_000, 8);
        let b = observed.run_until_stably_ranked(10_000, 8);
        assert_eq!(a, b, "goal-directed outcomes must match too");
        assert_eq!(plain.states(), observed.states());
    }

    #[test]
    fn telemetry_observer_counts_the_event_stream() {
        use crate::telemetry::TelemetryObserver;
        let n = 16;
        let mut sim = Simulation::new(Fight, vec![true; n], 5).observe(TelemetryObserver::new());
        sim.run(2_000);
        sim.run(2_000);
        let leaders = sim.states().iter().filter(|&&s| s).count();
        let telemetry = sim.into_observer();
        assert_eq!(telemetry.interactions.get(), 4_000);
        assert_eq!(telemetry.batches.get(), 2);
        // Each effective interaction demotes exactly one leader.
        assert_eq!(telemetry.effective.get(), (n - leaders) as u64);
        assert_eq!(telemetry.effective_gaps.total(), telemetry.effective.get());
        // Each demotion is one leader → follower phase transition.
        assert_eq!(telemetry.phase_transitions.len(), n - leaders);
        for t in &telemetry.phase_transitions {
            assert_eq!(t.from, Some("leader"));
            assert_eq!(t.to, Some("follower"));
        }
    }

    #[test]
    fn convergence_hooks_fire() {
        use crate::telemetry::TelemetryObserver;
        let mut sim = Simulation::new(Fight, vec![true; 8], 3).observe(TelemetryObserver::new());
        let outcome = sim.run_until(100_000, |s| s.iter().filter(|&&x| x).count() == 1);
        assert!(outcome.is_converged());
        let exhausted = sim.run_until(0, |s| s.iter().all(|&x| !x));
        assert!(!exhausted.is_converged());
        let telemetry = sim.into_observer();
        assert_eq!(telemetry.converged.get(), 1);
        assert_eq!(telemetry.exhausted.get(), 1);
    }
}
