//! The population protocol abstraction.

use rand::rngs::SmallRng;

/// A population protocol: a state set plus a (possibly randomized) pairwise
/// transition function.
///
/// The reproduced paper allows randomness in transitions (its footnote 5
/// notes this can be removed by standard synthetic-coin constructions without
/// changing time or space bounds), so [`Protocol::interact`] receives an RNG.
///
/// Transitions are expressed as in-place mutation of the two interacting
/// agents' states rather than by returning fresh states; this keeps
/// simulation allocation-free for the heavy states of Sublinear-Time-SSR
/// (rosters and history trees).
///
/// Implementors describing protocols from the paper should treat `a` as the
/// *initiator* and `b` as the *responder* — most transitions in the paper are
/// symmetric, but e.g. Protocol 1 (Silent-n-state-SSR) increments only the
/// responder's rank.
pub trait Protocol {
    /// Per-agent state. Cloning must be cheap enough for snapshotting
    /// configurations (use `Arc` internally for heavyweight fields).
    type State: Clone + std::fmt::Debug;

    /// Declares that [`Protocol::interact`] is a pure function of the two
    /// input states and never reads its RNG argument.
    ///
    /// The count-based backend ([`crate::counts`]) memoizes state-pair
    /// transitions when this is `true`, turning the per-interaction cost
    /// into a table lookup. The conservative default of `false` is always
    /// correct — a protocol that opts in while actually drawing randomness
    /// in `interact` would have one sampled outcome silently replayed for
    /// every repetition of that state pair.
    const DETERMINISTIC_INTERACT: bool = false;

    /// Applies one interaction between initiator `a` and responder `b`.
    fn interact(&self, a: &mut Self::State, b: &mut Self::State, rng: &mut SmallRng);

    /// Returns `true` when the ordered pair `(a, b)` has only the null
    /// transition — i.e. **no** outcome of [`Protocol::interact`] can change
    /// either state.
    ///
    /// This powers structural silence detection ([`crate::silence`]): a
    /// configuration is silent iff every ordered pair of states present in it
    /// is a null pair. Protocols that are not silent (such as
    /// Sublinear-Time-SSR, whose agents exchange sync values forever) can
    /// keep the conservative default of `false`.
    fn is_null_pair(&self, _a: &Self::State, _b: &Self::State) -> bool {
        false
    }

    /// The protocol-declared *phase* a state is in, if the protocol has a
    /// notion of phases.
    ///
    /// Protocols built on Propagate-Reset (Sec. 3 of the paper) report the
    /// wave their agent is riding — `"computing"` while running the main
    /// protocol, `"propagating"` while spreading a reset signal, `"dormant"`
    /// while waiting out the delay timer before awakening back into
    /// `"computing"`. Protocols without phase structure keep the default of
    /// `None` for every state.
    ///
    /// Phase names are `&'static str` so that comparing and recording
    /// transitions ([`crate::Observer::on_phase_transition`]) costs a pointer
    /// compare, not a string compare, on the hot path.
    fn phase_of(&self, _state: &Self::State) -> Option<&'static str> {
        None
    }
}

/// A protocol that solves the ranking problem of the paper: each agent
/// exposes an output `rank ∈ {1, …, n}`, and a configuration is correct when
/// every rank in `{1, …, n}` is held by exactly one agent.
///
/// Any ranking protocol solves leader election by declaring the rank-1 agent
/// the leader (Sec. 2 of the paper), which is what [`RankingProtocol::is_leader`]
/// implements.
pub trait RankingProtocol: Protocol {
    /// The population size `n` this protocol instance is configured for.
    ///
    /// Self-stabilizing leader election provably requires agents to know the
    /// exact population size (Theorem 2.1, after Cai–Izumi–Wada), so the
    /// protocol object carries `n`.
    fn population_size(&self) -> usize;

    /// The rank output of a state: `Some(r)` with `1 ≤ r ≤ n`, or `None` if
    /// the agent currently outputs no rank (e.g. unsettled or resetting
    /// agents in Optimal-Silent-SSR).
    fn rank_of(&self, state: &Self::State) -> Option<usize>;

    /// Leader output: an agent leads iff it outputs rank 1.
    fn is_leader(&self, state: &Self::State) -> bool {
        self.rank_of(state) == Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    /// Protocol 1 of the paper, reimplemented minimally for trait tests.
    struct ModRank {
        n: usize,
    }

    impl Protocol for ModRank {
        type State = usize;
        fn interact(&self, a: &mut usize, b: &mut usize, _rng: &mut SmallRng) {
            if a == b {
                *b = (*b + 1) % self.n;
            }
        }
        fn is_null_pair(&self, a: &usize, b: &usize) -> bool {
            a != b
        }
    }

    impl RankingProtocol for ModRank {
        fn population_size(&self) -> usize {
            self.n
        }
        fn rank_of(&self, state: &usize) -> Option<usize> {
            Some(state + 1)
        }
    }

    #[test]
    fn initiator_responder_asymmetry() {
        let p = ModRank { n: 4 };
        let mut rng = crate::runner::rng_from_seed(7);
        let (mut a, mut b) = (2usize, 2usize);
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!((a, b), (2, 3), "only the responder moves");
    }

    #[test]
    fn rank_wraps_modulo_n() {
        let p = ModRank { n: 4 };
        let mut rng = crate::runner::rng_from_seed(7);
        let (mut a, mut b) = (3usize, 3usize);
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!((a, b), (3, 0));
    }

    #[test]
    fn default_leader_is_rank_one() {
        let p = ModRank { n: 4 };
        assert!(p.is_leader(&0), "state 0 outputs rank 1");
        assert!(!p.is_leader(&1));
    }

    #[test]
    fn null_pair_reflects_transition() {
        let p = ModRank { n: 4 };
        assert!(p.is_null_pair(&1, &2));
        assert!(!p.is_null_pair(&2, &2));
    }
}
