//! Incremental correctness detection for the ranking problem.
//!
//! A configuration is correct for ranking when each rank in `{1, …, n}` is
//! output by exactly one agent (Sec. 2 of the paper). Checking that from
//! scratch costs O(n) per interaction; [`RankTracker`] instead maintains a
//! rank histogram and a count of "good" ranks, updated in O(1) when an
//! agent's output changes, so stabilization times can be measured exactly
//! even for the Θ(n²)-time baseline at large `n`.

/// Histogram of rank outputs with an O(1) correctness predicate.
#[derive(Debug, Clone)]
pub struct RankTracker {
    /// `counts[r-1]` = number of agents currently outputting rank `r`.
    counts: Vec<u32>,
    /// Number of ranks `r` with `counts[r-1] == 1`.
    ranks_with_one: usize,
    /// Number of tracked agents (including those outputting `None`).
    agents: usize,
}

impl RankTracker {
    /// Creates a tracker for ranks `1..=n` with no agents registered yet.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ranking is undefined for an empty population");
        RankTracker { counts: vec![0; n], ranks_with_one: 0, agents: 0 }
    }

    /// The number of ranks tracked (`n`).
    pub fn rank_count(&self) -> usize {
        self.counts.len()
    }

    /// Registers one agent's initial output.
    ///
    /// # Panics
    ///
    /// Panics if a rank is outside `1..=n`.
    pub fn add(&mut self, rank: Option<usize>) {
        self.agents += 1;
        if let Some(r) = rank {
            self.bump(r, 1);
        }
    }

    /// Registers `k` agents that all share the same output — the count-based
    /// backend's bulk registration, making tracker rebuilds O(support)
    /// instead of O(n).
    ///
    /// # Panics
    ///
    /// Panics if a rank is outside `1..=n` or the count overflows `u32`.
    pub fn add_many(&mut self, rank: Option<usize>, k: u64) {
        if k == 0 {
            return;
        }
        self.agents += usize::try_from(k).expect("agent count overflows usize");
        if let Some(r) = rank {
            assert!(
                (1..=self.counts.len()).contains(&r),
                "rank {r} outside 1..={}",
                self.counts.len()
            );
            let slot = &mut self.counts[r - 1];
            if *slot == 1 {
                self.ranks_with_one -= 1;
            }
            *slot = u32::try_from(u64::from(*slot) + k).expect("rank count overflows u32");
            if *slot == 1 {
                self.ranks_with_one += 1;
            }
        }
    }

    /// Records that one agent's output changed from `before` to `after`.
    ///
    /// Calling with `before == after` is a no-op, so callers may report all
    /// interacting agents unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if a rank is outside `1..=n`.
    pub fn update(&mut self, before: Option<usize>, after: Option<usize>) {
        if before == after {
            return;
        }
        if let Some(r) = before {
            self.bump(r, -1);
        }
        if let Some(r) = after {
            self.bump(r, 1);
        }
    }

    fn bump(&mut self, rank: usize, delta: i32) {
        assert!(
            (1..=self.counts.len()).contains(&rank),
            "rank {rank} outside 1..={}",
            self.counts.len()
        );
        let slot = &mut self.counts[rank - 1];
        if *slot == 1 {
            self.ranks_with_one -= 1;
        }
        *slot = slot
            .checked_add_signed(delta)
            .expect("rank count underflow: update() called with a rank the agent did not hold");
        if *slot == 1 {
            self.ranks_with_one += 1;
        }
    }

    /// Number of agents currently outputting rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside `1..=n`.
    pub fn count_of(&self, r: usize) -> u32 {
        assert!((1..=self.counts.len()).contains(&r));
        self.counts[r - 1]
    }

    /// Number of ranks `r` with exactly one agent outputting `r` — the
    /// macroscopic "progress toward a permutation" observable recorded by
    /// [`crate::timeline`] checkpoints. Equals `rank_count()` exactly when
    /// [`RankTracker::is_correct`] holds.
    pub fn ranks_with_one(&self) -> usize {
        self.ranks_with_one
    }

    /// Whether every rank `1..=n` is output by exactly one agent.
    ///
    /// Note this implies all `n` agents output a rank (the histogram total
    /// equals the number of registered agents when they do).
    pub fn is_correct(&self) -> bool {
        self.ranks_with_one == self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "empty population")]
    fn zero_population_is_rejected() {
        RankTracker::new(0);
    }

    #[test]
    fn empty_tracker_is_incorrect() {
        let t = RankTracker::new(3);
        assert!(!t.is_correct());
    }

    #[test]
    fn permutation_is_correct() {
        let mut t = RankTracker::new(4);
        for r in [3, 1, 4, 2] {
            t.add(Some(r));
        }
        assert!(t.is_correct());
    }

    #[test]
    fn none_outputs_leave_ranks_uncovered() {
        let mut t = RankTracker::new(2);
        t.add(Some(1));
        t.add(None);
        assert!(!t.is_correct());
        t.update(None, Some(2));
        assert!(t.is_correct());
    }

    #[test]
    fn duplicate_rank_is_incorrect_until_resolved() {
        let mut t = RankTracker::new(2);
        t.add(Some(1));
        t.add(Some(1));
        assert!(!t.is_correct());
        t.update(Some(1), Some(2));
        assert!(t.is_correct());
        assert_eq!(t.count_of(1), 1);
        assert_eq!(t.count_of(2), 1);
    }

    #[test]
    fn update_with_equal_ranks_is_noop() {
        let mut t = RankTracker::new(2);
        t.add(Some(1));
        t.add(Some(2));
        t.update(Some(1), Some(1));
        assert!(t.is_correct());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_unheld_rank_panics() {
        let mut t = RankTracker::new(2);
        t.update(Some(1), None);
    }

    #[test]
    #[should_panic(expected = "outside 1..=3")]
    fn out_of_range_rank_panics() {
        let mut t = RankTracker::new(3);
        t.add(Some(4));
    }

    #[test]
    fn add_many_matches_repeated_add() {
        let mut bulk = RankTracker::new(3);
        bulk.add_many(Some(1), 2);
        bulk.add_many(Some(2), 1);
        bulk.add_many(None, 3);
        bulk.add_many(Some(3), 0);
        let mut single = RankTracker::new(3);
        for r in [Some(1), Some(1), Some(2), None, None, None] {
            single.add(r);
        }
        assert_eq!(bulk.count_of(1), single.count_of(1));
        assert_eq!(bulk.count_of(2), single.count_of(2));
        assert_eq!(bulk.count_of(3), single.count_of(3));
        assert_eq!(bulk.is_correct(), single.is_correct());
        // Bulk-added duplicates resolve through updates just like singles.
        bulk.update(Some(1), Some(3));
        assert_eq!(bulk.count_of(1), 1);
        assert_eq!(bulk.count_of(3), 1);
    }

    #[test]
    fn ranks_with_one_counts_good_ranks() {
        let mut t = RankTracker::new(3);
        assert_eq!(t.ranks_with_one(), 0);
        t.add(Some(1));
        t.add(Some(1));
        t.add(Some(3));
        assert_eq!(t.ranks_with_one(), 1);
        t.update(Some(1), Some(2));
        assert_eq!(t.ranks_with_one(), 3);
        assert!(t.is_correct());
    }

    #[test]
    fn interleaved_updates_track_exactly() {
        let mut t = RankTracker::new(3);
        t.add(Some(1));
        t.add(Some(1));
        t.add(Some(1));
        assert_eq!(t.count_of(1), 3);
        t.update(Some(1), Some(2));
        t.update(Some(1), Some(3));
        assert!(t.is_correct());
        t.update(Some(3), Some(2));
        assert!(!t.is_correct());
        assert_eq!(t.count_of(2), 2);
        t.update(Some(2), Some(3));
        assert!(t.is_correct());
    }
}
