//! Internal simulator telemetry: what the *engine* does, not what the
//! protocol does.
//!
//! Observers ([`crate::observer`]) and timelines ([`crate::timeline`]) watch
//! the protocol — leader counts, phases, rank occupancy. This module watches
//! the simulator itself: how large the collision-free batches are, how often
//! the count-based backend falls back to exact per-interaction sampling, how
//! often the memoized transition table hits, how much wall time each
//! hot-loop section costs. Those are exactly the constant-factor signals the
//! n = 10⁹ scaling work needs before any kernel is written.
//!
//! # Design
//!
//! [`MetricsSink`] mirrors the [`Observer`](crate::observer::Observer) /
//! [`FaultSchedule`](crate::fault::FaultSchedule) zero-cost idiom: the
//! simulation takes a sink as a generic parameter defaulting to
//! [`NoopMetrics`], whose `ENABLED = false` associated const folds every
//! instrumentation site out of the monomorphized hot loop. The uninstrumented
//! path compiles to the code it was before this module existed.
//!
//! Both backends report at **batch boundaries**: the count-based backend
//! after every collision-free batch, the agent-array backend every
//! [`AGENT_FLUSH_EVERY`] interactions. Nothing here ever touches the
//! simulation's RNG, so attaching a sink cannot perturb an execution —
//! outcomes are bit-identical with [`NoopMetrics`] and with a recording
//! [`Metrics`] sink.

use std::time::Duration;

use crate::record::MetricsRecord;
use crate::telemetry::{Counter, FixedHistogram};

/// How many interactions the agent-array backend performs between metric
/// flushes (and section-timer samples). Chosen so the per-window `Instant`
/// reads amortize to well under a nanosecond per interaction.
pub const AGENT_FLUSH_EVERY: u64 = 1 << 10;

/// The hot-loop sections whose wall time the sinks account separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Drawing the schedule: batch lengths, pair indices, survival lookups.
    Sample,
    /// Applying transitions and committing count deltas.
    Transition,
    /// Convergence probing: rank-tracker queries and `run_until` goals.
    Probe,
    /// Observation work: timeline snapshots and observer bookkeeping.
    Observe,
}

impl Section {
    /// All sections, in display order.
    pub const ALL: [Section; 4] =
        [Section::Sample, Section::Transition, Section::Probe, Section::Observe];

    /// Dense index for array-backed accumulators.
    pub fn index(self) -> usize {
        match self {
            Section::Sample => 0,
            Section::Transition => 1,
            Section::Probe => 2,
            Section::Observe => 3,
        }
    }

    /// Stable snake_case name for records and reports.
    pub fn label(self) -> &'static str {
        match self {
            Section::Sample => "sample",
            Section::Transition => "transition",
            Section::Probe => "probe",
            Section::Observe => "observe",
        }
    }
}

/// Engine-side telemetry hooks, called by both simulation backends.
///
/// All hooks have empty default bodies and every call site is guarded by
/// `if M::ENABLED { … }`, so a sink with `ENABLED = false` costs nothing.
/// Sinks must never draw from any RNG: executions with and without a sink
/// attached are bit-identical.
pub trait MetricsSink {
    /// Whether the simulation should call the hooks at all. Checked as an
    /// associated const so disabled sinks monomorphize away.
    const ENABLED: bool;

    /// `n` interactions were performed (counted at batch boundaries).
    fn on_interactions(&mut self, n: u64) {
        let _ = n;
    }

    /// One collision-free batch of `size` interactions completed on the
    /// count-based backend.
    fn on_batch(&mut self, size: u64) {
        let _ = size;
    }

    /// One interaction went through the exact per-interaction fallback
    /// (`step_exact_indices` on the counts backend).
    fn on_exact_step(&mut self) {}

    /// `n` uniform draws were consumed from the execution RNG.
    fn on_rng_draws(&mut self, n: u64) {
        let _ = n;
    }

    /// The memoized transition table was consulted; `hit` says whether it
    /// answered without running the protocol.
    fn on_memo_lookup(&mut self, hit: bool) {
        let _ = hit;
    }

    /// The count-based configuration compacted its tombstones; `support` and
    /// `raw_len` describe occupancy after compaction.
    fn on_compaction(&mut self, support: u64, raw_len: u64) {
        let _ = (support, raw_len);
    }

    /// `nanos` of wall time were spent in the given hot-loop section.
    fn on_section(&mut self, section: Section, nanos: u64) {
        let _ = (section, nanos);
    }

    /// A batch boundary was reached at the given total interaction count —
    /// the seam at which per-batch instrumentation (and, later, single-run
    /// parallelism) synchronizes.
    fn on_flush(&mut self, interactions: u64) {
        let _ = interactions;
    }
}

/// The default sink: `ENABLED = false`, every hook compiled away.
///
/// `Simulation<P>` and `BatchSimulation<P>` mean the `NoopMetrics`
/// instantiation; the uninstrumented hot loops contain no metrics plumbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    const ENABLED: bool = false;
}

/// The recording sink: counters and log-bucketed histograms over everything
/// the hooks report.
///
/// Built on [`Counter`] and [`FixedHistogram`] from [`crate::telemetry`];
/// merge per-trial instances with [`Metrics::merge_from`] for cross-trial
/// rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Total interactions performed.
    pub interactions: Counter,
    /// Collision-free batches completed (counts backend).
    pub batches: Counter,
    /// Interactions performed inside collision-free batches.
    pub batched_pairs: Counter,
    /// Log-bucketed distribution of collision-free batch sizes.
    pub batch_sizes: FixedHistogram,
    /// Interactions that went through the exact per-interaction fallback.
    pub exact_steps: Counter,
    /// Uniform draws consumed from the execution RNG.
    pub rng_draws: Counter,
    /// Memoized-transition lookups that hit.
    pub memo_hits: Counter,
    /// Memoized-transition lookups that missed.
    pub memo_misses: Counter,
    /// CountConfig compactions performed.
    pub compactions: Counter,
    /// Distinct live states after the most recent compaction (0 = never
    /// compacted).
    pub support: u64,
    /// Raw table length after the most recent compaction.
    pub raw_len: u64,
    /// Batch-boundary flushes observed.
    pub flushes: Counter,
    /// Wall nanoseconds per hot-loop section, indexed by
    /// [`Section::index`].
    pub section_nanos: [u64; 4],
}

impl Metrics {
    /// A fresh sink with an exponential batch-size histogram
    /// (1, 2, 4, …, 2³¹).
    pub fn new() -> Self {
        Metrics {
            interactions: Counter::new(),
            batches: Counter::new(),
            batched_pairs: Counter::new(),
            batch_sizes: FixedHistogram::exponential(1, 32),
            exact_steps: Counter::new(),
            rng_draws: Counter::new(),
            memo_hits: Counter::new(),
            memo_misses: Counter::new(),
            compactions: Counter::new(),
            support: 0,
            raw_len: 0,
            flushes: Counter::new(),
            section_nanos: [0; 4],
        }
    }

    /// Folds another sink's totals into this one (cross-trial merging).
    pub fn merge_from(&mut self, other: &Metrics) {
        self.interactions.add(other.interactions.get());
        self.batches.add(other.batches.get());
        self.batched_pairs.add(other.batched_pairs.get());
        self.batch_sizes.merge_from(&other.batch_sizes);
        self.exact_steps.add(other.exact_steps.get());
        self.rng_draws.add(other.rng_draws.get());
        self.memo_hits.add(other.memo_hits.get());
        self.memo_misses.add(other.memo_misses.get());
        self.compactions.add(other.compactions.get());
        if other.support != 0 {
            self.support = other.support;
            self.raw_len = other.raw_len;
        }
        self.flushes.add(other.flushes.get());
        for (mine, theirs) in self.section_nanos.iter_mut().zip(other.section_nanos) {
            *mine += theirs;
        }
    }

    /// Total interactions recorded so far — the numerator a caller needs to
    /// report interactions-per-second against its own wall clock.
    pub fn total_interactions(&self) -> u64 {
        self.interactions.get()
    }

    /// Fraction of interactions that went through the exact fallback
    /// (`exact / (exact + batched)`); 0 when nothing ran.
    pub fn fallback_rate(&self) -> f64 {
        let exact = self.exact_steps.get();
        let total = exact + self.batched_pairs.get();
        if total == 0 {
            0.0
        } else {
            exact as f64 / total as f64
        }
    }

    /// Fraction of memo lookups that hit; 0 when the memo was never
    /// consulted.
    pub fn memo_hit_rate(&self) -> f64 {
        let hits = self.memo_hits.get();
        let total = hits + self.memo_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Wall seconds attributed to one hot-loop section.
    pub fn section_seconds(&self, section: Section) -> f64 {
        Duration::from_nanos(self.section_nanos[section.index()]).as_secs_f64()
    }

    /// The batch-size histogram as a flat `bound:count,…` string (only
    /// non-empty buckets; the overflow bucket encodes as `inf`), or `None`
    /// when no batch was recorded.
    pub fn encode_batch_hist(&self) -> Option<String> {
        encode_histogram(&self.batch_sizes)
    }

    /// Builds the schema-v5 JSONL row for this sink.
    ///
    /// `trial` is `None` for a merged cross-trial row.
    #[allow(clippy::too_many_arguments)]
    pub fn to_record(
        &self,
        experiment: &str,
        protocol: &str,
        backend: &str,
        n: u64,
        trial: Option<u64>,
        seed: u64,
        wall_s: f64,
    ) -> MetricsRecord {
        MetricsRecord {
            experiment: experiment.to_string(),
            protocol: protocol.to_string(),
            backend: backend.to_string(),
            n,
            trial,
            seed,
            wall_s,
            interactions: self.interactions.get(),
            batches: self.batches.get(),
            batched_pairs: self.batched_pairs.get(),
            exact_steps: self.exact_steps.get(),
            rng_draws: self.rng_draws.get(),
            memo_hits: self.memo_hits.get(),
            memo_misses: self.memo_misses.get(),
            compactions: self.compactions.get(),
            support: self.support,
            raw_len: self.raw_len,
            flushes: self.flushes.get(),
            batch_hist: self.encode_batch_hist(),
            sample_s: self.section_seconds(Section::Sample),
            transition_s: self.section_seconds(Section::Transition),
            probe_s: self.section_seconds(Section::Probe),
            observe_s: self.section_seconds(Section::Observe),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSink for Metrics {
    const ENABLED: bool = true;

    fn on_interactions(&mut self, n: u64) {
        self.interactions.add(n);
    }

    fn on_batch(&mut self, size: u64) {
        self.batches.incr();
        self.batched_pairs.add(size);
        self.batch_sizes.record(size);
    }

    fn on_exact_step(&mut self) {
        self.exact_steps.incr();
    }

    fn on_rng_draws(&mut self, n: u64) {
        self.rng_draws.add(n);
    }

    fn on_memo_lookup(&mut self, hit: bool) {
        if hit {
            self.memo_hits.incr();
        } else {
            self.memo_misses.incr();
        }
    }

    fn on_compaction(&mut self, support: u64, raw_len: u64) {
        self.compactions.incr();
        self.support = support;
        self.raw_len = raw_len;
    }

    fn on_section(&mut self, section: Section, nanos: u64) {
        self.section_nanos[section.index()] += nanos;
    }

    fn on_flush(&mut self, _interactions: u64) {
        self.flushes.incr();
    }
}

/// A `&mut` sink forwards to its target, so callers can lend a sink to a
/// simulation and keep ownership for reading afterwards.
impl<M: MetricsSink> MetricsSink for &mut M {
    const ENABLED: bool = M::ENABLED;

    fn on_interactions(&mut self, n: u64) {
        (**self).on_interactions(n);
    }

    fn on_batch(&mut self, size: u64) {
        (**self).on_batch(size);
    }

    fn on_exact_step(&mut self) {
        (**self).on_exact_step();
    }

    fn on_rng_draws(&mut self, n: u64) {
        (**self).on_rng_draws(n);
    }

    fn on_memo_lookup(&mut self, hit: bool) {
        (**self).on_memo_lookup(hit);
    }

    fn on_compaction(&mut self, support: u64, raw_len: u64) {
        (**self).on_compaction(support, raw_len);
    }

    fn on_section(&mut self, section: Section, nanos: u64) {
        (**self).on_section(section, nanos);
    }

    fn on_flush(&mut self, interactions: u64) {
        (**self).on_flush(interactions);
    }
}

/// Flat-encodes a histogram as `bound:count,…` over non-empty buckets, the
/// overflow bucket as `inf:count`; `None` when the histogram is empty.
/// (Same flat-string idiom as timeline phase occupancy, so the v5 record
/// stays a flat JSON object.) Delegates to the one shared codec in
/// [`analysis::histogram`] so every log₂-bucket histogram in the workspace
/// serializes identically.
pub fn encode_histogram(hist: &FixedHistogram) -> Option<String> {
    analysis::encode_buckets(hist.bounds(), hist.counts())
}

/// Decodes an [`encode_histogram`] string back to `(bound-label, count)`
/// pairs, in encoded order. Returns `None` on malformed input.
pub fn decode_histogram(s: &str) -> Option<Vec<(String, u64)>> {
    analysis::decode_buckets(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        // Read through a runtime binding so the zero-cost contract is
        // asserted on the value generic code actually sees.
        let enabled = [<NoopMetrics as MetricsSink>::ENABLED];
        assert_eq!(enabled, [false]);
    }

    #[test]
    fn recording_sink_accumulates() {
        let mut m = Metrics::new();
        m.on_interactions(10);
        m.on_batch(8);
        m.on_batch(2);
        m.on_exact_step();
        m.on_rng_draws(21);
        m.on_memo_lookup(true);
        m.on_memo_lookup(true);
        m.on_memo_lookup(false);
        m.on_compaction(3, 7);
        m.on_section(Section::Sample, 1_000);
        m.on_section(Section::Sample, 500);
        m.on_flush(10);
        assert_eq!(m.interactions.get(), 10);
        assert_eq!(m.batches.get(), 2);
        assert_eq!(m.batched_pairs.get(), 10);
        assert_eq!(m.exact_steps.get(), 1);
        assert_eq!(m.rng_draws.get(), 21);
        assert!((m.memo_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.compactions.get(), 1);
        assert_eq!((m.support, m.raw_len), (3, 7));
        assert_eq!(m.section_nanos[Section::Sample.index()], 1_500);
        assert_eq!(m.flushes.get(), 1);
        assert!((m.fallback_rate() - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn rates_are_zero_when_nothing_ran() {
        let m = Metrics::new();
        assert_eq!(m.fallback_rate(), 0.0);
        assert_eq!(m.memo_hit_rate(), 0.0);
        assert_eq!(m.encode_batch_hist(), None);
    }

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = Metrics::new();
        a.on_interactions(5);
        a.on_batch(4);
        a.on_section(Section::Probe, 100);
        let mut b = Metrics::new();
        b.on_interactions(7);
        b.on_batch(4);
        b.on_batch(1_000_000);
        b.on_compaction(2, 9);
        b.on_section(Section::Probe, 50);
        a.merge_from(&b);
        assert_eq!(a.interactions.get(), 12);
        assert_eq!(a.batches.get(), 3);
        assert_eq!(a.batched_pairs.get(), 1_000_008);
        assert_eq!(a.batch_sizes.total(), 3);
        assert_eq!((a.support, a.raw_len), (2, 9));
        assert_eq!(a.section_nanos[Section::Probe.index()], 150);
        // The two size-4 batches land in the same bucket.
        let encoded = a.encode_batch_hist().unwrap();
        assert!(encoded.starts_with("4:2,"), "{encoded}");
    }

    #[test]
    fn histogram_encoding_round_trips() {
        let mut h = FixedHistogram::exponential(1, 4);
        for v in [1, 2, 2, 5, 100] {
            h.record(v);
        }
        let encoded = encode_histogram(&h).unwrap();
        assert_eq!(encoded, "1:1,2:2,8:1,inf:1");
        let decoded = decode_histogram(&encoded).unwrap();
        assert_eq!(
            decoded,
            vec![
                ("1".to_string(), 1),
                ("2".to_string(), 2),
                ("8".to_string(), 1),
                ("inf".to_string(), 1)
            ]
        );
        assert_eq!(decode_histogram("nonsense"), None);
        assert_eq!(decode_histogram(":3"), None);
    }

    #[test]
    fn section_labels_and_indices_are_stable() {
        for (idx, s) in Section::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), idx);
        }
        assert_eq!(Section::ALL.map(Section::label), ["sample", "transition", "probe", "observe"]);
    }

    #[test]
    fn borrowed_sink_forwards() {
        let mut m = Metrics::new();
        {
            let mut lent = &mut m;
            MetricsSink::on_interactions(&mut lent, 3);
            MetricsSink::on_batch(&mut lent, 3);
        }
        assert_eq!(m.interactions.get(), 3);
        assert_eq!(m.batches.get(), 1);
        const { assert!(<&mut Metrics as MetricsSink>::ENABLED) };
    }
}
