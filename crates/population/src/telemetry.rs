//! Lightweight metrics for simulation runs: counters, fixed-bucket
//! histograms, and throughput tracking, plus a ready-made
//! [`TelemetryObserver`] that aggregates them over an execution.
//!
//! Everything here is allocation-light and dependency-free — the primitives
//! are meant to sit inside an [`Observer`] on the hot path.
//! Statistical post-processing (quantiles, ECDFs, confidence intervals) lives
//! in the `analysis` crate; this module only *collects*.

use std::time::{Duration, Instant};

use crate::observer::Observer;
use crate::protocol::Protocol;

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A histogram over `u64` observations with fixed, caller-chosen bucket
/// upper bounds (plus an implicit overflow bucket).
///
/// Bucket `k` counts observations `v` with `v <= bounds[k]` (and
/// `v > bounds[k-1]` for `k > 0`); observations above the last bound land in
/// the overflow bucket. Bounds are fixed at construction — recording never
/// allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl FixedHistogram {
    /// Creates a histogram from strictly increasing bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1; // + overflow
        FixedHistogram { bounds, counts: vec![0; buckets] }
    }

    /// A histogram with exponentially growing bounds `base, 2·base, 4·base,
    /// …` (`buckets` of them).
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` or `buckets == 0`.
    pub fn exponential(base: u64, buckets: usize) -> Self {
        assert!(base > 0 && buckets > 0, "exponential histogram needs base > 0 and buckets > 0");
        let bounds = (0..buckets as u32).map(|k| base.saturating_mul(1 << k)).collect();
        Self::new(bounds)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
    }

    /// Adds another histogram's per-bucket counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bounds.
    pub fn merge_from(&mut self, other: &FixedHistogram) {
        assert_eq!(self.bounds, other.bounds, "can only merge histograms with matching bounds");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The bucket upper bounds (the overflow bucket has no bound).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count of observations in the overflow bucket (above the last bound).
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("histogram always has an overflow bucket")
    }
}

/// Wall-clock throughput of an execution segment, in interactions per
/// second.
///
/// Start a meter before the hot loop, then [`ThroughputMeter::finish`] it
/// with the number of interactions performed.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputMeter {
    started: Instant,
}

impl ThroughputMeter {
    /// Starts timing now.
    pub fn start() -> Self {
        ThroughputMeter { started: Instant::now() }
    }

    /// Stops timing and reports throughput over `interactions` events.
    pub fn finish(self, interactions: u64) -> Throughput {
        Throughput { interactions, wall: self.started.elapsed() }
    }
}

/// A completed throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Interactions performed in the measured segment.
    pub interactions: u64,
    /// Wall-clock duration of the segment.
    pub wall: Duration,
}

impl Throughput {
    /// Interactions per wall-clock second (0 for an empty or instantaneous
    /// segment).
    pub fn per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.interactions as f64 / secs
        } else {
            0.0
        }
    }
}

/// One recorded phase transition (see
/// [`Protocol::phase_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTransition {
    /// The agent that changed phase.
    pub agent: usize,
    /// Phase before the interaction.
    pub from: Option<&'static str>,
    /// Phase after the interaction.
    pub to: Option<&'static str>,
    /// Total interaction count when the transition happened.
    pub interactions: u64,
}

/// An [`Observer`] that aggregates the full event stream into telemetry:
/// interaction/effective-interaction/convergence counters, a histogram of
/// gaps between effective interactions, and a log of phase transitions.
///
/// The gap histogram is the interesting part for silent protocols: as a
/// configuration approaches silence, effective interactions thin out and the
/// gaps migrate into the high buckets — the histogram is a fingerprint of
/// convergence behavior that a single hitting time can't show.
#[derive(Debug, Clone)]
pub struct TelemetryObserver {
    /// Total interactions observed.
    pub interactions: Counter,
    /// Effective (non-null-pair) interactions observed.
    pub effective: Counter,
    /// Batches ([`Simulation::run`](crate::Simulation::run) calls) observed.
    pub batches: Counter,
    /// Goal-directed runs that converged.
    pub converged: Counter,
    /// Goal-directed runs that exhausted their budget.
    pub exhausted: Counter,
    /// Fault-plan firings observed (see [`crate::fault`]).
    pub faults: Counter,
    /// Distribution of interaction-count gaps between successive effective
    /// interactions.
    pub effective_gaps: FixedHistogram,
    /// Every phase transition, in order of occurrence.
    pub phase_transitions: Vec<PhaseTransition>,
    last_effective_at: u64,
}

impl TelemetryObserver {
    /// A fresh observer with an exponential gap histogram (1, 2, 4, …, 2¹⁹).
    pub fn new() -> Self {
        TelemetryObserver {
            interactions: Counter::new(),
            effective: Counter::new(),
            batches: Counter::new(),
            converged: Counter::new(),
            exhausted: Counter::new(),
            faults: Counter::new(),
            effective_gaps: FixedHistogram::exponential(1, 20),
            phase_transitions: Vec::new(),
            last_effective_at: 0,
        }
    }
}

impl Default for TelemetryObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> Observer<P> for TelemetryObserver {
    const WATCHES_STATE_CHANGES: bool = true;
    const WATCHES_PHASES: bool = true;

    fn on_interaction(&mut self, _i: usize, _j: usize, _interactions: u64) {
        self.interactions.incr();
    }

    fn on_batch(&mut self, _len: u64, _interactions: u64) {
        self.batches.incr();
    }

    fn on_state_change(&mut self, _i: usize, _j: usize, interactions: u64) {
        self.effective.incr();
        self.effective_gaps.record(interactions - self.last_effective_at);
        self.last_effective_at = interactions;
    }

    fn on_phase_transition(
        &mut self,
        agent: usize,
        from: Option<&'static str>,
        to: Option<&'static str>,
        interactions: u64,
    ) {
        self.phase_transitions.push(PhaseTransition { agent, from, to, interactions });
    }

    fn on_fault(&mut self, _agents: usize, _interactions: u64) {
        self.faults.incr();
    }

    fn on_converged(&mut self, _interactions: u64) {
        self.converged.incr();
    }

    fn on_exhausted(&mut self, _interactions: u64) {
        self.exhausted.incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let mut h = FixedHistogram::new(vec![1, 10, 100]);
        for v in [0, 1, 2, 10, 11, 100, 101, 1000] {
            h.record(v);
        }
        // <=1: {0,1}; <=10: {2,10}; <=100: {11,100}; overflow: {101,1000}.
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn exponential_bounds_double() {
        let h = FixedHistogram::exponential(4, 3);
        assert_eq!(h.bounds(), &[4, 8, 16]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        FixedHistogram::new(vec![5, 5]);
    }

    #[test]
    fn throughput_divides_by_wall_time() {
        let t = Throughput { interactions: 1000, wall: Duration::from_millis(500) };
        assert!((t.per_second() - 2000.0).abs() < 1e-6);
        let zero = Throughput { interactions: 1000, wall: Duration::ZERO };
        assert_eq!(zero.per_second(), 0.0);
    }

    #[test]
    fn meter_measures_elapsed_time() {
        let meter = ThroughputMeter::start();
        std::thread::sleep(Duration::from_millis(2));
        let t = meter.finish(10);
        assert!(t.wall >= Duration::from_millis(2));
        assert!(t.per_second() > 0.0);
    }
}
