//! One interface over the two simulation backends.
//!
//! [`SimulationBackend`] abstracts what an execution driver needs —
//! advancing by interactions, goal-directed runs, stable-ranking runs,
//! counting agents — so experiment code (the CLI, the scaling-frontier
//! bench, equivalence tests) can be written once and instantiated with
//! either the agent-array [`Simulation`] or the count-based
//! [`BatchSimulation`].
//!
//! The two backends realize the **same stochastic process** (on the
//! complete graph; see [`crate::counts`] for the lumping argument) but
//! consume randomness differently, so for a fixed seed they produce
//! different — identically distributed — trajectories. Equivalence between
//! them is therefore a statistical statement, checked by the
//! `backend_equivalence` integration tests, not a bitwise one.

use std::hash::Hash;

use crate::counts::{BatchSimulation, CountConfig};
use crate::fault::FaultSchedule;
use crate::metrics::MetricsSink;
use crate::observer::Observer;
use crate::protocol::{Protocol, RankingProtocol};
use crate::scheduler::SchedulerPolicy;
use crate::simulation::{RunOutcome, Simulation};

/// Operations every simulation backend supports.
///
/// Goal predicates are phrased over per-agent states (`state_pred`) with a
/// target count, rather than over raw configurations, because that is the
/// common language of the two representations: the agent backend counts
/// matching agents, the count backend sums matching counts.
pub trait SimulationBackend<P: Protocol> {
    /// Stable backend name for records and reports (`"agents"`, `"counts"`).
    const NAME: &'static str;

    /// Number of agents.
    fn population_size(&self) -> usize;

    /// Interactions performed so far.
    fn interactions(&self) -> u64;

    /// Parallel time elapsed (interactions / n).
    fn parallel_time(&self) -> f64 {
        self.interactions() as f64 / self.population_size() as f64
    }

    /// Runs exactly `k` further interactions.
    fn run(&mut self, k: u64);

    /// Runs until exactly `target` agents satisfy `pred`, or until the
    /// total interaction count reaches `max_interactions`.
    ///
    /// On the count backend the goal is checked at batch boundaries, so the
    /// reported convergence point may overshoot by `O(√n)` interactions
    /// (`O(1/√n)` parallel time); the agent backend checks every
    /// interaction.
    fn run_until_state_count(
        &mut self,
        max_interactions: u64,
        pred: &mut dyn FnMut(&P::State) -> bool,
        target: u64,
    ) -> RunOutcome;

    /// Runs to a stable ranking (see
    /// [`Simulation::run_until_stably_ranked`]); both backends check every
    /// interaction, with identical convergence semantics.
    fn run_until_stably_ranked(&mut self, max_interactions: u64, confirm_window: u64) -> RunOutcome
    where
        P: RankingProtocol;

    /// The current configuration compressed to state counts.
    fn state_counts(&self) -> CountConfig<P::State>
    where
        P::State: Eq + Hash;
}

impl<P, O, F, S, M> SimulationBackend<P> for Simulation<P, O, F, S, M>
where
    P: Protocol,
    O: Observer<P>,
    F: FaultSchedule<P>,
    S: SchedulerPolicy,
    M: MetricsSink,
{
    const NAME: &'static str = "agents";

    fn population_size(&self) -> usize {
        self.population_size()
    }

    fn interactions(&self) -> u64 {
        self.interactions()
    }

    fn run(&mut self, k: u64) {
        Simulation::run(self, k);
    }

    fn run_until_state_count(
        &mut self,
        max_interactions: u64,
        pred: &mut dyn FnMut(&P::State) -> bool,
        target: u64,
    ) -> RunOutcome {
        Simulation::run_until(self, max_interactions, |states| {
            states.iter().filter(|s| pred(s)).count() as u64 == target
        })
    }

    fn run_until_stably_ranked(&mut self, max_interactions: u64, confirm_window: u64) -> RunOutcome
    where
        P: RankingProtocol,
    {
        Simulation::run_until_stably_ranked(self, max_interactions, confirm_window)
    }

    fn state_counts(&self) -> CountConfig<P::State>
    where
        P::State: Eq + Hash,
    {
        CountConfig::from_states(self.states())
    }
}

impl<P, O, F, M> SimulationBackend<P> for BatchSimulation<P, O, F, M>
where
    P: Protocol,
    P::State: Eq + Hash,
    O: Observer<P>,
    F: FaultSchedule<P>,
    M: MetricsSink,
{
    const NAME: &'static str = "counts";

    fn population_size(&self) -> usize {
        self.population_size()
    }

    fn interactions(&self) -> u64 {
        self.interactions()
    }

    fn run(&mut self, k: u64) {
        BatchSimulation::run(self, k);
    }

    fn run_until_state_count(
        &mut self,
        max_interactions: u64,
        pred: &mut dyn FnMut(&P::State) -> bool,
        target: u64,
    ) -> RunOutcome {
        BatchSimulation::run_until(self, max_interactions, |counts| {
            counts.iter().filter(|(s, _)| pred(s)).map(|(_, c)| c).sum::<u64>() == target
        })
    }

    fn run_until_stably_ranked(&mut self, max_interactions: u64, confirm_window: u64) -> RunOutcome
    where
        P: RankingProtocol,
    {
        BatchSimulation::run_until_stably_ranked(self, max_interactions, confirm_window)
    }

    fn state_counts(&self) -> CountConfig<P::State>
    where
        P::State: Eq + Hash,
    {
        self.counts().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum Fight {
        Leader,
        Follower,
    }

    struct FightProtocol;
    impl Protocol for FightProtocol {
        type State = Fight;
        const DETERMINISTIC_INTERACT: bool = true;
        fn interact(&self, a: &mut Fight, b: &mut Fight, _rng: &mut SmallRng) {
            if *a == Fight::Leader && *b == Fight::Leader {
                *b = Fight::Follower;
            }
        }
    }

    /// The generic driver the trait exists for: run any backend to a unique
    /// leader.
    fn elect<B: SimulationBackend<FightProtocol>>(sim: &mut B, budget: u64) -> RunOutcome {
        sim.run_until_state_count(budget, &mut |s| *s == Fight::Leader, 1)
    }

    #[test]
    fn both_backends_elect_through_the_trait() {
        let n = 64;
        let mut agents = Simulation::new(FightProtocol, vec![Fight::Leader; n], 9);
        let mut counts = BatchSimulation::new(FightProtocol, vec![Fight::Leader; n], 9);
        assert!(elect(&mut agents, 200_000).is_converged());
        assert!(elect(&mut counts, 200_000).is_converged());
        assert_eq!(agents.state_counts().count_of(&Fight::Leader), 1);
        assert_eq!(counts.state_counts().count_of(&Fight::Leader), 1);
        assert!(SimulationBackend::parallel_time(&agents) > 0.0);
        assert!(SimulationBackend::parallel_time(&counts) > 0.0);
        assert_eq!(<Simulation<FightProtocol> as SimulationBackend<FightProtocol>>::NAME, "agents");
        assert_eq!(
            <BatchSimulation<FightProtocol> as SimulationBackend<FightProtocol>>::NAME,
            "counts"
        );
    }

    #[test]
    fn run_advances_exactly_k_interactions_on_both() {
        let n = 32;
        let mut agents = Simulation::new(FightProtocol, vec![Fight::Leader; n], 4);
        let mut counts = BatchSimulation::new(FightProtocol, vec![Fight::Leader; n], 4);
        SimulationBackend::run(&mut agents, 777);
        SimulationBackend::run(&mut counts, 777);
        assert_eq!(SimulationBackend::interactions(&agents), 777);
        assert_eq!(SimulationBackend::interactions(&counts), 777);
        assert_eq!(agents.state_counts().population(), counts.state_counts().population(),);
    }
}
