//! Multi-trial experiment driver.
//!
//! Expected-time rows of the paper's Table 1 are estimated by running many
//! independent executions; WHP rows by high quantiles of the same sample.
//! The runner derives per-trial seeds deterministically from a base seed so
//! every experiment in the repository is reproducible bit-for-bit.
//!
//! Each trial is reported as a [`TrialOutcome`] carrying the full
//! [`RunOutcome`] plus wall-clock timing, convertible to a versioned
//! [`RunRecord`] for JSONL experiment logs;
//! [`ConvergenceSample`] is the statistical view the tables summarize.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::protocol::RankingProtocol;
use crate::record::RunRecord;
use crate::scheduler::{AnyScheduler, Reliability};
use crate::simulation::{RunOutcome, Simulation};
use crate::telemetry::Throughput;

/// Creates the crate's standard RNG from a 64-bit seed.
///
/// The seed is diffused through SplitMix64 first so that structured seeds
/// (0, 1, 2, …) produce unrelated streams.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed))
}

/// Derives the seed for trial `trial` of an experiment from a base seed.
///
/// Uses two rounds of SplitMix64 mixing, so `(base, trial)` pairs map to
/// well-separated seeds.
pub fn derive_seed(base: u64, trial: u64) -> u64 {
    splitmix64(splitmix64(base).wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(trial + 1)))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of worker threads [`Runner::measure_ranking_auto`] uses: the
/// machine's available parallelism, or 1 if that cannot be determined.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Settings shared by all trials of one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSettings {
    /// Number of independent executions.
    pub trials: u64,
    /// Base seed; trial `i` uses [`derive_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Per-trial interaction budget; executions that exceed it are recorded
    /// as exhausted rather than aborting the experiment.
    pub max_interactions: u64,
    /// Extra interactions a ranked configuration must survive to count as
    /// converged (see [`Simulation::run_until_stably_ranked`]).
    pub confirm_window: u64,
}

impl TrialSettings {
    /// Conventional settings: `trials` runs with a budget of
    /// `max_interactions` and a confirmation window of one parallel time unit
    /// per `n` agents chosen by the caller (pass the window explicitly if a
    /// different one is needed).
    pub fn new(trials: u64, base_seed: u64, max_interactions: u64, confirm_window: u64) -> Self {
        TrialSettings { trials, base_seed, max_interactions, confirm_window }
    }
}

/// One completed trial: its index, population size, full outcome, and
/// wall-clock duration.
///
/// The outcome and population size are deterministic in `(settings, trial)`;
/// the wall time is a measurement of this machine, carried along so
/// experiment records can report throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Trial index within the experiment.
    pub trial: u64,
    /// Population size of this trial.
    pub n: usize,
    /// How the execution ended (converged or exhausted, with interaction
    /// counts either way).
    pub outcome: RunOutcome,
    /// Wall-clock time the execution took.
    pub wall: Duration,
}

impl TrialOutcome {
    /// Parallel time (interactions / n) at convergence or exhaustion.
    pub fn parallel_time(&self) -> f64 {
        self.outcome.parallel_time(self.n)
    }

    /// Wall-clock throughput of this trial.
    pub fn throughput(&self) -> Throughput {
        Throughput { interactions: self.outcome.interactions(), wall: self.wall }
    }

    /// Converts to a versioned experiment record (see [`crate::record`]).
    ///
    /// `experiment` and `protocol` name what was measured; `h` is the depth
    /// parameter for protocols that have one; `base_seed` is the
    /// experiment-level seed the trial's seeds were derived from.
    pub fn to_record(
        &self,
        experiment: &str,
        protocol: &str,
        h: Option<u64>,
        base_seed: u64,
    ) -> RunRecord {
        RunRecord {
            experiment: experiment.to_string(),
            protocol: protocol.to_string(),
            n: self.n as u64,
            h,
            trial: self.trial,
            seed: base_seed,
            outcome: self.outcome,
            wall_s: self.wall.as_secs_f64(),
            availability: None,
            faults: None,
            scheduler: None,
            omission: None,
            starve_window: None,
        }
    }
}

/// The outcome of a batch of trials: per-trial parallel stabilization times
/// of converged trials, plus the interaction counts reached by trials that
/// exhausted their budget.
///
/// Exhausted trials keep their interaction counts (rather than being reduced
/// to a tally) so that censored-data diagnostics remain possible: a trial
/// that died at 99% of a tight budget and one that was nowhere close are
/// different facts about a protocol.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceSample {
    /// Parallel time (interactions / n) of each converged trial.
    pub parallel_times: Vec<f64>,
    /// Total interactions performed by each trial that did not converge
    /// within the interaction budget.
    pub exhausted_interactions: Vec<u64>,
}

impl ConvergenceSample {
    /// Builds the statistical view of a batch of [`TrialOutcome`]s.
    pub fn from_trials(trials: &[TrialOutcome]) -> Self {
        let mut parallel_times = Vec::new();
        let mut exhausted_interactions = Vec::new();
        for t in trials {
            match t.outcome {
                RunOutcome::Converged { .. } => parallel_times.push(t.parallel_time()),
                RunOutcome::Exhausted { interactions } => exhausted_interactions.push(interactions),
            }
        }
        ConvergenceSample { parallel_times, exhausted_interactions }
    }

    /// Number of trials that did not converge within the interaction budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted_interactions.len() as u64
    }

    /// Whether every trial converged.
    pub fn all_converged(&self) -> bool {
        self.exhausted_interactions.is_empty()
    }

    /// Number of converged trials.
    pub fn len(&self) -> usize {
        self.parallel_times.len()
    }

    /// Whether no trial converged.
    pub fn is_empty(&self) -> bool {
        self.parallel_times.is_empty()
    }
}

/// Runs batches of independent ranking executions.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    settings: TrialSettings,
}

impl Runner {
    /// Creates a runner with the given settings.
    pub fn new(settings: TrialSettings) -> Self {
        Runner { settings }
    }

    /// The runner's settings.
    pub fn settings(&self) -> &TrialSettings {
        &self.settings
    }

    /// Runs every trial sequentially, returning full per-trial outcomes.
    ///
    /// `make` receives the trial index and a seeded RNG (for building
    /// adversarial initial configurations) and returns the protocol instance
    /// plus initial configuration for that trial. The execution itself uses
    /// an independent seed derived from the same trial index.
    pub fn run_trials<P, F>(&self, mut make: F) -> Vec<TrialOutcome>
    where
        P: RankingProtocol,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>),
    {
        (0..self.settings.trials).map(|trial| self.one_trial(trial, &mut make)).collect()
    }

    /// Like [`Runner::run_trials`], but distributing trials over `threads`
    /// worker threads.
    ///
    /// Produces the **same outcomes** as the sequential version for the same
    /// settings (per-trial seeds do not depend on scheduling); only wall
    /// times differ. `make` is shared by the workers, so it takes `&self`
    /// here (any per-trial randomness should come from the provided RNG,
    /// which is seeded per trial).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_trials_parallel<P, F>(&self, threads: usize, make: F) -> Vec<TrialOutcome>
    where
        P: RankingProtocol + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>) + Sync,
    {
        assert!(threads > 0, "at least one worker thread is required");
        let make = &make;
        // Workers take strided slices of the trial range; outcomes are
        // reassembled in trial order afterwards so the output is
        // deterministic.
        let mut results: Vec<TrialOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let runner = *self;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut trial = worker as u64;
                    while trial < runner.settings.trials {
                        let mut make_fn = |t: u64, rng: &mut SmallRng| make(t, rng);
                        out.push(runner.one_trial(trial, &mut make_fn));
                        trial += threads as u64;
                    }
                    out
                });
                handles.push(handle);
            }
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        results.sort_unstable_by_key(|t| t.trial);
        results
    }

    /// Measures stabilization time over independent trials.
    ///
    /// # Examples
    ///
    /// ```
    /// use population::{Runner, TrialSettings, Protocol, RankingProtocol};
    /// use rand::rngs::SmallRng;
    ///
    /// // Protocol 1 of the paper in miniature: rank collision bumps the responder.
    /// struct ModRank { n: usize }
    /// impl Protocol for ModRank {
    ///     type State = usize;
    ///     fn interact(&self, a: &mut usize, b: &mut usize, _rng: &mut SmallRng) {
    ///         if a == b { *b = (*b + 1) % self.n; }
    ///     }
    /// }
    /// impl RankingProtocol for ModRank {
    ///     fn population_size(&self) -> usize { self.n }
    ///     fn rank_of(&self, s: &usize) -> Option<usize> { Some(s + 1) }
    /// }
    ///
    /// let runner = Runner::new(TrialSettings::new(5, 42, 1_000_000, 0));
    /// let sample = runner.measure_ranking(|_, _| (ModRank { n: 8 }, vec![0usize; 8]));
    /// assert!(sample.all_converged());
    /// assert_eq!(sample.len(), 5);
    /// ```
    pub fn measure_ranking<P, F>(&self, make: F) -> ConvergenceSample
    where
        P: RankingProtocol,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>),
    {
        ConvergenceSample::from_trials(&self.run_trials(make))
    }

    /// Like [`Runner::measure_ranking`], but distributing trials over
    /// `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn measure_ranking_parallel<P, F>(&self, threads: usize, make: F) -> ConvergenceSample
    where
        P: RankingProtocol + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>) + Sync,
    {
        ConvergenceSample::from_trials(&self.run_trials_parallel(threads, make))
    }

    /// Like [`Runner::measure_ranking_parallel`] with the thread count taken
    /// from the machine ([`auto_threads`], i.e.
    /// `std::thread::available_parallelism()`).
    pub fn measure_ranking_auto<P, F>(&self, make: F) -> ConvergenceSample
    where
        P: RankingProtocol + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>) + Sync,
    {
        self.measure_ranking_parallel(auto_threads(), make)
    }

    /// [`Runner::run_trials`] with a recording [`Metrics`] sink per trial.
    /// Sequential; the trial outcomes are identical to the uninstrumented
    /// runner's — metrics never touch the simulation RNG, so instrumenting
    /// a run cannot change what it computes.
    pub fn run_trials_metrics<P, F>(&self, mut make: F) -> Vec<(TrialOutcome, Metrics)>
    where
        P: RankingProtocol,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>),
    {
        (0..self.settings.trials)
            .map(|trial| {
                let mut config_rng = rng_from_seed(derive_seed(self.settings.base_seed, 2 * trial));
                let (protocol, initial) = make(trial, &mut config_rng);
                let n = initial.len();
                let mut metrics = Metrics::new();
                let mut sim = Simulation::new(
                    protocol,
                    initial,
                    derive_seed(self.settings.base_seed, 2 * trial + 1),
                )
                .with_metrics(&mut metrics);
                let started = Instant::now();
                let outcome = sim.run_until_stably_ranked(
                    self.settings.max_interactions,
                    self.settings.confirm_window,
                );
                let wall = started.elapsed();
                drop(sim);
                (TrialOutcome { trial, n, outcome, wall }, metrics)
            })
            .collect()
    }

    /// Runs one seeded trial to stable ranking (or budget exhaustion).
    fn one_trial<P, F>(&self, trial: u64, make: &mut F) -> TrialOutcome
    where
        P: RankingProtocol,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>),
    {
        let mut config_rng = rng_from_seed(derive_seed(self.settings.base_seed, 2 * trial));
        let (protocol, initial) = make(trial, &mut config_rng);
        let n = initial.len();
        let mut sim =
            Simulation::new(protocol, initial, derive_seed(self.settings.base_seed, 2 * trial + 1));
        let started = Instant::now();
        let outcome = sim
            .run_until_stably_ranked(self.settings.max_interactions, self.settings.confirm_window);
        TrialOutcome { trial, n, outcome, wall: started.elapsed() }
    }

    /// Like [`Runner::run_trials_parallel`], but each trial also picks a
    /// scheduler policy and reliability model — the robustness-workload
    /// driver. `make` returns `(protocol, initial, scheduler, reliability)`;
    /// with [`AnyScheduler::uniform`] and [`Reliability::perfect`] the
    /// outcomes match [`Runner::run_trials`] exactly (same seed derivation,
    /// same draws).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_trials_scheduled_parallel<P, F>(&self, threads: usize, make: F) -> Vec<TrialOutcome>
    where
        P: RankingProtocol + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>, AnyScheduler, Reliability) + Sync,
    {
        assert!(threads > 0, "at least one worker thread is required");
        let make = &make;
        let mut results: Vec<TrialOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let runner = *self;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut trial = worker as u64;
                    while trial < runner.settings.trials {
                        out.push(runner.one_trial_scheduled(trial, make));
                        trial += threads as u64;
                    }
                    out
                });
                handles.push(handle);
            }
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        results.sort_unstable_by_key(|t| t.trial);
        results
    }

    fn one_trial_scheduled<P, F>(&self, trial: u64, make: &F) -> TrialOutcome
    where
        P: RankingProtocol,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>, AnyScheduler, Reliability),
    {
        let mut config_rng = rng_from_seed(derive_seed(self.settings.base_seed, 2 * trial));
        let (protocol, initial, policy, reliability) = make(trial, &mut config_rng);
        let n = initial.len();
        let mut sim = Simulation::with_policy(
            protocol,
            initial,
            policy,
            derive_seed(self.settings.base_seed, 2 * trial + 1),
        )
        .with_reliability(reliability);
        let started = Instant::now();
        let outcome = sim
            .run_until_stably_ranked(self.settings.max_interactions, self.settings.confirm_window);
        TrialOutcome { trial, n, outcome, wall: started.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Protocol, RankingProtocol};

    struct ModRank {
        n: usize,
    }
    impl Protocol for ModRank {
        type State = usize;
        fn interact(&self, a: &mut usize, b: &mut usize, _rng: &mut SmallRng) {
            if a == b {
                *b = (*b + 1) % self.n;
            }
        }
    }
    impl RankingProtocol for ModRank {
        fn population_size(&self) -> usize {
            self.n
        }
        fn rank_of(&self, s: &usize) -> Option<usize> {
            Some(s + 1)
        }
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn measurements_are_reproducible() {
        let runner = Runner::new(TrialSettings::new(4, 7, 500_000, 0));
        let a = runner.measure_ranking(|_, _| (ModRank { n: 6 }, vec![0usize; 6]));
        let b = runner.measure_ranking(|_, _| (ModRank { n: 6 }, vec![0usize; 6]));
        assert_eq!(a, b);
        assert!(a.all_converged());
    }

    #[test]
    fn budget_exhaustion_is_counted_not_fatal() {
        // An interaction budget of 1 cannot rank 6 agents from all-zero.
        let runner = Runner::new(TrialSettings::new(3, 7, 1, 0));
        let sample = runner.measure_ranking(|_, _| (ModRank { n: 6 }, vec![0usize; 6]));
        assert_eq!(sample.exhausted(), 3);
        assert!(sample.is_empty());
        assert!(!sample.all_converged());
    }

    #[test]
    fn exhausted_trials_retain_interaction_counts() {
        // Budget 17: every trial burns the whole budget and the sample must
        // say so exactly, not just count casualties.
        let runner = Runner::new(TrialSettings::new(3, 7, 17, 0));
        let sample = runner.measure_ranking(|_, _| (ModRank { n: 6 }, vec![0usize; 6]));
        assert_eq!(sample.exhausted_interactions, vec![17, 17, 17]);
        assert_eq!(sample.exhausted(), 3);
    }

    #[test]
    fn trial_outcomes_carry_wall_time_and_records() {
        let runner = Runner::new(TrialSettings::new(2, 7, 1_000_000, 0));
        let trials = runner.run_trials(|_, _| (ModRank { n: 6 }, vec![0usize; 6]));
        assert_eq!(trials.len(), 2);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.trial, i as u64);
            assert_eq!(t.n, 6);
            assert!(t.outcome.is_converged());
            let record = t.to_record("test-exp", "modrank", None, 7);
            assert_eq!(record.n, 6);
            assert_eq!(record.trial, i as u64);
            assert_eq!(record.seed, 7);
            assert_eq!(record.outcome, t.outcome);
            assert!((record.parallel_time() - t.parallel_time()).abs() < 1e-12);
        }
    }

    #[test]
    fn already_correct_configuration_converges_immediately() {
        let runner = Runner::new(TrialSettings::new(2, 7, 1000, 10));
        let sample = runner.measure_ranking(|_, _| (ModRank { n: 4 }, vec![0, 1, 2, 3]));
        assert!(sample.all_converged());
        assert!(sample.parallel_times.iter().all(|&t| t == 0.0));
    }

    #[test]
    fn parallel_runner_matches_sequential_sample() {
        let runner = Runner::new(TrialSettings::new(9, 13, 1_000_000, 5));
        let sequential = runner.measure_ranking(|_, _| (ModRank { n: 8 }, vec![0usize; 8]));
        for threads in [1, 2, 4] {
            let parallel = runner
                .measure_ranking_parallel(threads, |_, _| (ModRank { n: 8 }, vec![0usize; 8]));
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn auto_runner_matches_sequential_sample() {
        assert!(auto_threads() >= 1);
        let runner = Runner::new(TrialSettings::new(6, 13, 1_000_000, 5));
        let sequential = runner.measure_ranking(|_, _| (ModRank { n: 8 }, vec![0usize; 8]));
        let auto = runner.measure_ranking_auto(|_, _| (ModRank { n: 8 }, vec![0usize; 8]));
        assert_eq!(auto, sequential);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let runner = Runner::new(TrialSettings::new(1, 1, 10, 0));
        runner.measure_ranking_parallel(0, |_, _| (ModRank { n: 4 }, vec![0usize; 4]));
    }

    #[test]
    fn scheduled_runner_with_uniform_matches_plain_runner() {
        let runner = Runner::new(TrialSettings::new(6, 13, 1_000_000, 5));
        let plain = runner.run_trials(|_, _| (ModRank { n: 8 }, vec![0usize; 8]));
        let scheduled = runner.run_trials_scheduled_parallel(2, |_, _| {
            (ModRank { n: 8 }, vec![0usize; 8], AnyScheduler::uniform(8), Reliability::perfect())
        });
        assert_eq!(plain.len(), scheduled.len());
        for (a, b) in plain.iter().zip(&scheduled) {
            assert_eq!((a.trial, a.n, a.outcome), (b.trial, b.n, b.outcome));
        }
    }

    #[test]
    fn scheduled_runner_converges_under_adversarial_policies() {
        let runner = Runner::new(TrialSettings::new(3, 17, 2_000_000, 5));
        for spec in ["zipf:1", "starve:2:64", "clustered:2:0.1"] {
            let trials = runner.run_trials_scheduled_parallel(2, |_, _| {
                (
                    ModRank { n: 8 },
                    vec![0usize; 8],
                    AnyScheduler::from_spec(spec, 8).unwrap(),
                    Reliability::with_omission(0.1),
                )
            });
            assert!(trials.iter().all(|t| t.outcome.is_converged()), "{spec} failed to converge");
        }
    }

    #[test]
    fn trial_seeds_differ_across_trials() {
        // From an all-zero start, different trials should take different times.
        let runner = Runner::new(TrialSettings::new(8, 3, 1_000_000, 0));
        let sample = runner.measure_ranking(|_, _| (ModRank { n: 8 }, vec![0usize; 8]));
        let first = sample.parallel_times[0];
        assert!(
            sample.parallel_times.iter().any(|&t| (t - first).abs() > 1e-9),
            "all trials identical — per-trial seeding is broken"
        );
    }
}
