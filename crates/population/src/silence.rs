//! Structural silence checking.
//!
//! The paper (Sec. 2): "A configuration C is silent if no transition is
//! applicable to it (put another way, every pair of states present in C has
//! only a null transition that does not alter the configuration). A
//! self-stabilizing protocol is silent if, with probability 1, it reaches a
//! silent configuration from every configuration."
//!
//! Rather than waiting to observe inactivity (which can never prove
//! silence), we check the definition directly against the protocol's
//! [`Protocol::is_null_pair`] relation.

use crate::protocol::Protocol;

/// Returns `true` iff the configuration is silent: every **ordered** pair of
/// (distinct agents') states has only the null transition.
///
/// Cost is O(n²) calls to [`Protocol::is_null_pair`]; intended for
/// assertions and experiment epilogues, not inner loops.
///
/// # Examples
///
/// ```
/// use population::{silence::is_silent_configuration, Protocol};
/// use rand::rngs::SmallRng;
///
/// struct Annihilate; // x,x → x,0 for x ≠ 0
/// impl Protocol for Annihilate {
///     type State = u8;
///     fn interact(&self, a: &mut u8, b: &mut u8, _rng: &mut SmallRng) {
///         if a == b && *a != 0 { *b = 0; }
///     }
///     fn is_null_pair(&self, a: &u8, b: &u8) -> bool { a != b || *a == 0 }
/// }
///
/// assert!(is_silent_configuration(&Annihilate, &[1, 2, 0, 0]));
/// assert!(!is_silent_configuration(&Annihilate, &[1, 1, 0]));
/// ```
pub fn is_silent_configuration<P: Protocol>(protocol: &P, states: &[P::State]) -> bool {
    for (i, a) in states.iter().enumerate() {
        for (j, b) in states.iter().enumerate() {
            if i != j && !protocol.is_null_pair(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    struct Bump; // (a, b) → (a, a+1) if a == b; asymmetric on purpose
    impl Protocol for Bump {
        type State = u32;
        fn interact(&self, a: &mut u32, b: &mut u32, _rng: &mut SmallRng) {
            if a == b {
                *b += 1;
            }
        }
        fn is_null_pair(&self, a: &u32, b: &u32) -> bool {
            a != b
        }
    }

    #[test]
    fn distinct_states_are_silent() {
        assert!(is_silent_configuration(&Bump, &[0, 1, 2, 3]));
    }

    #[test]
    fn duplicate_states_are_not_silent() {
        assert!(!is_silent_configuration(&Bump, &[0, 1, 1]));
    }

    #[test]
    fn singleton_and_empty_are_vacuously_silent() {
        assert!(is_silent_configuration(&Bump, &[5]));
        assert!(is_silent_configuration(&Bump, &[]));
    }

    #[test]
    fn ordered_pairs_are_both_checked() {
        // Null only as (small, large): a protocol where the larger initiator
        // absorbs the smaller responder.
        struct Absorb;
        impl Protocol for Absorb {
            type State = u32;
            fn interact(&self, a: &mut u32, b: &mut u32, _rng: &mut SmallRng) {
                if *a > *b {
                    *b = *a;
                }
            }
            fn is_null_pair(&self, a: &u32, b: &u32) -> bool {
                a <= b
            }
        }
        // (2,1) is applicable even though (1,2) is null.
        assert!(!is_silent_configuration(&Absorb, &[1, 2]));
        assert!(is_silent_configuration(&Absorb, &[2, 2]));
    }
}
