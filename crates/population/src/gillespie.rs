//! Continuous-time (Gillespie) semantics.
//!
//! Population protocols are "a special-case variant" of stochastic chemical
//! reaction networks (the paper cites Gillespie's exact simulation
//! algorithm \[38\] and CRN computation \[53\]): agents are molecules,
//! interactions are bimolecular reactions. In the standard continuous-time
//! embedding each agent participates in interactions at rate Θ(1), i.e. the
//! whole population reacts at total rate `n`; the expected number of
//! interactions per time unit is then `n`, which is exactly why the paper's
//! discrete-time **parallel time** (interactions / n) is the right clock —
//! the two agree up to `O(√t)` fluctuations.
//!
//! [`GillespieSimulation`] wraps [`Simulation`] with an exponential clock so
//! protocols can be run under chemical semantics, and so the
//! parallel-time/continuous-time agreement can be verified empirically
//! (see the tests and the `chemical_reactions` example).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::graph::InteractionGraph;
use crate::protocol::Protocol;
use crate::runner::rng_from_seed;
use crate::simulation::{RunOutcome, Simulation};

/// A continuous-time execution: the embedded jump chain is the ordinary
/// uniform-scheduler simulation, with i.i.d. `Exponential(n)` holding times
/// between interactions.
#[derive(Debug, Clone)]
pub struct GillespieSimulation<P: Protocol> {
    inner: Simulation<P>,
    clock_rng: SmallRng,
    time: f64,
}

impl<P: Protocol> GillespieSimulation<P> {
    /// Creates a continuous-time execution on the complete graph.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are supplied.
    pub fn new(protocol: P, initial: Vec<P::State>, seed: u64) -> Self {
        Self::with_graph(protocol, initial, InteractionGraph::Complete, seed)
    }

    /// Creates a continuous-time execution on an arbitrary graph.
    ///
    /// # Panics
    ///
    /// As for [`Simulation::with_graph`].
    pub fn with_graph(
        protocol: P,
        initial: Vec<P::State>,
        graph: InteractionGraph,
        seed: u64,
    ) -> Self {
        GillespieSimulation {
            inner: Simulation::with_graph(protocol, initial, graph, seed),
            clock_rng: rng_from_seed(seed ^ 0x9e37_79b9_7f4a_7c15),
            time: 0.0,
        }
    }

    /// The wrapped discrete simulation.
    pub fn inner(&self) -> &Simulation<P> {
        &self.inner
    }

    /// The current configuration.
    pub fn states(&self) -> &[P::State] {
        self.inner.states()
    }

    /// Continuous (chemical) time elapsed.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Discrete parallel time elapsed (interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.inner.parallel_time()
    }

    /// Interactions (reactions) fired so far.
    pub fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    /// Fires one reaction: advances the exponential clock, then performs one
    /// scheduler-chosen interaction. Returns the interacting pair.
    pub fn step(&mut self) -> (usize, usize) {
        let n = self.inner.population_size() as f64;
        let u: f64 = self.clock_rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.time += -u.ln() / n;
        self.inner.step()
    }

    /// Runs until `goal` holds or continuous time reaches `max_time`;
    /// reports the outcome in terms of interactions (use [`Self::time`] for
    /// the final continuous time).
    pub fn run_until(
        &mut self,
        max_time: f64,
        mut goal: impl FnMut(&[P::State]) -> bool,
    ) -> RunOutcome {
        loop {
            if goal(self.inner.states()) {
                return RunOutcome::Converged { interactions: self.inner.interactions() };
            }
            if self.time >= max_time {
                return RunOutcome::Exhausted { interactions: self.inner.interactions() };
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Fight {
        Leader,
        Follower,
    }

    struct FightProtocol;
    impl Protocol for FightProtocol {
        type State = Fight;
        fn interact(&self, a: &mut Fight, b: &mut Fight, _rng: &mut SmallRng) {
            if *a == Fight::Leader && *b == Fight::Leader {
                *b = Fight::Follower;
            }
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim = GillespieSimulation::new(FightProtocol, vec![Fight::Leader; 8], 1);
        let mut prev = sim.time();
        assert_eq!(prev, 0.0);
        for _ in 0..100 {
            sim.step();
            assert!(sim.time() > prev);
            prev = sim.time();
        }
        assert_eq!(sim.interactions(), 100);
    }

    #[test]
    fn continuous_time_tracks_parallel_time() {
        // After many reactions, continuous time and interactions/n agree to
        // within CLT fluctuations (relative error ~ 1/√steps).
        let n = 50;
        let mut sim = GillespieSimulation::new(FightProtocol, vec![Fight::Follower; n], 2);
        let steps = 200_000u64;
        for _ in 0..steps {
            sim.step();
        }
        let rel = (sim.time() - sim.parallel_time()).abs() / sim.parallel_time();
        assert!(rel < 0.02, "continuous {} vs parallel {}", sim.time(), sim.parallel_time());
    }

    #[test]
    fn run_until_respects_the_time_budget() {
        let mut sim = GillespieSimulation::new(FightProtocol, vec![Fight::Follower; 8], 3);
        let outcome = sim.run_until(5.0, |_| false);
        assert!(!outcome.is_converged());
        assert!(sim.time() >= 5.0);
        assert!(sim.time() < 10.0, "should stop promptly after the deadline");
    }

    #[test]
    fn leader_fight_converges_under_chemical_semantics() {
        let n = 40;
        let mut sim = GillespieSimulation::new(FightProtocol, vec![Fight::Leader; n], 4);
        let outcome = sim
            .run_until(1e6, |states| states.iter().filter(|s| **s == Fight::Leader).count() == 1);
        assert!(outcome.is_converged());
        // ℓ,ℓ → ℓ,f from all-ℓ takes Θ(n) time in either clock.
        assert!(sim.time() > 1.0 && sim.time() < 100.0 * n as f64);
    }

    #[test]
    fn gillespie_agrees_with_discrete_parallel_time_on_the_epidemic() {
        // The continuous clock and interactions/n are the same clock in
        // expectation: on the 2-state one-way epidemic, the mean completion
        // time under Gillespie semantics must match the mean discrete
        // parallel time (Θ(log n) ≈ 13 time units at n = 200; the two
        // estimates share neither seeds nor trajectories, so agreement is
        // statistical — means over 20 trials land well inside 15%).
        use crate::epidemic::{Infection, OneWayEpidemic};
        let n = 200;
        let trials = 20u64;
        let all_infected = |states: &[Infection]| states.iter().all(|s| *s == Infection::Infected);
        let mut continuous_sum = 0.0;
        let mut discrete_sum = 0.0;
        for s in 0..trials {
            let initial = OneWayEpidemic::seeded_configuration(n);
            let mut cont = GillespieSimulation::new(OneWayEpidemic, initial.clone(), s);
            let outcome = cont.run_until(1e9, |states| all_infected(states));
            assert!(outcome.is_converged());
            continuous_sum += cont.time();

            let mut disc = Simulation::new(OneWayEpidemic, initial, 10_000 + s);
            let outcome = disc.run_until(u64::MAX, |states| all_infected(states));
            assert!(outcome.is_converged());
            discrete_sum += disc.parallel_time();
        }
        let continuous_mean = continuous_sum / trials as f64;
        let discrete_mean = discrete_sum / trials as f64;
        let rel = (continuous_mean - discrete_mean).abs() / discrete_mean;
        assert!(
            rel < 0.15,
            "Gillespie mean {continuous_mean} vs discrete mean {discrete_mean} (rel {rel})"
        );
    }

    #[test]
    fn jump_chain_is_the_discrete_scheduler() {
        // The embedded discrete chain must be identical to a plain
        // Simulation with the same seed.
        let mut cont = GillespieSimulation::new(FightProtocol, vec![Fight::Leader; 10], 7);
        let mut disc = Simulation::new(FightProtocol, vec![Fight::Leader; 10], 7);
        for _ in 0..1000 {
            cont.step();
            disc.step();
        }
        assert_eq!(cont.states(), disc.states());
    }
}
