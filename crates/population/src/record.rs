//! Versioned per-trial experiment records and their JSONL encoding.
//!
//! Every measured trial — one `(protocol, n, seed)` execution run to
//! convergence or budget exhaustion — becomes one [`RunRecord`], serialized
//! as one JSON object per line (JSONL). The text tables the benches print
//! are lossy summaries; the JSONL stream is the raw data they summarize, so
//! experiments can be re-analyzed (`ssle report`) or diffed across commits
//! without re-running them.
//!
//! The encoding is hand-rolled: the records are flat (strings, integers,
//! floats, null), which a few dozen lines handle, and the build environment
//! is offline so pulling `serde` is not an option. [`RunRecord::to_json`] and
//! [`RunRecord::from_json`] round-trip exactly for the values the simulator
//! produces.
//!
//! # Schema versions
//!
//! * **v1** — trial records only (`table1`, `h_sweep`, …).
//! * **v2** — adds a `kind` discriminator (`"trial"` / `"fault"` /
//!   `"frontier"`), the optional trial fields `availability`/`faults`
//!   emitted by chaos runs (see [`crate::fault`]), the per-fault
//!   [`FaultRecord`] line, and the [`FrontierRecord`] line emitted by the
//!   `scaling_frontier` bench (backend-throughput measurements at huge
//!   `n`). v1 lines (no `kind`) still parse as trials.
//! * **v3** — adds the optional robustness metadata on trial records:
//!   `scheduler` (the [`crate::scheduler::SchedulerPolicy::spec`] string,
//!   e.g. `"zipf:1"`), `omission` (the
//!   [`crate::scheduler::Reliability`] drop probability), and
//!   `starve_window` (the epoch adversary's window length in interactions).
//!   Absent fields mean the uniform scheduler with perfect reliability, so
//!   v1/v2 lines keep their meaning.
//! * **v4** — adds the `"kind":"timeline"` [`TimelineRecord`] line: one
//!   within-run checkpoint of the macroscopic observables traced by
//!   [`crate::timeline`] (leader count, ranks held by exactly one agent,
//!   distinct-state support, phase occupancy). A trial's timeline is a run
//!   of such lines sharing `(experiment, protocol, backend, n, trial)`,
//!   ordered by `interactions`. Existing kinds are unchanged.
//! * **v5** — adds the `"kind":"metrics"` [`MetricsRecord`] line: one
//!   engine-telemetry summary per run (or one merged cross-trial summary,
//!   `trial = null`) as collected by [`crate::metrics`] — batch-size
//!   histogram, exact-fallback and memo-hit counters, compactions, RNG
//!   draws, and per-section wall time. Existing kinds are unchanged.
//! * **v6** — adds the `"kind":"churn"` [`ChurnRecord`] line: one summary
//!   per dynamic-population trial (see [`crate::dynamics`]) — the churn
//!   spec, Byzantine fraction, membership-event counts (joins / leaves /
//!   replacements), Byzantine strikes, availability fractions, and recovery
//!   statistics. Existing kinds are unchanged.
//! * **v7** — adds the `"kind":"service"` [`ServiceRecord`] line: one
//!   throughput/latency measurement per service-bench cell (`ssle serve`
//!   under concurrent clients) — request count, sustained requests per
//!   second, and p50/p99 per-request latency. Existing kinds are unchanged.
//! * **v8** — adds the `"kind":"crash"` [`CrashRecord`] line (one
//!   crash-recovery measurement per `crash_recovery` bench cell: kill
//!   point, fsync policy, lost-event window, recovery wall time, and
//!   whether replay reproduced the uncrashed state bit-identically) and
//!   the `"kind":"health"` [`HealthRecord`] line (one liveness/journal-lag
//!   row per served population, as reported by the `health` wire command).
//!   Existing kinds are unchanged.
//! * **v9** — adds the `"kind":"server_stats"` [`ServerStatsRecord`] line
//!   (one per-wire-command latency aggregate from the daemon's request
//!   tracer, as emitted by the `stats` wire command: request counts,
//!   rps, log₂-bucket latency histogram with p50/p95/p99, and mean
//!   per-request time attributed across queue/parse/lock/engine/journal/
//!   fsync/write spans) and the `"kind":"trace"` [`TraceRecord`] line
//!   (one request trace from the flight recorder, as dumped on worker
//!   panic/quarantine or by the `dump-trace` command). Existing kinds
//!   are unchanged.
//!
//! A stream may mix all kinds; [`from_jsonl_mixed`] reads everything as
//! [`RecordLine`]s, while [`from_jsonl`] keeps its original contract of
//! returning trial records (other lines are skipped). Consumers that must
//! survive streams written by a *newer* writer (e.g. `ssle report`) use
//! [`from_jsonl_lenient`], which sets aside — and tallies, instead of
//! erroring on — lines with an unknown `kind` or a version above
//! [`SCHEMA_VERSION`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::simulation::RunOutcome;

/// Version of the record schema. Bump when fields change meaning; readers
/// accept [`MIN_SCHEMA_VERSION`]`..=SCHEMA_VERSION` and reject anything else.
pub const SCHEMA_VERSION: u32 = 9;

/// Oldest schema version readers still accept.
pub const MIN_SCHEMA_VERSION: u32 = 1;

fn check_version(fields: &BTreeMap<String, JsonScalar>) -> Result<(), String> {
    let version = get_u64(fields, "v")?;
    if !(MIN_SCHEMA_VERSION as u64..=SCHEMA_VERSION as u64).contains(&version) {
        return Err(format!(
            "unsupported record version {version} (reader supports {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
        ));
    }
    Ok(())
}

/// One measured trial, self-describing enough to be aggregated without the
/// context of the run that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Name of the experiment that produced this record (e.g. `"table1"`).
    pub experiment: String,
    /// Protocol short-name (e.g. `"ciw"`, `"oss"`, `"sublinear"`).
    pub protocol: String,
    /// Population size.
    pub n: u64,
    /// Depth parameter `H` for Sublinear-Time-SSR; `None` for protocols
    /// without one.
    pub h: Option<u64>,
    /// Trial index within the experiment.
    pub trial: u64,
    /// Base seed of the experiment (per-trial seeds derive from it).
    pub seed: u64,
    /// How the trial ended.
    pub outcome: RunOutcome,
    /// Wall-clock seconds the trial took.
    pub wall_s: f64,
    /// Fraction of observed interactions with a unique leader — only emitted
    /// by chaos/soak trials (see [`crate::fault::ChaosReport::availability`]).
    pub availability: Option<f64>,
    /// Number of faults injected during the trial — only emitted by
    /// chaos/soak trials.
    pub faults: Option<u64>,
    /// Scheduler spec string (e.g. `"zipf:1"`, `"starve:4:256"`) — only
    /// emitted by robustness trials; absent means the uniform scheduler
    /// (schema v3).
    pub scheduler: Option<String>,
    /// Interaction-omission probability — only emitted by robustness trials;
    /// absent means perfectly reliable interactions (schema v3).
    pub omission: Option<f64>,
    /// Starvation-window length in interactions of the epoch adversary —
    /// only emitted when the scheduler is `starve:*` (schema v3).
    pub starve_window: Option<u64>,
}

impl RunRecord {
    /// Parallel time (interactions / n) at convergence or exhaustion.
    pub fn parallel_time(&self) -> f64 {
        self.outcome.parallel_time(self.n as usize)
    }

    /// Interactions per wall-clock second (0 if no wall time was recorded).
    pub fn interactions_per_second(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.outcome.interactions() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "trial");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_u64("n", self.n);
        match self.h {
            Some(h) => obj.field_u64("h", h),
            None => obj.field_null("h"),
        };
        obj.field_u64("trial", self.trial);
        obj.field_u64("seed", self.seed);
        obj.field_str(
            "outcome",
            if self.outcome.is_converged() { "converged" } else { "exhausted" },
        );
        obj.field_u64("interactions", self.outcome.interactions());
        obj.field_f64("parallel_time", self.parallel_time());
        obj.field_f64("wall_s", self.wall_s);
        obj.field_f64("ips", self.interactions_per_second());
        if let Some(a) = self.availability {
            obj.field_f64("availability", a);
        }
        if let Some(f) = self.faults {
            obj.field_u64("faults", f);
        }
        if let Some(s) = &self.scheduler {
            obj.field_str("scheduler", s);
        }
        if let Some(o) = self.omission {
            obj.field_f64("omission", o);
        }
        if let Some(w) = self.starve_window {
            obj.field_u64("starve_window", w);
        }
        obj.finish()
    }

    /// Parses a trial record from one JSONL line.
    ///
    /// Unknown fields are ignored (forward compatibility); missing required
    /// fields, malformed JSON, a schema version outside
    /// [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`], or a line of a
    /// different kind (e.g. a fault record) are errors.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "trial" => {}
            other => return Err(format!("expected a trial record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        let interactions = get_u64(fields, "interactions")?;
        let outcome = match get_str(fields, "outcome")? {
            "converged" => RunOutcome::Converged { interactions },
            "exhausted" => RunOutcome::Exhausted { interactions },
            other => return Err(format!("unknown outcome {other:?}")),
        };
        let availability = match fields.get("availability") {
            None | Some(JsonScalar::Null) => None,
            Some(JsonScalar::Num(x)) => Some(*x),
            Some(other) => {
                return Err(format!(
                    "field \"availability\": expected number or null, got {other:?}"
                ))
            }
        };
        let faults = match fields.contains_key("faults") {
            true => Some(get_u64(fields, "faults")?),
            false => None,
        };
        let scheduler = match fields.get("scheduler") {
            None | Some(JsonScalar::Null) => None,
            Some(JsonScalar::Str(s)) => Some(s.clone()),
            Some(other) => {
                return Err(format!("field \"scheduler\": expected string or null, got {other:?}"))
            }
        };
        let omission = match fields.get("omission") {
            None | Some(JsonScalar::Null) => None,
            Some(JsonScalar::Num(x)) => Some(*x),
            Some(other) => {
                return Err(format!("field \"omission\": expected number or null, got {other:?}"))
            }
        };
        Ok(RunRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            n: get_u64(fields, "n")?,
            h: get_opt_u64(fields, "h")?,
            trial: get_u64(fields, "trial")?,
            seed: get_u64(fields, "seed")?,
            outcome,
            wall_s: get_f64(fields, "wall_s")?,
            availability,
            faults,
            scheduler,
            omission,
            starve_window: get_opt_u64(fields, "starve_window")?,
        })
    }

    /// Attaches the schema-v3 robustness metadata (scheduler spec, omission
    /// probability, starvation window) to a record builder-style. `None`s
    /// and an `omission` of exactly 0 are normalized to absent fields, so
    /// the uniform/perfect baseline serializes identically to pre-v3
    /// records.
    pub fn with_robustness(
        mut self,
        scheduler: Option<String>,
        omission: Option<f64>,
        starve_window: Option<u64>,
    ) -> Self {
        self.scheduler = scheduler.filter(|s| s != "uniform");
        self.omission = omission.filter(|&o| o > 0.0);
        self.starve_window = starve_window;
        self
    }
}

/// The `kind` discriminator of a parsed line; v1 lines (no `kind` field) are
/// trial records.
fn record_kind(fields: &BTreeMap<String, JsonScalar>) -> Result<&str, String> {
    match fields.get("kind") {
        None => Ok("trial"),
        Some(JsonScalar::Str(s)) => Ok(s),
        Some(other) => Err(format!("field \"kind\": expected string, got {other:?}")),
    }
}

fn get_opt_u64(fields: &BTreeMap<String, JsonScalar>, key: &str) -> Result<Option<u64>, String> {
    match fields.get(key) {
        None | Some(JsonScalar::Null) => Ok(None),
        Some(JsonScalar::Num(_)) => Ok(Some(get_u64(fields, key)?)),
        Some(other) => Err(format!("field {key:?}: expected number or null, got {other:?}")),
    }
}

/// One fault injected during a chaos/soak trial (`kind = "fault"`, schema
/// v2). Each fired fault becomes one line next to its trial's `"trial"` line,
/// so recovery distributions can be re-analyzed per `(action, agents)` cell
/// without re-running the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Name of the experiment that produced this record.
    pub experiment: String,
    /// Protocol short-name (e.g. `"ciw"`, `"oss"`, `"sublinear"`).
    pub protocol: String,
    /// Population size.
    pub n: u64,
    /// Depth parameter `H`, if the protocol has one.
    pub h: Option<u64>,
    /// Trial index the fault fired in.
    pub trial: u64,
    /// Base seed of the experiment.
    pub seed: u64,
    /// Action label (see `FaultAction::label` in [`crate::fault`]).
    pub action: String,
    /// Number of agent states the fault overwrote.
    pub agents: u64,
    /// Total interaction count at injection.
    pub injected_at: u64,
    /// Total interaction count at the next stable ranking, or `None` if the
    /// run ended before recovering (censored).
    pub recovered_at: Option<u64>,
}

impl FaultRecord {
    /// Interactions from injection to recovery, if recovery happened.
    pub fn recovery_interactions(&self) -> Option<u64> {
        self.recovered_at.map(|r| r.saturating_sub(self.injected_at))
    }

    /// Parallel time from injection to recovery, if recovery happened.
    pub fn recovery_parallel_time(&self) -> Option<f64> {
        self.recovery_interactions().map(|i| i as f64 / self.n as f64)
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "fault");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_u64("n", self.n);
        match self.h {
            Some(h) => obj.field_u64("h", h),
            None => obj.field_null("h"),
        };
        obj.field_u64("trial", self.trial);
        obj.field_u64("seed", self.seed);
        obj.field_str("action", &self.action);
        obj.field_u64("agents", self.agents);
        obj.field_u64("injected_at", self.injected_at);
        match self.recovered_at {
            Some(r) => obj.field_u64("recovered_at", r),
            None => obj.field_null("recovered_at"),
        };
        match self.recovery_parallel_time() {
            Some(t) => obj.field_f64("recovery_parallel_time", t),
            None => obj.field_null("recovery_parallel_time"),
        };
        obj.finish()
    }

    /// Parses a fault record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "fault" => {}
            other => return Err(format!("expected a fault record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(FaultRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            n: get_u64(fields, "n")?,
            h: get_opt_u64(fields, "h")?,
            trial: get_u64(fields, "trial")?,
            seed: get_u64(fields, "seed")?,
            action: get_str(fields, "action")?.to_string(),
            agents: get_u64(fields, "agents")?,
            injected_at: get_u64(fields, "injected_at")?,
            recovered_at: get_opt_u64(fields, "recovered_at")?,
        })
    }
}

/// One backend-throughput measurement at a single population size
/// (`kind = "frontier"`, schema v2), emitted by the `scaling_frontier`
/// bench. Unlike a [`RunRecord`], a frontier record names the **backend**
/// that executed the run (`"agents"` or `"counts"`), so agent-array and
/// count-based throughput can be compared per `(workload, n)` cell, and it
/// carries the count-backend compression evidence (`support`, the number of
/// distinct states) where available.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRecord {
    /// Name of the experiment that produced this record (e.g. `"frontier"`).
    pub experiment: String,
    /// Workload short-name (e.g. `"epidemic"`, `"loose"`).
    pub protocol: String,
    /// Simulation backend that executed the run (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size.
    pub n: u64,
    /// Trial index within the experiment.
    pub trial: u64,
    /// Base seed of the experiment (per-trial seeds derive from it).
    pub seed: u64,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Final number of distinct states (count backend only): the quantity
    /// that decides whether counting compresses the configuration at all.
    pub support: Option<u64>,
    /// Final number of leaders, for leader-election workloads.
    pub leaders: Option<u64>,
}

impl FrontierRecord {
    /// Parallel time (interactions / n) at the end of the run.
    pub fn parallel_time(&self) -> f64 {
        self.outcome.parallel_time(self.n as usize)
    }

    /// Interactions per wall-clock second (0 if no wall time was recorded).
    pub fn interactions_per_second(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.outcome.interactions() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "frontier");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_u64("trial", self.trial);
        obj.field_u64("seed", self.seed);
        obj.field_str(
            "outcome",
            if self.outcome.is_converged() { "converged" } else { "exhausted" },
        );
        obj.field_u64("interactions", self.outcome.interactions());
        obj.field_f64("parallel_time", self.parallel_time());
        obj.field_f64("wall_s", self.wall_s);
        obj.field_f64("ips", self.interactions_per_second());
        match self.support {
            Some(s) => obj.field_u64("support", s),
            None => obj.field_null("support"),
        };
        match self.leaders {
            Some(l) => obj.field_u64("leaders", l),
            None => obj.field_null("leaders"),
        };
        obj.finish()
    }

    /// Parses a frontier record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "frontier" => {}
            other => return Err(format!("expected a frontier record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        let interactions = get_u64(fields, "interactions")?;
        let outcome = match get_str(fields, "outcome")? {
            "converged" => RunOutcome::Converged { interactions },
            "exhausted" => RunOutcome::Exhausted { interactions },
            other => return Err(format!("unknown outcome {other:?}")),
        };
        Ok(FrontierRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            trial: get_u64(fields, "trial")?,
            seed: get_u64(fields, "seed")?,
            outcome,
            wall_s: get_f64(fields, "wall_s")?,
            support: get_opt_u64(fields, "support")?,
            leaders: get_opt_u64(fields, "leaders")?,
        })
    }
}

/// One within-run trajectory checkpoint (`kind = "timeline"`, schema v4),
/// emitted by `ssle simulate --timeline`. A run's timeline is the sequence
/// of its checkpoint lines ordered by `interactions`; see
/// [`crate::timeline`] for how checkpoints are decimated to a bounded
/// count. The flat `phases` string encodes the per-phase occupancy map as
/// `name:count,name:count` (sorted by name) because the record reader is
/// deliberately scalar-only.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRecord {
    /// Name of the experiment that produced this record (e.g. `"simulate"`).
    pub experiment: String,
    /// Protocol short-name (e.g. `"ciw"`, `"oss"`, `"sublinear"`).
    pub protocol: String,
    /// Simulation backend that executed the run (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size.
    pub n: u64,
    /// Trial index within the experiment.
    pub trial: u64,
    /// Base seed of the experiment.
    pub seed: u64,
    /// Interaction count the checkpoint was taken at.
    pub interactions: u64,
    /// Number of agents outputting leader (rank 1) at the checkpoint.
    pub leaders: u64,
    /// Number of ranks held by exactly one agent; equals `n` when ranked.
    pub ranks_ok: u64,
    /// Distinct states at the checkpoint (count backend only).
    pub support: Option<u64>,
    /// Flat `name:count,name:count` phase-occupancy encoding, absent for
    /// protocols without phase structure.
    pub phases: Option<String>,
}

impl TimelineRecord {
    /// Parallel time (interactions / n) of the checkpoint.
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.n as f64
    }

    /// Decodes the flat `phases` string back into `(name, count)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed entry.
    pub fn phase_counts(&self) -> Result<Vec<(String, u64)>, String> {
        let Some(text) = &self.phases else {
            return Ok(Vec::new());
        };
        text.split(',')
            .map(|entry| {
                let (name, count) = entry
                    .rsplit_once(':')
                    .ok_or_else(|| format!("phase entry {entry:?} has no ':'"))?;
                let count: u64 =
                    count.parse().map_err(|_| format!("phase entry {entry:?} has a bad count"))?;
                Ok((name.to_string(), count))
            })
            .collect()
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "timeline");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_u64("trial", self.trial);
        obj.field_u64("seed", self.seed);
        obj.field_u64("interactions", self.interactions);
        obj.field_f64("parallel_time", self.parallel_time());
        obj.field_u64("leaders", self.leaders);
        obj.field_u64("ranks_ok", self.ranks_ok);
        match self.support {
            Some(s) => obj.field_u64("support", s),
            None => obj.field_null("support"),
        };
        match &self.phases {
            Some(p) => obj.field_str("phases", p),
            None => obj.field_null("phases"),
        };
        obj.finish()
    }

    /// Parses a timeline record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "timeline" => {}
            other => return Err(format!("expected a timeline record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        let phases = match fields.get("phases") {
            None | Some(JsonScalar::Null) => None,
            Some(JsonScalar::Str(s)) => Some(s.clone()),
            Some(other) => {
                return Err(format!("field \"phases\": expected string or null, got {other:?}"))
            }
        };
        Ok(TimelineRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            trial: get_u64(fields, "trial")?,
            seed: get_u64(fields, "seed")?,
            interactions: get_u64(fields, "interactions")?,
            leaders: get_u64(fields, "leaders")?,
            ranks_ok: get_u64(fields, "ranks_ok")?,
            support: get_opt_u64(fields, "support")?,
            phases,
        })
    }
}

/// One engine-telemetry summary (`kind = "metrics"`, schema v5), emitted by
/// `ssle simulate/soak --metrics` and the `perf_baseline` bench. Where every
/// other record describes what the *protocol* did, a metrics record
/// describes what the *simulator* did: batch sizes, exact-fallback and
/// memo-hit counters, compactions, RNG draws, and coarse per-section wall
/// time (see [`crate::metrics`]). `trial = None` marks a merged cross-trial
/// row. The flat `batch_hist` string encodes the log-bucketed batch-size
/// histogram as `bound:count,…` (overflow bucket as `inf:count`) because the
/// record reader is deliberately scalar-only.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRecord {
    /// Name of the experiment that produced this record (e.g. `"simulate"`).
    pub experiment: String,
    /// Protocol short-name (e.g. `"ciw"`, `"oss"`, `"epidemic"`).
    pub protocol: String,
    /// Simulation backend that executed the run (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size.
    pub n: u64,
    /// Trial index, or `None` for a merged cross-trial row.
    pub trial: Option<u64>,
    /// Base seed of the experiment.
    pub seed: u64,
    /// Wall-clock seconds of the summarized run(s).
    pub wall_s: f64,
    /// Total interactions performed.
    pub interactions: u64,
    /// Collision-free batches completed (counts backend).
    pub batches: u64,
    /// Interactions performed inside collision-free batches.
    pub batched_pairs: u64,
    /// Interactions that went through the exact per-interaction fallback.
    pub exact_steps: u64,
    /// Uniform draws consumed from the execution RNG.
    pub rng_draws: u64,
    /// Memoized-transition lookups that hit.
    pub memo_hits: u64,
    /// Memoized-transition lookups that missed.
    pub memo_misses: u64,
    /// CountConfig compactions performed.
    pub compactions: u64,
    /// Distinct live states after the most recent compaction (0 = never
    /// compacted).
    pub support: u64,
    /// Raw count-table length after the most recent compaction.
    pub raw_len: u64,
    /// Batch-boundary flushes observed.
    pub flushes: u64,
    /// Flat `bound:count,…` batch-size histogram, absent when no batch ran.
    pub batch_hist: Option<String>,
    /// Wall seconds in the sampling section (schedule draws).
    pub sample_s: f64,
    /// Wall seconds in the transition section (applying interactions).
    pub transition_s: f64,
    /// Wall seconds in the probe section (convergence checks).
    pub probe_s: f64,
    /// Wall seconds in the observe section (snapshots, observers).
    pub observe_s: f64,
}

impl MetricsRecord {
    /// Fraction of interactions that went through the exact fallback.
    pub fn fallback_rate(&self) -> f64 {
        let total = self.exact_steps + self.batched_pairs;
        if total == 0 {
            0.0
        } else {
            self.exact_steps as f64 / total as f64
        }
    }

    /// Fraction of memo lookups that hit; 0 when never consulted.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Interactions per wall-clock second (0 if no wall time was recorded).
    pub fn interactions_per_second(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.interactions as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Decodes the flat `batch_hist` string back into
    /// `(bound-label, count)` pairs, in encoded order.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed entry.
    pub fn batch_hist_counts(&self) -> Result<Vec<(String, u64)>, String> {
        let Some(text) = &self.batch_hist else {
            return Ok(Vec::new());
        };
        text.split(',')
            .map(|entry| {
                let (bound, count) = entry
                    .rsplit_once(':')
                    .ok_or_else(|| format!("batch_hist entry {entry:?} has no ':'"))?;
                let count: u64 = count
                    .parse()
                    .map_err(|_| format!("batch_hist entry {entry:?} has a bad count"))?;
                Ok((bound.to_string(), count))
            })
            .collect()
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "metrics");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        match self.trial {
            Some(t) => obj.field_u64("trial", t),
            None => obj.field_null("trial"),
        };
        obj.field_u64("seed", self.seed);
        obj.field_f64("wall_s", self.wall_s);
        obj.field_u64("interactions", self.interactions);
        obj.field_f64("ips", self.interactions_per_second());
        obj.field_u64("batches", self.batches);
        obj.field_u64("batched_pairs", self.batched_pairs);
        obj.field_u64("exact_steps", self.exact_steps);
        obj.field_u64("rng_draws", self.rng_draws);
        obj.field_u64("memo_hits", self.memo_hits);
        obj.field_u64("memo_misses", self.memo_misses);
        obj.field_u64("compactions", self.compactions);
        obj.field_u64("support", self.support);
        obj.field_u64("raw_len", self.raw_len);
        obj.field_u64("flushes", self.flushes);
        match &self.batch_hist {
            Some(h) => obj.field_str("batch_hist", h),
            None => obj.field_null("batch_hist"),
        };
        obj.field_f64("sample_s", self.sample_s);
        obj.field_f64("transition_s", self.transition_s);
        obj.field_f64("probe_s", self.probe_s);
        obj.field_f64("observe_s", self.observe_s);
        obj.finish()
    }

    /// Parses a metrics record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "metrics" => {}
            other => return Err(format!("expected a metrics record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        let batch_hist = match fields.get("batch_hist") {
            None | Some(JsonScalar::Null) => None,
            Some(JsonScalar::Str(s)) => Some(s.clone()),
            Some(other) => {
                return Err(format!("field \"batch_hist\": expected string or null, got {other:?}"))
            }
        };
        Ok(MetricsRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            trial: get_opt_u64(fields, "trial")?,
            seed: get_u64(fields, "seed")?,
            wall_s: get_f64(fields, "wall_s")?,
            interactions: get_u64(fields, "interactions")?,
            batches: get_u64(fields, "batches")?,
            batched_pairs: get_u64(fields, "batched_pairs")?,
            exact_steps: get_u64(fields, "exact_steps")?,
            rng_draws: get_u64(fields, "rng_draws")?,
            memo_hits: get_u64(fields, "memo_hits")?,
            memo_misses: get_u64(fields, "memo_misses")?,
            compactions: get_u64(fields, "compactions")?,
            support: get_u64(fields, "support")?,
            raw_len: get_u64(fields, "raw_len")?,
            flushes: get_u64(fields, "flushes")?,
            batch_hist,
            sample_s: get_f64(fields, "sample_s")?,
            transition_s: get_f64(fields, "transition_s")?,
            probe_s: get_f64(fields, "probe_s")?,
            observe_s: get_f64(fields, "observe_s")?,
        })
    }
}

/// One dynamic-population trial (`kind = "churn"`, schema v6), emitted by
/// `ssle simulate/soak --churn` and the `churn_resilience` bench. Each line
/// summarizes a whole trial under membership churn and/or Byzantine agents:
/// how much the population changed, how often the adversary struck, and the
/// availability/recovery statistics from the shared [`crate::fault`]
/// recovery clock. Fired membership events additionally appear as ordinary
/// `"fault"` lines next to their trial, so per-event recovery distributions
/// stay re-analyzable.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRecord {
    /// Name of the experiment that produced this record (e.g. `"churn"`).
    pub experiment: String,
    /// Protocol short-name (e.g. `"ciw"`, `"oss"`, `"sublinear"`).
    pub protocol: String,
    /// Simulation backend that executed the run (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size the protocol was configured for (the size ranking is
    /// judged against; churn moves the live size away from it).
    pub n: u64,
    /// Live population size when the trial ended.
    pub final_n: u64,
    /// Depth parameter `H`, if the protocol has one.
    pub h: Option<u64>,
    /// Trial index within the experiment.
    pub trial: u64,
    /// Base seed of the experiment (per-trial seeds derive from it).
    pub seed: u64,
    /// Churn spec string the trial ran under (e.g. `"2.0"` or
    /// `"join:4@8,leave:4@16"`); `"none"` when only Byzantine agents were
    /// active.
    pub churn: String,
    /// Byzantine fraction `t` in `[0, 1)`.
    pub byzantine: f64,
    /// Agents that joined (grew the population) during the trial.
    pub joins: u64,
    /// Agents that left (shrank the population) during the trial.
    pub leaves: u64,
    /// Agents replaced in place (departure + fresh join, size unchanged).
    pub replacements: u64,
    /// Byzantine state overwrites applied during the trial.
    pub byz_strikes: u64,
    /// Membership/fault events that opened a recovery clock.
    pub faults: u64,
    /// Fraction of observed steps with exactly one leader.
    pub availability: f64,
    /// Fraction of observed steps with the full ranking in place.
    pub ranked_availability: f64,
    /// Recovery clocks that closed before the trial ended.
    pub recovered: u64,
    /// Mean recovery time in parallel time across recovered clocks (`None`
    /// when nothing recovered).
    pub mean_recovery_pt: Option<f64>,
    /// Parallel time of the first stable full ranking, if reached.
    pub first_ranked_pt: Option<f64>,
    /// Total interactions executed.
    pub interactions: u64,
    /// Total parallel time executed (piecewise `1/n_live` per interaction,
    /// so it stays meaningful while `n` varies).
    pub parallel_time: f64,
    /// Wall-clock seconds the trial took.
    pub wall_s: f64,
}

impl ChurnRecord {
    /// Interactions per wall-clock second (0 if no wall time was recorded).
    pub fn interactions_per_second(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.interactions as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "churn");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_u64("final_n", self.final_n);
        match self.h {
            Some(h) => obj.field_u64("h", h),
            None => obj.field_null("h"),
        };
        obj.field_u64("trial", self.trial);
        obj.field_u64("seed", self.seed);
        obj.field_str("churn", &self.churn);
        obj.field_f64("byzantine", self.byzantine);
        obj.field_u64("joins", self.joins);
        obj.field_u64("leaves", self.leaves);
        obj.field_u64("replacements", self.replacements);
        obj.field_u64("byz_strikes", self.byz_strikes);
        obj.field_u64("faults", self.faults);
        obj.field_f64("availability", self.availability);
        obj.field_f64("ranked_availability", self.ranked_availability);
        obj.field_u64("recovered", self.recovered);
        match self.mean_recovery_pt {
            Some(t) => obj.field_f64("mean_recovery_pt", t),
            None => obj.field_null("mean_recovery_pt"),
        };
        match self.first_ranked_pt {
            Some(t) => obj.field_f64("first_ranked_pt", t),
            None => obj.field_null("first_ranked_pt"),
        };
        obj.field_u64("interactions", self.interactions);
        obj.field_f64("parallel_time", self.parallel_time);
        obj.field_f64("wall_s", self.wall_s);
        obj.field_f64("ips", self.interactions_per_second());
        obj.finish()
    }

    /// Parses a churn record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "churn" => {}
            other => return Err(format!("expected a churn record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(ChurnRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            final_n: get_u64(fields, "final_n")?,
            h: get_opt_u64(fields, "h")?,
            trial: get_u64(fields, "trial")?,
            seed: get_u64(fields, "seed")?,
            churn: get_str(fields, "churn")?.to_string(),
            byzantine: get_f64(fields, "byzantine")?,
            joins: get_u64(fields, "joins")?,
            leaves: get_u64(fields, "leaves")?,
            replacements: get_u64(fields, "replacements")?,
            byz_strikes: get_u64(fields, "byz_strikes")?,
            faults: get_u64(fields, "faults")?,
            availability: get_f64(fields, "availability")?,
            ranked_availability: get_f64(fields, "ranked_availability")?,
            recovered: get_u64(fields, "recovered")?,
            mean_recovery_pt: get_opt_f64(fields, "mean_recovery_pt")?,
            first_ranked_pt: get_opt_f64(fields, "first_ranked_pt")?,
            interactions: get_u64(fields, "interactions")?,
            parallel_time: get_f64(fields, "parallel_time")?,
            wall_s: get_f64(fields, "wall_s")?,
        })
    }
}

fn get_opt_f64(fields: &BTreeMap<String, JsonScalar>, key: &str) -> Result<Option<f64>, String> {
    match fields.get(key) {
        None | Some(JsonScalar::Null) => Ok(None),
        Some(JsonScalar::Num(_)) => Ok(Some(get_f64(fields, key)?)),
        Some(other) => Err(format!("field {key:?}: expected number or null, got {other:?}")),
    }
}

/// One service-throughput measurement (`kind = "service"`, schema v7),
/// emitted by the `service_throughput` bench: `clients` concurrent wire
/// clients hammering one `ssle serve` daemon hosting a population of size
/// `n`, mixing queries and event injections. Latency is per complete
/// request (write line, read response) in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    /// Name of the experiment that produced this record (e.g. `"service"`).
    pub experiment: String,
    /// Protocol short-name the hosted population runs.
    pub protocol: String,
    /// Simulation backend hosting the population (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size of the hosted population.
    pub n: u64,
    /// Concurrent client connections issuing requests.
    pub clients: u64,
    /// Total requests completed across all clients.
    pub requests: u64,
    /// Sustained requests per second across the whole run.
    pub rps: f64,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: f64,
    /// Base seed of the bench cell.
    pub seed: u64,
    /// Wall-clock seconds the cell took.
    pub wall_s: f64,
}

impl ServiceRecord {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "service");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_u64("clients", self.clients);
        obj.field_u64("requests", self.requests);
        obj.field_f64("rps", self.rps);
        obj.field_f64("p50_us", self.p50_us);
        obj.field_f64("p99_us", self.p99_us);
        obj.field_u64("seed", self.seed);
        obj.field_f64("wall_s", self.wall_s);
        obj.finish()
    }

    /// Parses a service record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "service" => {}
            other => return Err(format!("expected a service record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(ServiceRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            clients: get_u64(fields, "clients")?,
            requests: get_u64(fields, "requests")?,
            rps: get_f64(fields, "rps")?,
            p50_us: get_f64(fields, "p50_us")?,
            p99_us: get_f64(fields, "p99_us")?,
            seed: get_u64(fields, "seed")?,
            wall_s: get_f64(fields, "wall_s")?,
        })
    }
}

/// One crash-recovery measurement (`kind = "crash"`, schema v8), emitted by
/// the `crash_recovery` bench: a journaled population is driven through
/// `events_applied` mutating commands, its journal is truncated to the bytes
/// durable at a simulated `kill -9` (the `kill_point` fraction of the run),
/// and recovery replays snapshot + journal tail. `lost_events` is the
/// tail the crash discarded — bounded by the fsync policy's window — and
/// `replay_identical` records whether the recovered population was
/// bit-identical to a never-crashed replay of the surviving prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRecord {
    /// Name of the experiment that produced this record (e.g. `"crash"`).
    pub experiment: String,
    /// Protocol short-name the journaled population runs.
    pub protocol: String,
    /// Simulation backend hosting the population (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size of the journaled population.
    pub n: u64,
    /// Fsync policy spec (`"always"`, `"every:N"`, `"never"`).
    pub fsync: String,
    /// Fraction of the command stream after which the crash fired.
    pub kill_point: f64,
    /// Mutating commands applied (and journaled) before the crash.
    pub events_applied: u64,
    /// Commands recovered from snapshot + journal tail after the crash.
    pub events_recovered: u64,
    /// Commands lost to the crash (`events_applied - events_recovered`).
    pub lost_events: u64,
    /// Wall-clock milliseconds the boot-time recovery took.
    pub recovery_ms: f64,
    /// Whether the recovered state matched a never-crashed replay of the
    /// surviving prefix bit-for-bit (snapshot-serialization equality).
    pub replay_identical: bool,
    /// Base seed of the bench cell.
    pub seed: u64,
    /// Wall-clock seconds the cell took.
    pub wall_s: f64,
}

impl CrashRecord {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "crash");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_str("fsync", &self.fsync);
        obj.field_f64("kill_point", self.kill_point);
        obj.field_u64("events_applied", self.events_applied);
        obj.field_u64("events_recovered", self.events_recovered);
        obj.field_u64("lost_events", self.lost_events);
        obj.field_f64("recovery_ms", self.recovery_ms);
        obj.field_bool("replay_identical", self.replay_identical);
        obj.field_u64("seed", self.seed);
        obj.field_f64("wall_s", self.wall_s);
        obj.finish()
    }

    /// Parses a crash record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "crash" => {}
            other => return Err(format!("expected a crash record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(CrashRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            fsync: get_str(fields, "fsync")?.to_string(),
            kill_point: get_f64(fields, "kill_point")?,
            events_applied: get_u64(fields, "events_applied")?,
            events_recovered: get_u64(fields, "events_recovered")?,
            lost_events: get_u64(fields, "lost_events")?,
            recovery_ms: get_f64(fields, "recovery_ms")?,
            replay_identical: get_bool(fields, "replay_identical")?,
            seed: get_u64(fields, "seed")?,
            wall_s: get_f64(fields, "wall_s")?,
        })
    }
}

/// One per-population liveness row (`kind = "health"`, schema v8), as
/// reported by the `health` wire command of `ssle serve`: protocol identity,
/// live-agent count, journal position (`seq`) versus the last snapshot
/// (`snapshot_seq`), the resulting replay `lag`, and how many times the
/// watchdog has quarantined-and-healed a poisoned population since boot.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRecord {
    /// Name of the experiment that produced this record (e.g. `"health"`).
    pub experiment: String,
    /// Served population name.
    pub pop: String,
    /// Protocol short-name the population runs.
    pub protocol: String,
    /// Simulation backend (`"agents"` / `"counts"`).
    pub backend: String,
    /// Population size.
    pub n: u64,
    /// Live (non-tombstoned) agents.
    pub live: u64,
    /// Interactions simulated so far.
    pub interactions: u64,
    /// Whether the population currently has a unique ranked leader.
    pub ranked: bool,
    /// Journal sequence number of the last applied mutating command.
    pub seq: u64,
    /// Journal sequence number covered by the last snapshot.
    pub snapshot_seq: u64,
    /// Journaled-but-unsnapshotted commands (`seq - snapshot_seq`): the
    /// replay work a crash-restart would have to redo.
    pub lag: u64,
    /// Fsync policy spec the journal runs under (`"none"` if undurable).
    pub fsync: String,
    /// Poison-quarantine heals performed by the registry since boot.
    pub quarantines: u64,
}

impl HealthRecord {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "health");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("pop", &self.pop);
        obj.field_str("protocol", &self.protocol);
        obj.field_str("backend", &self.backend);
        obj.field_u64("n", self.n);
        obj.field_u64("live", self.live);
        obj.field_u64("interactions", self.interactions);
        obj.field_bool("ranked", self.ranked);
        obj.field_u64("seq", self.seq);
        obj.field_u64("snapshot_seq", self.snapshot_seq);
        obj.field_u64("lag", self.lag);
        obj.field_str("fsync", &self.fsync);
        obj.field_u64("quarantines", self.quarantines);
        obj.finish()
    }

    /// Parses a health record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "health" => {}
            other => return Err(format!("expected a health record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(HealthRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            pop: get_str(fields, "pop")?.to_string(),
            protocol: get_str(fields, "protocol")?.to_string(),
            backend: get_str(fields, "backend")?.to_string(),
            n: get_u64(fields, "n")?,
            live: get_u64(fields, "live")?,
            interactions: get_u64(fields, "interactions")?,
            ranked: get_bool(fields, "ranked")?,
            seq: get_u64(fields, "seq")?,
            snapshot_seq: get_u64(fields, "snapshot_seq")?,
            lag: get_u64(fields, "lag")?,
            fsync: get_str(fields, "fsync")?.to_string(),
            quarantines: get_u64(fields, "quarantines")?,
        })
    }
}

/// One per-wire-command latency aggregate (`kind = "server_stats"`,
/// schema v9), emitted by the `stats` wire command from the daemon's
/// request tracer. `count`/`rps` cover the window since boot or the last
/// `stats` reset; the `*_us` span fields are *mean* per-request
/// microseconds attributing where a request's time went; `hist` is the
/// end-to-end latency histogram in the shared `bound:count,…,inf:count`
/// log₂-bucket encoding (bounds in microseconds), empty when no request
/// landed. The pool/journal gauges (`busy`, `queue_depth`, `journal_lag`)
/// are daemon-global, repeated on every row of one `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStatsRecord {
    /// Name of the experiment/run that produced this record.
    pub experiment: String,
    /// The wire command this row aggregates (`"other"` for the rest).
    pub cmd: String,
    /// Requests served in the window.
    pub count: u64,
    /// Requests answered with `ok:false`.
    pub errors: u64,
    /// Sustained requests per second over the window.
    pub rps: f64,
    /// Median end-to-end latency (histogram bucket upper bound), µs.
    pub p50_us: f64,
    /// 95th-percentile end-to-end latency, µs.
    pub p95_us: f64,
    /// 99th-percentile end-to-end latency, µs.
    pub p99_us: f64,
    /// Mean end-to-end latency, µs.
    pub mean_us: f64,
    /// Mean pool-queue wait per request, µs.
    pub queue_us: f64,
    /// Mean request-parse time per request, µs.
    pub parse_us: f64,
    /// Mean registry-map lock wait per request, µs.
    pub registry_lock_us: f64,
    /// Mean per-population lock wait per request, µs.
    pub pop_lock_us: f64,
    /// Mean engine work per request, µs.
    pub engine_us: f64,
    /// Mean journal append (excluding fsync) per request, µs.
    pub journal_us: f64,
    /// Mean journal fsync per request, µs.
    pub fsync_us: f64,
    /// Mean response write+flush per request, µs.
    pub write_us: f64,
    /// End-to-end latency histogram (`bound:count,…`); empty if massless.
    pub hist: String,
    /// Seconds the window covers.
    pub window_s: f64,
    /// Busy-envelope refusals at the accept loop (daemon-global).
    pub busy: u64,
    /// Pool queue depth at the last accept (daemon-global gauge).
    pub queue_depth: u64,
    /// Requests past the `--slow-ms` threshold (daemon-global).
    pub slow: u64,
    /// Max journaled-but-unsnapshotted lag across populations
    /// (daemon-global).
    pub journal_lag: u64,
}

impl ServerStatsRecord {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "server_stats");
        obj.field_str("experiment", &self.experiment);
        obj.field_str("cmd", &self.cmd);
        obj.field_u64("count", self.count);
        obj.field_u64("errors", self.errors);
        obj.field_f64("rps", self.rps);
        obj.field_f64("p50_us", self.p50_us);
        obj.field_f64("p95_us", self.p95_us);
        obj.field_f64("p99_us", self.p99_us);
        obj.field_f64("mean_us", self.mean_us);
        obj.field_f64("queue_us", self.queue_us);
        obj.field_f64("parse_us", self.parse_us);
        obj.field_f64("registry_lock_us", self.registry_lock_us);
        obj.field_f64("pop_lock_us", self.pop_lock_us);
        obj.field_f64("engine_us", self.engine_us);
        obj.field_f64("journal_us", self.journal_us);
        obj.field_f64("fsync_us", self.fsync_us);
        obj.field_f64("write_us", self.write_us);
        obj.field_str("hist", &self.hist);
        obj.field_f64("window_s", self.window_s);
        obj.field_u64("busy", self.busy);
        obj.field_u64("queue_depth", self.queue_depth);
        obj.field_u64("slow", self.slow);
        obj.field_u64("journal_lag", self.journal_lag);
        obj.finish()
    }

    /// Parses a server-stats record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "server_stats" => {}
            other => return Err(format!("expected a server_stats record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(ServerStatsRecord {
            experiment: get_str(fields, "experiment")?.to_string(),
            cmd: get_str(fields, "cmd")?.to_string(),
            count: get_u64(fields, "count")?,
            errors: get_u64(fields, "errors")?,
            rps: get_f64(fields, "rps")?,
            p50_us: get_f64(fields, "p50_us")?,
            p95_us: get_f64(fields, "p95_us")?,
            p99_us: get_f64(fields, "p99_us")?,
            mean_us: get_f64(fields, "mean_us")?,
            queue_us: get_f64(fields, "queue_us")?,
            parse_us: get_f64(fields, "parse_us")?,
            registry_lock_us: get_f64(fields, "registry_lock_us")?,
            pop_lock_us: get_f64(fields, "pop_lock_us")?,
            engine_us: get_f64(fields, "engine_us")?,
            journal_us: get_f64(fields, "journal_us")?,
            fsync_us: get_f64(fields, "fsync_us")?,
            write_us: get_f64(fields, "write_us")?,
            hist: get_str(fields, "hist")?.to_string(),
            window_s: get_f64(fields, "window_s")?,
            busy: get_u64(fields, "busy")?,
            queue_depth: get_u64(fields, "queue_depth")?,
            slow: get_u64(fields, "slow")?,
            journal_lag: get_u64(fields, "journal_lag")?,
        })
    }
}

/// One request trace (`kind = "trace"`, schema v9) from the daemon's
/// flight recorder — dumped to JSONL on worker panic/quarantine or via
/// the `dump-trace` admin command. Span fields are microseconds; spans
/// are non-overlapping (`journal_us` excludes the fsync it triggered),
/// so they sum to at most `total_us`. `id` is the client request id
/// (retry dedup), letting retried requests correlate across traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The wire command (`"other"` for unparseable requests).
    pub cmd: String,
    /// Target population name; empty for population-less commands.
    pub pop: String,
    /// Client request id; empty when the client sent none.
    pub id: String,
    /// Whether the response carried `ok:true`.
    pub ok: bool,
    /// End-to-end microseconds (queue wait through response flush).
    pub total_us: u64,
    /// Pool-queue wait, µs (connection's first request only).
    pub queue_us: u64,
    /// Request-line parse, µs.
    pub parse_us: u64,
    /// Registry-map lock wait, µs.
    pub registry_lock_us: u64,
    /// Per-population lock wait, µs.
    pub pop_lock_us: u64,
    /// Engine work under the cell lock, µs.
    pub engine_us: u64,
    /// Journal append excluding fsync, µs.
    pub journal_us: u64,
    /// Journal fsync, µs.
    pub fsync_us: u64,
    /// Response write+flush, µs.
    pub write_us: u64,
}

impl TraceRecord {
    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("v", SCHEMA_VERSION as u64);
        obj.field_str("kind", "trace");
        obj.field_str("cmd", &self.cmd);
        obj.field_str("pop", &self.pop);
        obj.field_str("id", &self.id);
        obj.field_bool("ok", self.ok);
        obj.field_u64("total_us", self.total_us);
        obj.field_u64("queue_us", self.queue_us);
        obj.field_u64("parse_us", self.parse_us);
        obj.field_u64("registry_lock_us", self.registry_lock_us);
        obj.field_u64("pop_lock_us", self.pop_lock_us);
        obj.field_u64("engine_us", self.engine_us);
        obj.field_u64("journal_us", self.journal_us);
        obj.field_u64("fsync_us", self.fsync_us);
        obj.field_u64("write_us", self.write_us);
        obj.finish()
    }

    /// Parses a trace record from one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match record_kind(&fields)? {
            "trace" => {}
            other => return Err(format!("expected a trace record, got kind {other:?}")),
        }
        Self::from_fields(&fields)
    }

    fn from_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Self, String> {
        Ok(TraceRecord {
            cmd: get_str(fields, "cmd")?.to_string(),
            pop: get_str(fields, "pop")?.to_string(),
            id: get_str(fields, "id")?.to_string(),
            ok: get_bool(fields, "ok")?,
            total_us: get_u64(fields, "total_us")?,
            queue_us: get_u64(fields, "queue_us")?,
            parse_us: get_u64(fields, "parse_us")?,
            registry_lock_us: get_u64(fields, "registry_lock_us")?,
            pop_lock_us: get_u64(fields, "pop_lock_us")?,
            engine_us: get_u64(fields, "engine_us")?,
            journal_us: get_u64(fields, "journal_us")?,
            fsync_us: get_u64(fields, "fsync_us")?,
            write_us: get_u64(fields, "write_us")?,
        })
    }
}

/// One parsed line of a (possibly mixed) JSONL experiment stream.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordLine {
    /// A per-trial record.
    Trial(RunRecord),
    /// A per-fault record.
    Fault(FaultRecord),
    /// A backend-throughput measurement from the scaling frontier bench.
    Frontier(FrontierRecord),
    /// A within-run trajectory checkpoint.
    Timeline(TimelineRecord),
    /// An engine-telemetry summary.
    Metrics(MetricsRecord),
    /// A dynamic-population (churn / Byzantine) trial summary.
    Churn(ChurnRecord),
    /// A service-throughput measurement.
    Service(ServiceRecord),
    /// A crash-recovery measurement.
    Crash(CrashRecord),
    /// A served-population liveness/journal-lag row.
    Health(HealthRecord),
    /// A per-wire-command server latency aggregate.
    ServerStats(ServerStatsRecord),
    /// A flight-recorder request trace.
    Trace(TraceRecord),
}

impl RecordLine {
    /// Parses one line, dispatching on the `kind` discriminator (absent
    /// `kind` means a v1 trial record).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_json(line)?;
        check_version(&fields)?;
        match Self::from_known_fields(&fields)? {
            Some(line) => Ok(line),
            None => Err(format!("unknown record kind {:?}", record_kind(&fields)?)),
        }
    }

    /// Dispatches on an already-parsed field map; `Ok(None)` means the
    /// `kind` is well-formed but unknown to this reader (a future schema).
    fn from_known_fields(fields: &BTreeMap<String, JsonScalar>) -> Result<Option<Self>, String> {
        Ok(Some(match record_kind(fields)? {
            "trial" => RecordLine::Trial(RunRecord::from_fields(fields)?),
            "fault" => RecordLine::Fault(FaultRecord::from_fields(fields)?),
            "frontier" => RecordLine::Frontier(FrontierRecord::from_fields(fields)?),
            "timeline" => RecordLine::Timeline(TimelineRecord::from_fields(fields)?),
            "metrics" => RecordLine::Metrics(MetricsRecord::from_fields(fields)?),
            "churn" => RecordLine::Churn(ChurnRecord::from_fields(fields)?),
            "service" => RecordLine::Service(ServiceRecord::from_fields(fields)?),
            "crash" => RecordLine::Crash(CrashRecord::from_fields(fields)?),
            "health" => RecordLine::Health(HealthRecord::from_fields(fields)?),
            "server_stats" => RecordLine::ServerStats(ServerStatsRecord::from_fields(fields)?),
            "trace" => RecordLine::Trace(TraceRecord::from_fields(fields)?),
            _ => return Ok(None),
        }))
    }

    /// Serializes back to a single-line JSON object.
    pub fn to_json(&self) -> String {
        match self {
            RecordLine::Trial(r) => r.to_json(),
            RecordLine::Fault(f) => f.to_json(),
            RecordLine::Frontier(f) => f.to_json(),
            RecordLine::Timeline(t) => t.to_json(),
            RecordLine::Metrics(m) => m.to_json(),
            RecordLine::Churn(c) => c.to_json(),
            RecordLine::Service(s) => s.to_json(),
            RecordLine::Crash(c) => c.to_json(),
            RecordLine::Health(h) => h.to_json(),
            RecordLine::ServerStats(s) => s.to_json(),
            RecordLine::Trace(t) => t.to_json(),
        }
    }
}

/// Serializes records as JSONL: one [`RunRecord::to_json`] line per record.
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Serializes a mixed trial/fault stream as JSONL, one line per record.
pub fn to_jsonl_mixed(lines: &[RecordLine]) -> String {
    let mut out = String::new();
    for l in lines {
        out.push_str(&l.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL document (blank lines skipped) into **trial** records,
/// skipping fault and frontier lines — the historical contract of every
/// trial-level consumer. Use [`from_jsonl_mixed`] to see the other kinds.
///
/// The error names the offending line number.
pub fn from_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
    let lines = from_jsonl_mixed(text)?;
    Ok(lines
        .into_iter()
        .filter_map(|l| match l {
            RecordLine::Trial(r) => Some(r),
            RecordLine::Fault(_)
            | RecordLine::Frontier(_)
            | RecordLine::Timeline(_)
            | RecordLine::Metrics(_)
            | RecordLine::Churn(_)
            | RecordLine::Service(_)
            | RecordLine::Crash(_)
            | RecordLine::Health(_)
            | RecordLine::ServerStats(_)
            | RecordLine::Trace(_) => None,
        })
        .collect())
}

/// Parses a JSONL document (blank lines skipped) into a mixed stream of
/// trial and fault records, preserving line order.
///
/// The error names the offending line number.
pub fn from_jsonl_mixed(text: &str) -> Result<Vec<RecordLine>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = RecordLine::from_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// Result of a lenient mixed-stream parse: the lines this reader understood,
/// plus a tally of the ones it had to set aside. See [`from_jsonl_lenient`].
#[derive(Debug, Clone, PartialEq)]
pub struct LenientParse {
    /// Lines parsed into known record kinds, in stream order.
    pub records: Vec<RecordLine>,
    /// Set-aside lines as `(line_number, reason)` pairs — e.g.
    /// `(12, "kind \"galaxy\"")` or `(3, "version 7")`. Line numbers are
    /// 1-based.
    pub skipped: Vec<(usize, String)>,
}

/// Parses a JSONL document like [`from_jsonl_mixed`], but instead of erroring
/// on lines a *newer* writer could legitimately produce — an unknown `kind`,
/// or a version above [`SCHEMA_VERSION`] — it sets them aside in
/// [`LenientParse::skipped`] so the caller can warn with counts. Lines that
/// no writer should produce (malformed JSON, versions below
/// [`MIN_SCHEMA_VERSION`], known kinds with broken fields) still hard-error.
pub fn from_jsonl_lenient(text: &str) -> Result<LenientParse, String> {
    let mut out = LenientParse { records: Vec::new(), skipped: Vec::new() };
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let fields = parse_flat_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let version = get_u64(&fields, "v").map_err(|e| format!("line {lineno}: {e}"))?;
        if version > SCHEMA_VERSION as u64 {
            out.skipped.push((lineno, format!("version {version}")));
            continue;
        }
        if version < MIN_SCHEMA_VERSION as u64 {
            return Err(format!(
                "line {lineno}: unsupported record version {version} (reader supports \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        match RecordLine::from_known_fields(&fields).map_err(|e| format!("line {lineno}: {e}"))? {
            Some(record) => out.records.push(record),
            None => {
                let kind = record_kind(&fields).map_err(|e| format!("line {lineno}: {e}"))?;
                out.skipped.push((lineno, format!("kind {kind:?}")));
            }
        }
    }
    Ok(out)
}

/// Incremental builder for a single-line JSON object.
///
/// Exists so that the CLI's `--format json` output and [`RunRecord::to_json`]
/// share one escaping implementation.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field. Non-finite values serialize as `null` (JSON has
    /// no NaN/Infinity).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn field_null(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Adds a field whose value is pre-rendered JSON (e.g. a nested array
    /// built by the caller). The caller is responsible for its validity.
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// A scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

/// Parses a flat JSON object — string/number/bool/null values only, no
/// nesting — into a key → scalar map.
///
/// This is the subset [`RunRecord::to_json`] emits; nested values are
/// rejected with an error rather than skipped.
pub fn parse_flat_json(input: &str) -> Result<BTreeMap<String, JsonScalar>, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {:?}", byte_desc(other))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data after object at byte {}", p.pos));
    }
    Ok(map)
}

fn byte_desc(b: Option<u8>) -> String {
    match b {
        Some(b) => format!("{:?}", b as char),
        None => "end of input".to_string(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {}", want as char, byte_desc(other))),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("unterminated \\u escape")? as char;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {d:?} in \\u escape"))?;
                        }
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {}", byte_desc(other))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err("invalid UTF-8 in string".to_string()),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".to_string());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonScalar, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonScalar::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonScalar::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonScalar::Null),
            Some(b'{' | b'[') => Err("nested values are not supported".to_string()),
            Some(_) => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<f64>().map(JsonScalar::Num).map_err(|_| format!("bad number {text:?}"))
            }
            None => Err("expected a value, got end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonScalar) -> Result<JsonScalar, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected {lit}"))
        }
    }
}

fn get_str<'a>(fields: &'a BTreeMap<String, JsonScalar>, key: &str) -> Result<&'a str, String> {
    match fields.get(key) {
        Some(JsonScalar::Str(s)) => Ok(s),
        Some(other) => Err(format!("field {key:?}: expected string, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_f64(fields: &BTreeMap<String, JsonScalar>, key: &str) -> Result<f64, String> {
    match fields.get(key) {
        Some(JsonScalar::Num(x)) => Ok(*x),
        Some(other) => Err(format!("field {key:?}: expected number, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_u64(fields: &BTreeMap<String, JsonScalar>, key: &str) -> Result<u64, String> {
    let x = get_f64(fields, key)?;
    if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
        Ok(x as u64)
    } else {
        Err(format!("field {key:?}: expected a non-negative integer, got {x}"))
    }
}

fn get_bool(fields: &BTreeMap<String, JsonScalar>, key: &str) -> Result<bool, String> {
    match fields.get(key) {
        Some(JsonScalar::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("field {key:?}: expected bool, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        RunRecord {
            experiment: "table1".to_string(),
            protocol: "oss".to_string(),
            n: 64,
            h: None,
            trial: 3,
            seed: 1,
            outcome: RunOutcome::Converged { interactions: 12_345 },
            wall_s: 0.25,
            availability: None,
            faults: None,
            scheduler: None,
            omission: None,
            starve_window: None,
        }
    }

    fn sample_fault_record() -> FaultRecord {
        FaultRecord {
            experiment: "recovery".to_string(),
            protocol: "oss".to_string(),
            n: 256,
            h: None,
            trial: 3,
            seed: 1,
            action: "corrupt_random".to_string(),
            agents: 16,
            injected_at: 250_000,
            recovered_at: Some(280_000),
        }
    }

    fn sample_frontier_record() -> FrontierRecord {
        FrontierRecord {
            experiment: "frontier".to_string(),
            protocol: "epidemic".to_string(),
            backend: "counts".to_string(),
            n: 100_000_000,
            trial: 0,
            seed: 1,
            outcome: RunOutcome::Converged { interactions: 3_700_000_000 },
            wall_s: 12.5,
            support: Some(2),
            leaders: None,
        }
    }

    #[test]
    fn frontier_record_round_trips() {
        let f = sample_frontier_record();
        let json = f.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"frontier\","), "{json}");
        assert!(json.contains("\"backend\":\"counts\""), "{json}");
        assert!(json.contains("\"support\":2"), "{json}");
        assert!(json.contains("\"leaders\":null"), "{json}");
        assert_eq!(FrontierRecord::from_json(&json).unwrap(), f);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Frontier(f.clone()));
        let bounded = FrontierRecord {
            backend: "agents".to_string(),
            support: None,
            leaders: Some(1),
            outcome: RunOutcome::Exhausted { interactions: 42 },
            ..f
        };
        assert_eq!(FrontierRecord::from_json(&bounded.to_json()).unwrap(), bounded);
    }

    fn sample_timeline_record() -> TimelineRecord {
        TimelineRecord {
            experiment: "simulate".to_string(),
            protocol: "ciw".to_string(),
            backend: "agents".to_string(),
            n: 1000,
            trial: 0,
            seed: 1,
            interactions: 4096,
            leaders: 17,
            ranks_ok: 921,
            support: None,
            phases: Some("propagate:12,reset:3".to_string()),
        }
    }

    #[test]
    fn timeline_record_round_trips() {
        let t = sample_timeline_record();
        let json = t.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"timeline\","), "{json}");
        assert!(json.contains("\"parallel_time\":4.096"), "{json}");
        assert!(json.contains("\"phases\":\"propagate:12,reset:3\""), "{json}");
        assert_eq!(TimelineRecord::from_json(&json).unwrap(), t);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Timeline(t.clone()));
        let bare = TimelineRecord { phases: None, support: Some(5), ..t };
        assert_eq!(TimelineRecord::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn timeline_phases_decode() {
        let t = sample_timeline_record();
        assert_eq!(
            t.phase_counts().unwrap(),
            vec![("propagate".to_string(), 12), ("reset".to_string(), 3)]
        );
        let none = TimelineRecord { phases: None, ..t.clone() };
        assert!(none.phase_counts().unwrap().is_empty());
        let bad = TimelineRecord { phases: Some("oops".to_string()), ..t };
        assert!(bad.phase_counts().is_err());
    }

    fn sample_metrics_record() -> MetricsRecord {
        MetricsRecord {
            experiment: "simulate".to_string(),
            protocol: "epidemic".to_string(),
            backend: "counts".to_string(),
            n: 1_000_000,
            trial: Some(0),
            seed: 1,
            wall_s: 0.5,
            interactions: 2_000_000,
            batches: 4_000,
            batched_pairs: 1_999_000,
            exact_steps: 1_000,
            rng_draws: 4_010_000,
            memo_hits: 1_990_000,
            memo_misses: 10_000,
            compactions: 3,
            support: 2,
            raw_len: 5,
            flushes: 4_000,
            batch_hist: Some("256:12,512:3988".to_string()),
            sample_s: 0.1,
            transition_s: 0.3,
            probe_s: 0.05,
            observe_s: 0.0,
        }
    }

    #[test]
    fn metrics_record_round_trips() {
        let m = sample_metrics_record();
        let json = m.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"metrics\","), "{json}");
        assert!(json.contains("\"batch_hist\":\"256:12,512:3988\""), "{json}");
        assert!(json.contains("\"ips\":4000000"), "{json}");
        assert_eq!(MetricsRecord::from_json(&json).unwrap(), m);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Metrics(m.clone()));
        let merged = MetricsRecord { trial: None, batch_hist: None, ..m };
        let json = merged.to_json();
        assert!(json.contains("\"trial\":null"), "{json}");
        assert_eq!(MetricsRecord::from_json(&json).unwrap(), merged);
    }

    #[test]
    fn metrics_rates_and_histogram_decode() {
        let m = sample_metrics_record();
        assert!((m.fallback_rate() - 1_000.0 / 2_000_000.0).abs() < 1e-12);
        assert!((m.memo_hit_rate() - 0.995).abs() < 1e-12);
        assert_eq!(
            m.batch_hist_counts().unwrap(),
            vec![("256".to_string(), 12), ("512".to_string(), 3988)]
        );
        let none = MetricsRecord { batch_hist: None, ..m.clone() };
        assert!(none.batch_hist_counts().unwrap().is_empty());
        let bad = MetricsRecord { batch_hist: Some("oops".to_string()), ..m };
        assert!(bad.batch_hist_counts().is_err());
    }

    #[test]
    fn metrics_lines_are_invisible_to_the_trial_reader() {
        let text =
            format!("{}\n{}\n", sample_record().to_json(), sample_metrics_record().to_json());
        assert_eq!(from_jsonl(&text).unwrap().len(), 1);
        let mixed = from_jsonl_mixed(&text).unwrap();
        assert_eq!(mixed.len(), 2);
        assert_eq!(mixed[1].to_json(), sample_metrics_record().to_json());
    }

    #[test]
    fn metrics_kind_mismatch_is_an_error() {
        let err = MetricsRecord::from_json(&sample_record().to_json()).unwrap_err();
        assert!(err.contains("metrics"), "{err}");
        let err = RunRecord::from_json(&sample_metrics_record().to_json()).unwrap_err();
        assert!(err.contains("trial"), "{err}");
    }

    #[test]
    fn timeline_lines_are_invisible_to_the_trial_reader() {
        let text =
            format!("{}\n{}\n", sample_record().to_json(), sample_timeline_record().to_json());
        assert_eq!(from_jsonl(&text).unwrap().len(), 1);
        let mixed = from_jsonl_mixed(&text).unwrap();
        assert_eq!(mixed.len(), 2);
        assert_eq!(mixed[1].to_json(), sample_timeline_record().to_json());
    }

    #[test]
    fn timeline_kind_mismatch_is_an_error() {
        let err = TimelineRecord::from_json(&sample_record().to_json()).unwrap_err();
        assert!(err.contains("timeline"), "{err}");
        let err = RunRecord::from_json(&sample_timeline_record().to_json()).unwrap_err();
        assert!(err.contains("trial"), "{err}");
    }

    #[test]
    fn frontier_lines_are_invisible_to_the_trial_reader() {
        let text =
            format!("{}\n{}\n", sample_record().to_json(), sample_frontier_record().to_json());
        let trials = from_jsonl(&text).unwrap();
        assert_eq!(trials.len(), 1);
        let mixed = from_jsonl_mixed(&text).unwrap();
        assert_eq!(mixed.len(), 2);
        assert_eq!(mixed[1].to_json(), sample_frontier_record().to_json());
    }

    #[test]
    fn frontier_kind_mismatch_is_an_error() {
        let err = FrontierRecord::from_json(&sample_record().to_json()).unwrap_err();
        assert!(err.contains("frontier"), "{err}");
        let err = RunRecord::from_json(&sample_frontier_record().to_json()).unwrap_err();
        assert!(err.contains("trial"), "{err}");
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample_record();
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);

        let with_h = RunRecord {
            protocol: "sublinear".to_string(),
            h: Some(2),
            outcome: RunOutcome::Exhausted { interactions: 999 },
            ..r
        };
        let parsed = RunRecord::from_json(&with_h.to_json()).unwrap();
        assert_eq!(parsed, with_h);
    }

    #[test]
    fn jsonl_round_trips_and_skips_blank_lines() {
        let records = vec![sample_record(), RunRecord { trial: 4, ..sample_record() }];
        let mut text = to_jsonl(&records);
        text.push('\n'); // trailing blank line
        assert_eq!(from_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn derived_fields_are_emitted() {
        let json = sample_record().to_json();
        assert!(json.contains("\"parallel_time\":"), "{json}");
        assert!(json.contains("\"ips\":49380"), "{json}");
        assert!(json.starts_with("{\"v\":9,\"kind\":\"trial\","), "version leads: {json}");
        assert!(
            !json.contains("availability") && !json.contains("faults"),
            "chaos fields only appear when set: {json}"
        );
    }

    #[test]
    fn chaos_fields_round_trip_when_set() {
        let r = RunRecord { availability: Some(0.9921875), faults: Some(4), ..sample_record() };
        let json = r.to_json();
        assert!(json.contains("\"availability\":0.9921875"), "{json}");
        assert!(json.contains("\"faults\":4"), "{json}");
        assert_eq!(RunRecord::from_json(&json).unwrap(), r);
    }

    #[test]
    fn v1_lines_without_kind_still_parse() {
        // A line exactly as the v1 writer emitted it.
        let json = "{\"v\":1,\"experiment\":\"table1\",\"protocol\":\"oss\",\"n\":64,\
                    \"h\":null,\"trial\":3,\"seed\":1,\"outcome\":\"converged\",\
                    \"interactions\":12345,\"parallel_time\":192.890625,\"wall_s\":0.25,\
                    \"ips\":49380}";
        assert_eq!(RunRecord::from_json(json).unwrap(), sample_record());
        assert_eq!(RecordLine::from_json(json).unwrap(), RecordLine::Trial(sample_record()));
    }

    #[test]
    fn fault_record_round_trips() {
        let f = sample_fault_record();
        let json = f.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"fault\","), "{json}");
        assert!(json.contains("\"recovery_parallel_time\":"), "{json}");
        assert_eq!(FaultRecord::from_json(&json).unwrap(), f);
        assert_eq!(f.recovery_interactions(), Some(30_000));
        let censored = FaultRecord { recovered_at: None, ..f };
        let parsed = FaultRecord::from_json(&censored.to_json()).unwrap();
        assert_eq!(parsed, censored);
        assert_eq!(parsed.recovery_parallel_time(), None);
    }

    #[test]
    fn mixed_streams_parse_and_trial_reader_skips_faults() {
        let text = format!(
            "{}\n{}\n{}\n",
            sample_record().to_json(),
            sample_fault_record().to_json(),
            RunRecord { trial: 4, ..sample_record() }.to_json()
        );
        let mixed = from_jsonl_mixed(&text).unwrap();
        assert_eq!(mixed.len(), 3);
        assert_eq!(mixed[1], RecordLine::Fault(sample_fault_record()));
        assert_eq!(mixed[1].to_json(), sample_fault_record().to_json());
        let trials = from_jsonl(&text).unwrap();
        assert_eq!(trials.len(), 2, "fault lines are invisible to the trial reader");
        assert_eq!(trials[1].trial, 4);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let err = RunRecord::from_json(&sample_fault_record().to_json()).unwrap_err();
        assert!(err.contains("trial"), "{err}");
        let err = FaultRecord::from_json(&sample_record().to_json()).unwrap_err();
        assert!(err.contains("fault"), "{err}");
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let mut json = sample_record().to_json();
        json.insert_str(json.len() - 1, ",\"future_field\":\"yes\"");
        assert_eq!(RunRecord::from_json(&json).unwrap(), sample_record());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let json = sample_record().to_json().replace("\"v\":9", "\"v\":10");
        let err = RunRecord::from_json(&json).unwrap_err();
        assert!(err.contains("version"), "{err}");
        let json = sample_record().to_json().replace("\"v\":9", "\"v\":0");
        assert!(RunRecord::from_json(&json).is_err());
    }

    #[test]
    fn robustness_fields_round_trip_when_set() {
        let r = sample_record().with_robustness(
            Some("starve:4:256".to_string()),
            Some(0.25),
            Some(256),
        );
        let json = r.to_json();
        assert!(json.contains("\"scheduler\":\"starve:4:256\""), "{json}");
        assert!(json.contains("\"omission\":0.25"), "{json}");
        assert!(json.contains("\"starve_window\":256"), "{json}");
        assert_eq!(RunRecord::from_json(&json).unwrap(), r);
    }

    #[test]
    fn uniform_perfect_robustness_normalizes_to_absent_fields() {
        let r = sample_record().with_robustness(Some("uniform".to_string()), Some(0.0), None);
        assert_eq!(r, sample_record());
        assert!(!r.to_json().contains("scheduler"), "baseline serializes as pre-v3");
    }

    #[test]
    fn missing_field_is_an_error_with_line_number() {
        let good = sample_record().to_json();
        let bad = good.replace("\"seed\":1,", "");
        let text = format!("{good}\n{bad}\n");
        let err = from_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn string_escaping_round_trips() {
        let r = RunRecord {
            experiment: "weird \"name\"\twith\nnewline\\slash".to_string(),
            ..sample_record()
        };
        assert_eq!(RunRecord::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn parser_rejects_nesting_and_trailing_garbage() {
        assert!(parse_flat_json("{\"a\":[1]}").unwrap_err().contains("nested"));
        assert!(parse_flat_json("{\"a\":1} extra").unwrap_err().contains("trailing"));
        assert!(parse_flat_json("{\"a\":1").is_err());
    }

    #[test]
    fn json_object_builder_emits_all_types() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "x");
        obj.field_u64("u", 7);
        obj.field_f64("f", 1.5);
        obj.field_f64("nan", f64::NAN);
        obj.field_bool("b", true);
        obj.field_null("z");
        obj.field_raw("arr", "[1,2]");
        assert_eq!(
            obj.finish(),
            "{\"s\":\"x\",\"u\":7,\"f\":1.5,\"nan\":null,\"b\":true,\"z\":null,\"arr\":[1,2]}"
        );
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_flat_json(" { } ").unwrap().is_empty());
    }

    fn sample_churn_record() -> ChurnRecord {
        ChurnRecord {
            experiment: "churn".to_string(),
            protocol: "ciw".to_string(),
            backend: "agents".to_string(),
            n: 64,
            final_n: 66,
            h: None,
            trial: 3,
            seed: 9,
            churn: "2.0".to_string(),
            byzantine: 0.05,
            joins: 4,
            leaves: 2,
            replacements: 11,
            byz_strikes: 310,
            faults: 17,
            availability: 0.82,
            ranked_availability: 0.64,
            recovered: 15,
            mean_recovery_pt: Some(12.5),
            first_ranked_pt: Some(30.0),
            interactions: 200_000,
            parallel_time: 3101.6,
            wall_s: 0.4,
        }
    }

    fn sample_service_record() -> ServiceRecord {
        ServiceRecord {
            experiment: "service".to_string(),
            protocol: "oss".to_string(),
            backend: "counts".to_string(),
            n: 10_000,
            clients: 8,
            requests: 4_000,
            rps: 1_234.5,
            p50_us: 210.0,
            p99_us: 1_900.0,
            seed: 5,
            wall_s: 3.24,
        }
    }

    #[test]
    fn service_record_round_trips() {
        let s = sample_service_record();
        let json = s.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"service\","), "{json}");
        assert!(json.contains("\"clients\":8"), "{json}");
        assert!(json.contains("\"p99_us\":1900"), "{json}");
        assert_eq!(ServiceRecord::from_json(&json).unwrap(), s);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Service(s.clone()));
        // Mixed streams carry service lines; the trial-only reader skips them.
        let lines = vec![RecordLine::Trial(sample_record()), RecordLine::Service(s)];
        let text = to_jsonl_mixed(&lines);
        assert_eq!(from_jsonl_mixed(&text).unwrap(), lines);
        assert_eq!(from_jsonl(&text).unwrap(), vec![sample_record()]);
    }

    fn sample_crash_record() -> CrashRecord {
        CrashRecord {
            experiment: "crash".to_string(),
            protocol: "ciw".to_string(),
            backend: "agents".to_string(),
            n: 256,
            fsync: "every:16".to_string(),
            kill_point: 0.5,
            events_applied: 200,
            events_recovered: 192,
            lost_events: 8,
            recovery_ms: 4.75,
            replay_identical: true,
            seed: 11,
            wall_s: 0.9,
        }
    }

    fn sample_health_record() -> HealthRecord {
        HealthRecord {
            experiment: "health".to_string(),
            pop: "alpha".to_string(),
            protocol: "oss".to_string(),
            backend: "counts".to_string(),
            n: 1_000,
            live: 998,
            interactions: 500_000,
            ranked: true,
            seq: 73,
            snapshot_seq: 64,
            lag: 9,
            fsync: "always".to_string(),
            quarantines: 1,
        }
    }

    #[test]
    fn crash_record_round_trips() {
        let c = sample_crash_record();
        let json = c.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"crash\","), "{json}");
        assert!(json.contains("\"fsync\":\"every:16\""), "{json}");
        assert!(json.contains("\"lost_events\":8"), "{json}");
        assert!(json.contains("\"replay_identical\":true"), "{json}");
        assert_eq!(CrashRecord::from_json(&json).unwrap(), c);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Crash(c.clone()));
        // The trial-only reader skips crash lines.
        let lines = vec![RecordLine::Trial(sample_record()), RecordLine::Crash(c)];
        let text = to_jsonl_mixed(&lines);
        assert_eq!(from_jsonl_mixed(&text).unwrap(), lines);
        assert_eq!(from_jsonl(&text).unwrap(), vec![sample_record()]);
    }

    #[test]
    fn health_record_round_trips() {
        let h = sample_health_record();
        let json = h.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"health\","), "{json}");
        assert!(json.contains("\"lag\":9"), "{json}");
        assert!(json.contains("\"ranked\":true"), "{json}");
        assert!(json.contains("\"quarantines\":1"), "{json}");
        assert_eq!(HealthRecord::from_json(&json).unwrap(), h);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Health(h.clone()));
        let lines = vec![RecordLine::Trial(sample_record()), RecordLine::Health(h)];
        let text = to_jsonl_mixed(&lines);
        assert_eq!(from_jsonl_mixed(&text).unwrap(), lines);
        assert_eq!(from_jsonl(&text).unwrap(), vec![sample_record()]);
    }

    #[test]
    fn bool_fields_reject_non_bools() {
        let json = sample_crash_record().to_json().replace("true", "\"yes\"");
        let err = CrashRecord::from_json(&json).unwrap_err();
        assert!(err.contains("replay_identical"), "{err}");
    }

    #[test]
    fn churn_record_round_trips() {
        let c = sample_churn_record();
        let json = c.to_json();
        assert!(json.starts_with("{\"v\":9,\"kind\":\"churn\","), "{json}");
        assert!(json.contains("\"churn\":\"2.0\""), "{json}");
        assert!(json.contains("\"byzantine\":0.05"), "{json}");
        assert!(json.contains("\"final_n\":66"), "{json}");
        assert_eq!(ChurnRecord::from_json(&json).unwrap(), c);
        assert_eq!(RecordLine::from_json(&json).unwrap(), RecordLine::Churn(c.clone()));
        let bare = ChurnRecord {
            h: Some(4),
            mean_recovery_pt: None,
            first_ranked_pt: None,
            churn: "none".to_string(),
            ..c
        };
        let json = bare.to_json();
        assert!(json.contains("\"mean_recovery_pt\":null"), "{json}");
        assert_eq!(ChurnRecord::from_json(&json).unwrap(), bare);
    }

    #[test]
    fn churn_lines_survive_mixed_round_trip() {
        let lines =
            vec![RecordLine::Trial(sample_record()), RecordLine::Churn(sample_churn_record())];
        let text = to_jsonl_mixed(&lines);
        assert_eq!(from_jsonl_mixed(&text).unwrap(), lines);
        // The trial-only reader keeps its historical contract.
        assert_eq!(from_jsonl(&text).unwrap(), vec![sample_record()]);
    }

    #[test]
    fn lenient_parse_sets_aside_future_lines() {
        let known = sample_churn_record().to_json();
        let future_version = known.replace("\"v\":9", "\"v\":10");
        let future_kind = known.replace("\"kind\":\"churn\"", "\"kind\":\"galaxy\"");
        let text = format!("{known}\n{future_version}\n{future_kind}\n");
        let parsed = from_jsonl_lenient(&text).unwrap();
        assert_eq!(parsed.records, vec![RecordLine::Churn(sample_churn_record())]);
        assert_eq!(
            parsed.skipped,
            vec![(2, "version 10".to_string()), (3, "kind \"galaxy\"".to_string())]
        );
        // Strict mixed parsing still rejects the same stream.
        assert!(from_jsonl_mixed(&text).is_err());
    }

    #[test]
    fn lenient_parse_still_hard_errors_on_garbage() {
        // Below MIN_SCHEMA_VERSION: no writer should produce this.
        let stale = sample_churn_record().to_json().replace("\"v\":9", "\"v\":0");
        assert!(from_jsonl_lenient(&stale).unwrap_err().contains("version"));
        // Malformed JSON is a hard error too.
        assert!(from_jsonl_lenient("{\"v\":8,").is_err());
        // A known kind with broken fields is a hard error, not a skip.
        let broken = "{\"v\":9,\"kind\":\"churn\",\"experiment\":\"x\"}";
        assert!(from_jsonl_lenient(broken).is_err());
    }
}
