//! The uniformly random scheduler.
//!
//! At each step of an execution, the paper's scheduler "picks randomly an
//! ordered pair of agents" — uniformly among all ordered pairs of distinct
//! agents for the complete graph, or among the orientations of the graph's
//! edges otherwise.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

use crate::graph::InteractionGraph;

/// Samples a uniform integer in `0..span` from one (expected) 64-bit draw
/// using Lemire's widening-multiply rejection method — no modulo on the
/// accept path and no bias for any `span`.
///
/// This is the hot-path primitive behind both [`Scheduler::sample_pair`] on
/// the complete graph and the count-based backend's weighted state draws
/// ([`crate::counts`]); the generic `Rng::gen_range` in the vendored `rand`
/// reduces a 128-bit product with a 128-bit modulo per call, which is both
/// slower and (negligibly but measurably) biased.
///
/// # Panics
///
/// Panics in debug builds if `span == 0`.
#[inline]
pub(crate) fn uniform_u64(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0, "cannot sample from an empty range");
    // Accept x when the low 64 bits of x·span land outside the "short"
    // zone of size 2^64 mod span; each residue then occurs exactly
    // ⌊2^64/span⌋ times.
    let zone = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

/// A sampler of ordered interaction pairs over a fixed graph.
///
/// Separated from [`crate::Simulation`] so protocol-independent processes
/// (epidemics, roll call) can reuse it.
#[derive(Debug, Clone)]
pub struct Scheduler {
    n: usize,
    graph: InteractionGraph,
}

impl Scheduler {
    /// Creates a scheduler for `n` agents on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no ordered pair exists) or if an arbitrary graph
    /// was validated for a different population size.
    pub fn new(n: usize, graph: InteractionGraph) -> Self {
        assert!(n >= 2, "scheduling requires at least two agents, got {n}");
        if let InteractionGraph::Arbitrary(list) = &graph {
            assert_eq!(
                list.population_size(),
                n,
                "edge list was validated for a different population size"
            );
        }
        Scheduler { n, graph }
    }

    /// The population size.
    pub fn population_size(&self) -> usize {
        self.n
    }

    /// The underlying graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// Samples one uniformly random ordered pair `(initiator, responder)`.
    #[inline]
    pub fn sample_pair(&self, rng: &mut SmallRng) -> (usize, usize) {
        match &self.graph {
            InteractionGraph::Complete => {
                // One draw over the n(n−1) ordered pairs instead of two
                // `gen_range` calls: halves the RNG work and replaces the
                // 128-bit modulo reduction with a widening multiply.
                let n = self.n as u64;
                debug_assert!(n <= u64::from(u32::MAX), "n(n−1) must fit in 64 bits");
                let idx = uniform_u64(rng, n * (n - 1));
                let i = (idx / (n - 1)) as usize;
                let mut j = (idx % (n - 1)) as usize;
                if j >= i {
                    j += 1;
                }
                (i, j)
            }
            InteractionGraph::Ring => {
                let i = rng.gen_range(0..self.n);
                let j = if self.n == 2 {
                    1 - i
                } else if rng.gen::<bool>() {
                    (i + 1) % self.n
                } else {
                    (i + self.n - 1) % self.n
                };
                (i, j)
            }
            InteractionGraph::Arbitrary(list) => {
                let edges = list.edges();
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                if rng.gen::<bool>() {
                    (u, v)
                } else {
                    (v, u)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::rng_from_seed;
    use std::collections::HashMap;

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_singleton_population() {
        Scheduler::new(1, InteractionGraph::Complete);
    }

    #[test]
    #[should_panic(expected = "different population size")]
    fn rejects_mismatched_edge_list() {
        let g = InteractionGraph::from_edges(3, vec![(0, 1)]).unwrap();
        Scheduler::new(4, g);
    }

    #[test]
    fn complete_pairs_are_distinct_and_in_range() {
        let s = Scheduler::new(5, InteractionGraph::Complete);
        let mut rng = rng_from_seed(1);
        for _ in 0..10_000 {
            let (i, j) = s.sample_pair(&mut rng);
            assert!(i < 5 && j < 5 && i != j);
        }
    }

    #[test]
    fn complete_pairs_are_roughly_uniform() {
        let n = 4;
        let s = Scheduler::new(n, InteractionGraph::Complete);
        let mut rng = rng_from_seed(2);
        let mut counts: HashMap<(usize, usize), u32> = HashMap::new();
        let trials = 120_000;
        for _ in 0..trials {
            *counts.entry(s.sample_pair(&mut rng)).or_default() += 1;
        }
        assert_eq!(counts.len(), n * (n - 1), "all ordered pairs occur");
        let expected = trials as f64 / (n * (n - 1)) as f64;
        for (&pair, &c) in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "pair {pair:?} occurred {c} times, expected ≈{expected}");
        }
    }

    #[test]
    fn uniform_u64_covers_every_residue_evenly() {
        // A span that does not divide 2^64, so the rejection zone is
        // exercised; every residue must appear at the uniform rate.
        let span = 12u64;
        let mut rng = rng_from_seed(6);
        let mut counts = vec![0u32; span as usize];
        let trials = 120_000;
        for _ in 0..trials {
            let x = uniform_u64(&mut rng, span);
            counts[x as usize] += 1;
        }
        let expected = trials as f64 / span as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "residue {x} occurred {c} times, expected ≈{expected}");
        }
    }

    #[test]
    fn uniform_u64_handles_degenerate_spans() {
        let mut rng = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(uniform_u64(&mut rng, 1), 0);
        }
        // Power-of-two spans have an empty rejection zone.
        for _ in 0..100 {
            assert!(uniform_u64(&mut rng, 8) < 8);
        }
    }

    #[test]
    fn ring_pairs_are_adjacent() {
        let n = 6;
        let s = Scheduler::new(n, InteractionGraph::Ring);
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            let (i, j) = s.sample_pair(&mut rng);
            let diff = (i as isize - j as isize).rem_euclid(n as isize);
            assert!(diff == 1 || diff == n as isize - 1, "({i},{j}) is not a ring edge");
        }
    }

    #[test]
    fn two_agent_ring_always_pairs_them() {
        let s = Scheduler::new(2, InteractionGraph::Ring);
        let mut rng = rng_from_seed(4);
        for _ in 0..100 {
            let (i, j) = s.sample_pair(&mut rng);
            assert!(i != j && i < 2 && j < 2);
        }
    }

    #[test]
    fn arbitrary_graph_samples_only_listed_edges_both_orientations() {
        let g = InteractionGraph::from_edges(4, vec![(0, 3)]).unwrap();
        let s = Scheduler::new(4, g);
        let mut rng = rng_from_seed(5);
        let mut saw = [false, false];
        for _ in 0..1000 {
            match s.sample_pair(&mut rng) {
                (0, 3) => saw[0] = true,
                (3, 0) => saw[1] = true,
                other => panic!("sampled non-edge {other:?}"),
            }
        }
        assert!(saw[0] && saw[1], "both orientations should occur");
    }
}
