//! Schedulers: who interacts with whom, and when.
//!
//! At each step of an execution, the paper's scheduler "picks randomly an
//! ordered pair of agents" — uniformly among all ordered pairs of distinct
//! agents for the complete graph, or among the orientations of the graph's
//! edges otherwise. That uniform scheduler is [`Scheduler`], and it remains
//! the default everywhere.
//!
//! Self-stabilization claims are only as strong as the scheduler they assume,
//! so this module also defines [`SchedulerPolicy`] — the pluggable pair
//! sampler [`crate::Simulation`] is generic over — and a family of
//! non-uniform/adversarial policies for robustness experiments:
//!
//! * [`Scheduler`] — the paper's uniform scheduler (zero-cost default);
//! * [`Zipf`] — power-law agent popularity;
//! * [`EdgeRates`] — per-edge rate heterogeneity over an explicit edge list;
//! * [`EpochStarvation`] — a fairness-bounded adversary that starves a chosen
//!   agent set during alternating windows;
//! * [`Clustered`] — block-confined interactions with rare cross-block
//!   contact;
//! * [`AnyScheduler`] — a runtime-dispatched sum of the above for CLI use.
//!
//! Orthogonally, [`Reliability`] models *unreliable* interactions: omission
//! (the sampled pair meets but the transition is silently dropped) and
//! one-way application (only the initiator updates).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

use crate::graph::{EdgeList, InteractionGraph};

/// Samples a uniform integer in `0..span` from one (expected) 64-bit draw
/// using Lemire's widening-multiply rejection method — no modulo on the
/// accept path and no bias for any `span`.
///
/// This is the hot-path primitive behind both [`Scheduler::sample_pair`] on
/// the complete graph and the count-based backend's weighted state draws
/// ([`crate::counts`]). The previous implementation reduced the raw 64-bit
/// draw with a modulo, which is slower (a hardware divide per call) and
/// (negligibly but measurably) biased toward small residues whenever `span`
/// does not divide 2⁶⁴; the rejection zone below removes that bias exactly —
/// see the chi-squared test `uniform_u64_passes_chi_squared`.
///
/// # Panics
///
/// Panics in debug builds if `span == 0`.
#[inline]
pub(crate) fn uniform_u64(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0, "cannot sample from an empty range");
    // Accept x when the low 64 bits of x·span land outside the "short"
    // zone of size 2^64 mod span; each residue then occurs exactly
    // ⌊2^64/span⌋ times.
    let zone = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

/// A sampler of ordered interaction pairs over a fixed graph.
///
/// Separated from [`crate::Simulation`] so protocol-independent processes
/// (epidemics, roll call) can reuse it.
#[derive(Debug, Clone)]
pub struct Scheduler {
    n: usize,
    graph: InteractionGraph,
}

impl Scheduler {
    /// Creates a scheduler for `n` agents on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no ordered pair exists) or if an arbitrary graph
    /// was validated for a different population size.
    pub fn new(n: usize, graph: InteractionGraph) -> Self {
        assert!(n >= 2, "scheduling requires at least two agents, got {n}");
        if let InteractionGraph::Arbitrary(list) = &graph {
            assert_eq!(
                list.population_size(),
                n,
                "edge list was validated for a different population size"
            );
        }
        Scheduler { n, graph }
    }

    /// The population size.
    pub fn population_size(&self) -> usize {
        self.n
    }

    /// The underlying graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// Samples one uniformly random ordered pair `(initiator, responder)`.
    #[inline]
    pub fn sample_pair(&self, rng: &mut SmallRng) -> (usize, usize) {
        match &self.graph {
            InteractionGraph::Complete => {
                // One draw over the n(n−1) ordered pairs instead of two
                // `gen_range` calls: halves the RNG work and replaces the
                // 128-bit modulo reduction with a widening multiply.
                let n = self.n as u64;
                debug_assert!(n <= u64::from(u32::MAX), "n(n−1) must fit in 64 bits");
                let idx = uniform_u64(rng, n * (n - 1));
                let i = (idx / (n - 1)) as usize;
                let mut j = (idx % (n - 1)) as usize;
                if j >= i {
                    j += 1;
                }
                (i, j)
            }
            InteractionGraph::Ring => {
                let i = rng.gen_range(0..self.n);
                let j = if self.n == 2 {
                    1 - i
                } else if rng.gen::<bool>() {
                    (i + 1) % self.n
                } else {
                    (i + self.n - 1) % self.n
                };
                (i, j)
            }
            InteractionGraph::Arbitrary(list) => {
                let edges = list.edges();
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                if rng.gen::<bool>() {
                    (u, v)
                } else {
                    (v, u)
                }
            }
        }
    }
}

/// A pluggable pair sampler: given the RNG and the number of interactions
/// performed so far, produce the next ordered pair `(initiator, responder)`.
///
/// [`crate::Simulation`] is generic over this trait with [`Scheduler`] (the
/// paper's uniform scheduler) as the default, so the uniform hot path
/// monomorphizes to exactly the pre-trait code — the same zero-cost plug-in
/// pattern as [`crate::Observer`] and [`crate::FaultSchedule`]. Policies are
/// immutable during a run (`&self`); time-varying adversaries key off the
/// `interactions` argument instead of interior state, so a `(policy, seed)`
/// pair replays bit-identically.
pub trait SchedulerPolicy {
    /// Stable snake_case family name for records and reports
    /// (`"uniform"`, `"zipf"`, …).
    fn label(&self) -> &'static str;

    /// Parameterized spec string for records (`"zipf:1.5"`,
    /// `"starve:4:256"`, …); the label alone for parameterless policies.
    fn spec(&self) -> String {
        self.label().to_string()
    }

    /// The population size the policy was built for.
    fn population_size(&self) -> usize;

    /// Samples the ordered pair for the interaction following the first
    /// `interactions` ones.
    fn sample_at(&self, rng: &mut SmallRng, interactions: u64) -> (usize, usize);

    /// Whether this policy **is** the uniform scheduler on the complete
    /// graph — the exchangeability assumption the count-based backend's
    /// batching relies on. Non-uniform policies return `false` and force
    /// exact per-interaction agent-level sampling there.
    fn is_uniform_complete(&self) -> bool {
        false
    }
}

impl SchedulerPolicy for Scheduler {
    fn label(&self) -> &'static str {
        "uniform"
    }

    fn population_size(&self) -> usize {
        self.n
    }

    #[inline]
    fn sample_at(&self, rng: &mut SmallRng, _interactions: u64) -> (usize, usize) {
        self.sample_pair(rng)
    }

    fn is_uniform_complete(&self) -> bool {
        matches!(self.graph, InteractionGraph::Complete)
    }
}

/// Power-law agent popularity: agent `i` is drawn with probability
/// proportional to `1 / (i + 1)^s`.
///
/// Initiator and responder are drawn independently from the same popularity
/// distribution (the responder redrawn until distinct), modeling populations
/// where a few "hub" agents take part in most interactions while the tail
/// interacts rarely. With `s = 0` every agent is equally popular, but the
/// pair distribution still differs slightly from [`Scheduler`]'s (two
/// independent draws vs. one joint draw) — use `Scheduler` for the paper's
/// scheduler.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cumulative[i]` = sum of weights of agents `0..=i`.
    cumulative: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf policy over `n` agents with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the exponent is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 2, "scheduling requires at least two agents, got {n}");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "zipf exponent must be finite and non-negative, got {exponent}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        Zipf { cumulative, exponent }
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    fn draw_agent(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().expect("n >= 2");
        let u = rng.gen::<f64>() * total;
        // partition_point: first index with cumulative > u.
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }
}

impl SchedulerPolicy for Zipf {
    fn label(&self) -> &'static str {
        "zipf"
    }

    fn spec(&self) -> String {
        format!("zipf:{}", self.exponent)
    }

    fn population_size(&self) -> usize {
        self.cumulative.len()
    }

    fn sample_at(&self, rng: &mut SmallRng, _interactions: u64) -> (usize, usize) {
        let i = self.draw_agent(rng);
        loop {
            let j = self.draw_agent(rng);
            if j != i {
                return (i, j);
            }
        }
    }
}

/// Per-edge rate heterogeneity: each undirected edge of an explicit
/// [`EdgeList`] carries a positive rate, and the scheduler picks an edge with
/// probability proportional to its rate (orientation uniform).
///
/// This generalizes [`InteractionGraph::Arbitrary`] (all rates equal) to
/// communication topologies where some links are simply faster than others.
#[derive(Debug, Clone)]
pub struct EdgeRates {
    edges: EdgeList,
    /// `cumulative[e]` = sum of rates of edges `0..=e`.
    cumulative: Vec<f64>,
}

impl EdgeRates {
    /// Creates an edge-rate policy; `rates[e]` is the rate of
    /// `edges.edges()[e]`.
    ///
    /// # Panics
    ///
    /// Panics if the rate list length does not match the edge list, or any
    /// rate is not finite and positive.
    pub fn new(edges: EdgeList, rates: &[f64]) -> Self {
        assert_eq!(
            edges.edges().len(),
            rates.len(),
            "one rate per edge: {} edges, {} rates",
            edges.edges().len(),
            rates.len()
        );
        let mut cumulative = Vec::with_capacity(rates.len());
        let mut total = 0.0f64;
        for &r in rates {
            assert!(r.is_finite() && r > 0.0, "edge rates must be finite and positive, got {r}");
            total += r;
            cumulative.push(total);
        }
        EdgeRates { edges, cumulative }
    }
}

impl SchedulerPolicy for EdgeRates {
    fn label(&self) -> &'static str {
        "edge_rates"
    }

    fn population_size(&self) -> usize {
        self.edges.population_size()
    }

    fn sample_at(&self, rng: &mut SmallRng, _interactions: u64) -> (usize, usize) {
        let total = *self.cumulative.last().expect("edge list is non-empty");
        let u = rng.gen::<f64>() * total;
        let e = self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1);
        let (a, b) = self.edges.edges()[e];
        if rng.gen::<bool>() {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// A fairness-bounded epoch adversary: during alternating windows of
/// `window` interactions, the first `starved` agents are excluded from
/// scheduling entirely; in between, scheduling is uniform over everyone.
///
/// Interactions `t` with `(t / window) % 2 == 0` fall in a starvation
/// window (so a run *starts* starved), the rest are fair. Because every
/// starvation window is followed by a fair window of equal length, the
/// scheduler is fair in the limit — every pair interacts infinitely often —
/// and convergence of the paper's protocols is still guaranteed; what the
/// adversary costs is *time*, which the robustness experiments measure.
///
/// Starving "the first `k` agents" is fully general here: agents are
/// exchangeable and initial configurations are adversarial anyway.
#[derive(Debug, Clone)]
pub struct EpochStarvation {
    n: usize,
    starved: usize,
    window: u64,
}

impl EpochStarvation {
    /// Creates the adversary: starve agents `0..starved` during every other
    /// `window`-interaction epoch.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents remain during starvation
    /// (`n - starved < 2`) or `window == 0`.
    pub fn new(n: usize, starved: usize, window: u64) -> Self {
        assert!(
            n >= 2 && n - starved.min(n) >= 2,
            "starving {starved} of {n} agents leaves no pair to schedule"
        );
        assert!(window > 0, "starvation window must be positive");
        EpochStarvation { n, starved, window }
    }

    /// Number of agents starved during a starvation window.
    pub fn starved(&self) -> usize {
        self.starved
    }

    /// Window length in interactions.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Whether the interaction following the first `interactions` ones falls
    /// in a starvation window.
    pub fn starving_at(&self, interactions: u64) -> bool {
        (interactions / self.window).is_multiple_of(2)
    }
}

/// One uniform ordered pair over agents `lo..n` via a single Lemire draw
/// (the same joint-index trick as [`Scheduler::sample_pair`]).
#[inline]
fn uniform_pair_from(rng: &mut SmallRng, lo: usize, n: usize) -> (usize, usize) {
    let m = (n - lo) as u64;
    debug_assert!(m >= 2);
    let idx = uniform_u64(rng, m * (m - 1));
    let i = (idx / (m - 1)) as usize;
    let mut j = (idx % (m - 1)) as usize;
    if j >= i {
        j += 1;
    }
    (lo + i, lo + j)
}

impl SchedulerPolicy for EpochStarvation {
    fn label(&self) -> &'static str {
        "starve"
    }

    fn spec(&self) -> String {
        format!("starve:{}:{}", self.starved, self.window)
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn sample_at(&self, rng: &mut SmallRng, interactions: u64) -> (usize, usize) {
        let lo = if self.starving_at(interactions) { self.starved } else { 0 };
        uniform_pair_from(rng, lo, self.n)
    }
}

/// Block-confined scheduling: agents are partitioned into `blocks`
/// contiguous blocks; with probability `eps` an interaction is a uniform
/// pair over the whole population (cross-block contact), otherwise a block
/// is chosen with probability proportional to its number of ordered pairs
/// and the pair is uniform within it.
///
/// Models clustered/partitioned populations (racks, regions) where
/// information crosses cluster boundaries only rarely; `eps > 0` keeps the
/// scheduler fair, so convergence is preserved but slowed by the bottleneck.
#[derive(Debug, Clone)]
pub struct Clustered {
    n: usize,
    blocks: usize,
    eps: f64,
    /// `cumulative[b]` = sum of `size·(size−1)` over blocks `0..=b`.
    cumulative: Vec<u64>,
}

impl Clustered {
    /// Creates a clustered policy with `blocks` contiguous blocks and
    /// cross-block probability `eps`.
    ///
    /// # Panics
    ///
    /// Panics if any block would hold fewer than two agents
    /// (`n / blocks < 2`), or `eps` is outside `(0, 1]`.
    pub fn new(n: usize, blocks: usize, eps: f64) -> Self {
        assert!(
            blocks >= 1 && n / blocks >= 2,
            "{n} agents in {blocks} blocks leaves a block without a pair"
        );
        assert!(
            eps.is_finite() && eps > 0.0 && eps <= 1.0,
            "cross-block probability must be in (0, 1], got {eps} (0 would disconnect the blocks)"
        );
        let mut cumulative = Vec::with_capacity(blocks);
        let mut total = 0u64;
        for b in 0..blocks {
            let size = (Self::block_end(n, blocks, b) - Self::block_start(n, blocks, b)) as u64;
            total += size * (size - 1);
            cumulative.push(total);
        }
        Clustered { n, blocks, eps, cumulative }
    }

    fn block_start(n: usize, blocks: usize, b: usize) -> usize {
        b * n / blocks
    }

    fn block_end(n: usize, blocks: usize, b: usize) -> usize {
        (b + 1) * n / blocks
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Cross-block contact probability.
    pub fn eps(&self) -> f64 {
        self.eps
    }
}

impl SchedulerPolicy for Clustered {
    fn label(&self) -> &'static str {
        "clustered"
    }

    fn spec(&self) -> String {
        format!("clustered:{}:{}", self.blocks, self.eps)
    }

    fn population_size(&self) -> usize {
        self.n
    }

    fn sample_at(&self, rng: &mut SmallRng, _interactions: u64) -> (usize, usize) {
        if rng.gen::<f64>() < self.eps {
            return uniform_pair_from(rng, 0, self.n);
        }
        let total = *self.cumulative.last().expect("blocks >= 1");
        let r = uniform_u64(rng, total);
        let b = self.cumulative.partition_point(|&c| c <= r);
        let lo = Self::block_start(self.n, self.blocks, b);
        let hi = Self::block_end(self.n, self.blocks, b);
        uniform_pair_from(rng, lo, hi)
    }
}

/// Runtime-dispatched scheduler policy, for callers (CLI, benches) that pick
/// the policy from a flag. One predicted branch per draw; the generic
/// [`SchedulerPolicy`] plumbing stays zero-cost for the static default.
#[derive(Debug, Clone)]
pub enum AnyScheduler {
    /// The paper's uniform scheduler.
    Uniform(Scheduler),
    /// Power-law agent popularity.
    Zipf(Zipf),
    /// Per-edge rates over an explicit edge list.
    EdgeRates(EdgeRates),
    /// The fairness-bounded starvation adversary.
    Starve(EpochStarvation),
    /// Block-confined interactions with rare cross-block contact.
    Clustered(Clustered),
}

impl AnyScheduler {
    /// The uniform scheduler on the complete graph over `n` agents.
    pub fn uniform(n: usize) -> Self {
        AnyScheduler::Uniform(Scheduler::new(n, InteractionGraph::Complete))
    }

    /// Parses a scheduler spec for a population of `n` agents.
    ///
    /// Accepted forms (parameters optional, defaults in brackets):
    ///
    /// * `uniform`
    /// * `zipf[:EXPONENT]` — \[1\]
    /// * `starve[:K[:WINDOW]]` — starve K agents \[⌈n/4⌉\] in alternating
    ///   windows of WINDOW interactions \[4·n\]
    /// * `clustered[:BLOCKS[:EPS]]` — \[4 blocks, eps 0.05\]
    ///
    /// (`edge_rates` needs an explicit edge/rate list and has no spec form.)
    pub fn from_spec(spec: &str, n: usize) -> Result<Self, String> {
        if n < 2 {
            return Err(format!("scheduling requires at least two agents, got {n}"));
        }
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let parse_f64 = |s: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|_| format!("bad numeric parameter {s:?} in scheduler spec {spec:?}"))
        };
        let parse_usize = |s: &str| -> Result<usize, String> {
            s.parse::<usize>()
                .map_err(|_| format!("bad integer parameter {s:?} in scheduler spec {spec:?}"))
        };
        match name {
            "uniform" => {
                if !args.is_empty() {
                    return Err(format!("uniform takes no parameters, got {spec:?}"));
                }
                Ok(Self::uniform(n))
            }
            "zipf" => {
                let exponent = match args.as_slice() {
                    [] => 1.0,
                    [e] => parse_f64(e)?,
                    _ => return Err(format!("zipf takes at most one parameter, got {spec:?}")),
                };
                if !(exponent.is_finite() && exponent >= 0.0) {
                    return Err(format!("zipf exponent must be finite and non-negative, got {exponent}"));
                }
                Ok(AnyScheduler::Zipf(Zipf::new(n, exponent)))
            }
            "starve" => {
                let (k, window) = match args.as_slice() {
                    [] => (n.div_ceil(4), 4 * n as u64),
                    [k] => (parse_usize(k)?, 4 * n as u64),
                    [k, w] => (parse_usize(k)?, parse_usize(w)? as u64),
                    _ => return Err(format!("starve takes at most two parameters, got {spec:?}")),
                };
                if n.saturating_sub(k) < 2 {
                    return Err(format!("starving {k} of {n} agents leaves no pair to schedule"));
                }
                if window == 0 {
                    return Err("starvation window must be positive".to_string());
                }
                Ok(AnyScheduler::Starve(EpochStarvation::new(n, k, window)))
            }
            "clustered" => {
                let (blocks, eps) = match args.as_slice() {
                    [] => (4usize.min(n / 2).max(1), 0.05),
                    [b] => (parse_usize(b)?, 0.05),
                    [b, e] => (parse_usize(b)?, parse_f64(e)?),
                    _ => return Err(format!("clustered takes at most two parameters, got {spec:?}")),
                };
                if blocks == 0 || n / blocks < 2 {
                    return Err(format!("{n} agents in {blocks} blocks leaves a block without a pair"));
                }
                if !(eps.is_finite() && eps > 0.0 && eps <= 1.0) {
                    return Err(format!("cross-block probability must be in (0, 1], got {eps}"));
                }
                Ok(AnyScheduler::Clustered(Clustered::new(n, blocks, eps)))
            }
            other => Err(format!(
                "unknown scheduler {other:?} (expected uniform, zipf[:s], starve[:k[:w]], or clustered[:b[:eps]])"
            )),
        }
    }

    /// The starvation window length in interactions, if this is the epoch
    /// adversary (the schema-v3 `starve_window` record field).
    pub fn starve_window(&self) -> Option<u64> {
        match self {
            AnyScheduler::Starve(s) => Some(s.window()),
            _ => None,
        }
    }
}

impl SchedulerPolicy for AnyScheduler {
    fn label(&self) -> &'static str {
        match self {
            AnyScheduler::Uniform(p) => p.label(),
            AnyScheduler::Zipf(p) => p.label(),
            AnyScheduler::EdgeRates(p) => p.label(),
            AnyScheduler::Starve(p) => p.label(),
            AnyScheduler::Clustered(p) => p.label(),
        }
    }

    fn spec(&self) -> String {
        match self {
            AnyScheduler::Uniform(p) => SchedulerPolicy::spec(p),
            AnyScheduler::Zipf(p) => p.spec(),
            AnyScheduler::EdgeRates(p) => p.spec(),
            AnyScheduler::Starve(p) => p.spec(),
            AnyScheduler::Clustered(p) => p.spec(),
        }
    }

    fn population_size(&self) -> usize {
        match self {
            AnyScheduler::Uniform(p) => SchedulerPolicy::population_size(p),
            AnyScheduler::Zipf(p) => p.population_size(),
            AnyScheduler::EdgeRates(p) => p.population_size(),
            AnyScheduler::Starve(p) => p.population_size(),
            AnyScheduler::Clustered(p) => p.population_size(),
        }
    }

    #[inline]
    fn sample_at(&self, rng: &mut SmallRng, interactions: u64) -> (usize, usize) {
        match self {
            AnyScheduler::Uniform(p) => p.sample_at(rng, interactions),
            AnyScheduler::Zipf(p) => p.sample_at(rng, interactions),
            AnyScheduler::EdgeRates(p) => p.sample_at(rng, interactions),
            AnyScheduler::Starve(p) => p.sample_at(rng, interactions),
            AnyScheduler::Clustered(p) => p.sample_at(rng, interactions),
        }
    }

    fn is_uniform_complete(&self) -> bool {
        match self {
            AnyScheduler::Uniform(p) => p.is_uniform_complete(),
            _ => false,
        }
    }
}

/// How reliably a sampled interaction is applied.
///
/// The paper assumes every scheduled interaction executes its transition on
/// both participants; real encounters drop messages. `omission` is the
/// probability that a sampled pair meets but the transition is silently
/// dropped (the interaction still counts — parallel time measures scheduled
/// meetings); `one_way` applies only the initiator's update, discarding the
/// responder's. The default ([`Reliability::perfect`]) consumes no extra
/// randomness, so fault-free executions are bit-identical to builds that
/// predate this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reliability {
    /// Probability in `[0, 1)` that a sampled interaction's transition is
    /// dropped.
    pub omission: f64,
    /// Whether only the initiator's state update is applied.
    pub one_way: bool,
}

impl Default for Reliability {
    fn default() -> Self {
        Self::perfect()
    }
}

impl Reliability {
    /// Perfectly reliable interactions (the paper's model).
    pub fn perfect() -> Self {
        Reliability { omission: 0.0, one_way: false }
    }

    /// Reliable pairwise application with the given omission probability.
    ///
    /// # Panics
    ///
    /// Panics unless `omission ∈ [0, 1)`.
    pub fn with_omission(omission: f64) -> Self {
        Reliability::perfect().and_omission(omission)
    }

    /// Sets the omission probability, keeping the one-way flag.
    ///
    /// # Panics
    ///
    /// Panics unless `omission ∈ [0, 1)`.
    pub fn and_omission(mut self, omission: f64) -> Self {
        assert!(
            omission.is_finite() && (0.0..1.0).contains(&omission),
            "omission probability must be in [0, 1), got {omission}"
        );
        self.omission = omission;
        self
    }

    /// Sets one-way application (only the initiator updates).
    pub fn and_one_way(mut self) -> Self {
        self.one_way = true;
        self
    }

    /// Whether this is the perfectly reliable model.
    pub fn is_perfect(&self) -> bool {
        self.omission == 0.0 && !self.one_way
    }

    /// Draws whether the next interaction's transition is dropped. Consumes
    /// RNG only when `omission > 0`, so perfect reliability leaves the
    /// execution's random stream untouched.
    #[inline]
    pub(crate) fn drops(&self, rng: &mut SmallRng) -> bool {
        self.omission > 0.0 && rng.gen::<f64>() < self.omission
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::rng_from_seed;
    use std::collections::HashMap;

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_singleton_population() {
        Scheduler::new(1, InteractionGraph::Complete);
    }

    #[test]
    #[should_panic(expected = "different population size")]
    fn rejects_mismatched_edge_list() {
        let g = InteractionGraph::from_edges(3, vec![(0, 1)]).unwrap();
        Scheduler::new(4, g);
    }

    #[test]
    fn complete_pairs_are_distinct_and_in_range() {
        let s = Scheduler::new(5, InteractionGraph::Complete);
        let mut rng = rng_from_seed(1);
        for _ in 0..10_000 {
            let (i, j) = s.sample_pair(&mut rng);
            assert!(i < 5 && j < 5 && i != j);
        }
    }

    #[test]
    fn complete_pairs_are_roughly_uniform() {
        let n = 4;
        let s = Scheduler::new(n, InteractionGraph::Complete);
        let mut rng = rng_from_seed(2);
        let mut counts: HashMap<(usize, usize), u32> = HashMap::new();
        let trials = 120_000;
        for _ in 0..trials {
            *counts.entry(s.sample_pair(&mut rng)).or_default() += 1;
        }
        assert_eq!(counts.len(), n * (n - 1), "all ordered pairs occur");
        let expected = trials as f64 / (n * (n - 1)) as f64;
        for (&pair, &c) in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "pair {pair:?} occurred {c} times, expected ≈{expected}");
        }
    }

    #[test]
    fn uniform_u64_covers_every_residue_evenly() {
        // A span that does not divide 2^64, so the rejection zone is
        // exercised; every residue must appear at the uniform rate.
        let span = 12u64;
        let mut rng = rng_from_seed(6);
        let mut counts = vec![0u32; span as usize];
        let trials = 120_000;
        for _ in 0..trials {
            let x = uniform_u64(&mut rng, span);
            counts[x as usize] += 1;
        }
        let expected = trials as f64 / span as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "residue {x} occurred {c} times, expected ≈{expected}");
        }
    }

    #[test]
    fn uniform_u64_handles_degenerate_spans() {
        let mut rng = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(uniform_u64(&mut rng, 1), 0);
        }
        // Power-of-two spans have an empty rejection zone.
        for _ in 0..100 {
            assert!(uniform_u64(&mut rng, 8) < 8);
        }
    }

    #[test]
    fn ring_pairs_are_adjacent() {
        let n = 6;
        let s = Scheduler::new(n, InteractionGraph::Ring);
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            let (i, j) = s.sample_pair(&mut rng);
            let diff = (i as isize - j as isize).rem_euclid(n as isize);
            assert!(diff == 1 || diff == n as isize - 1, "({i},{j}) is not a ring edge");
        }
    }

    #[test]
    fn two_agent_ring_always_pairs_them() {
        let s = Scheduler::new(2, InteractionGraph::Ring);
        let mut rng = rng_from_seed(4);
        for _ in 0..100 {
            let (i, j) = s.sample_pair(&mut rng);
            assert!(i != j && i < 2 && j < 2);
        }
    }

    #[test]
    fn arbitrary_graph_samples_only_listed_edges_both_orientations() {
        let g = InteractionGraph::from_edges(4, vec![(0, 3)]).unwrap();
        let s = Scheduler::new(4, g);
        let mut rng = rng_from_seed(5);
        let mut saw = [false, false];
        for _ in 0..1000 {
            match s.sample_pair(&mut rng) {
                (0, 3) => saw[0] = true,
                (3, 0) => saw[1] = true,
                other => panic!("sampled non-edge {other:?}"),
            }
        }
        assert!(saw[0] && saw[1], "both orientations should occur");
    }

    #[test]
    fn uniform_u64_passes_chi_squared() {
        // Pearson chi-squared goodness-of-fit against the uniform
        // distribution, with a prime span so the rejection zone is non-empty
        // and residues cannot align with any power-of-two structure in the
        // generator. 2000 expected draws per cell, 100 degrees of freedom;
        // the p = 0.001 critical value is χ² ≈ 149.4, we allow 160 for a
        // fixed seed that is not cherry-picked.
        let span = 101u64;
        let draws = 202_000u64;
        let mut rng = rng_from_seed(0xC41_5EED);
        let mut counts = vec![0u64; span as usize];
        for _ in 0..draws {
            counts[uniform_u64(&mut rng, span) as usize] += 1;
        }
        let expected = draws as f64 / span as f64;
        let chi2: f64 = counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
        assert!(chi2 < 160.0, "chi-squared statistic {chi2:.1} exceeds the p=0.001 bound");
    }

    #[test]
    fn scheduler_policy_matches_sample_pair_exactly() {
        // The trait impl on `Scheduler` must be the identical draw, so the
        // generic plumbing cannot change any uniform execution.
        let s = Scheduler::new(9, InteractionGraph::Complete);
        let mut a = rng_from_seed(11);
        let mut b = rng_from_seed(11);
        for t in 0..5_000 {
            assert_eq!(s.sample_pair(&mut a), s.sample_at(&mut b, t));
        }
        assert!(s.is_uniform_complete());
        assert!(!Scheduler::new(9, InteractionGraph::Ring).is_uniform_complete());
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let n = 16;
        let z = Zipf::new(n, 1.2);
        assert_eq!(z.population_size(), n);
        let mut rng = rng_from_seed(21);
        let mut counts = vec![0u32; n];
        for t in 0..60_000 {
            let (i, j) = z.sample_at(&mut rng, t);
            assert!(i < n && j < n && i != j);
            counts[i] += 1;
            counts[j] += 1;
        }
        assert!(
            counts[0] > 4 * counts[n - 1],
            "agent 0 ({}) should dominate agent {} ({})",
            counts[0],
            n - 1,
            counts[n - 1]
        );
    }

    #[test]
    fn zipf_with_zero_exponent_hits_everyone() {
        let n = 6;
        let z = Zipf::new(n, 0.0);
        let mut rng = rng_from_seed(22);
        let mut counts = vec![0u32; n];
        for t in 0..30_000 {
            let (i, j) = z.sample_at(&mut rng, t);
            counts[i] += 1;
            counts[j] += 1;
        }
        let expected = 2.0 * 30_000.0 / n as f64;
        for (a, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "agent {a} occurred {c} times, expected ≈{expected}");
        }
    }

    #[test]
    fn edge_rates_respect_relative_weights() {
        let list = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        let p = EdgeRates::new(list, &[9.0, 1.0]);
        assert_eq!(p.population_size(), 3);
        let mut rng = rng_from_seed(23);
        let mut hot = 0u32;
        let mut cold = 0u32;
        for t in 0..40_000 {
            match p.sample_at(&mut rng, t) {
                (0, 1) | (1, 0) => hot += 1,
                (1, 2) | (2, 1) => cold += 1,
                other => panic!("sampled non-edge {other:?}"),
            }
        }
        let frac = hot as f64 / (hot + cold) as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot edge fraction {frac} should be ≈0.9");
    }

    #[test]
    #[should_panic(expected = "one rate per edge")]
    fn edge_rates_reject_length_mismatch() {
        let list = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        EdgeRates::new(list, &[1.0]);
    }

    #[test]
    fn starvation_excludes_agents_only_during_odd_epochs() {
        let n = 10;
        let p = EpochStarvation::new(n, 3, 100);
        assert_eq!(p.spec(), "starve:3:100");
        let mut rng = rng_from_seed(24);
        let mut starved_seen = false;
        for t in 0..10_000u64 {
            let (i, j) = p.sample_at(&mut rng, t);
            assert!(i < n && j < n && i != j);
            if p.starving_at(t) {
                assert!(i >= 3 && j >= 3, "starved agent scheduled at t={t}: ({i},{j})");
            } else if i < 3 || j < 3 {
                starved_seen = true;
            }
        }
        assert!(starved_seen, "fair windows must eventually schedule the starved set");
    }

    #[test]
    fn clustered_crosses_blocks_rarely_but_surely() {
        let n = 16;
        let p = Clustered::new(n, 4, 0.05);
        let block = |a: usize| a / 4;
        let mut rng = rng_from_seed(25);
        let mut cross = 0u32;
        let total = 40_000;
        for t in 0..total {
            let (i, j) = p.sample_at(&mut rng, t);
            assert!(i < n && j < n && i != j);
            if block(i) != block(j) {
                cross += 1;
            }
        }
        let frac = cross as f64 / total as f64;
        // eps=0.05 of draws are uniform, and 12/15 of those cross blocks.
        assert!(frac > 0.01 && frac < 0.1, "cross-block fraction {frac} out of range");
    }

    #[test]
    fn clustered_handles_uneven_blocks() {
        // 7 agents in 3 blocks: sizes 2, 2, 3 — every agent must be reachable.
        let n = 7;
        let p = Clustered::new(n, 3, 0.2);
        let mut rng = rng_from_seed(26);
        let mut seen = vec![false; n];
        for t in 0..5_000 {
            let (i, j) = p.sample_at(&mut rng, t);
            assert!(i != j);
            seen[i] = true;
            seen[j] = true;
        }
        assert!(seen.iter().all(|&s| s), "every agent should be scheduled: {seen:?}");
    }

    #[test]
    fn any_scheduler_parses_specs() {
        let n = 20;
        assert!(matches!(AnyScheduler::from_spec("uniform", n), Ok(AnyScheduler::Uniform(_))));
        match AnyScheduler::from_spec("zipf:1.5", n).unwrap() {
            AnyScheduler::Zipf(z) => assert_eq!(z.exponent(), 1.5),
            other => panic!("expected zipf, got {other:?}"),
        }
        match AnyScheduler::from_spec("starve", n).unwrap() {
            AnyScheduler::Starve(s) => {
                assert_eq!(s.starved(), 5);
                assert_eq!(s.window(), 80);
            }
            other => panic!("expected starve, got {other:?}"),
        }
        match AnyScheduler::from_spec("clustered:2:0.1", n).unwrap() {
            AnyScheduler::Clustered(c) => {
                assert_eq!(c.blocks(), 2);
                assert_eq!(c.eps(), 0.1);
            }
            other => panic!("expected clustered, got {other:?}"),
        }
        assert_eq!(AnyScheduler::from_spec("starve:10:64", n).unwrap().spec(), "starve:10:64");
        assert_eq!(AnyScheduler::from_spec("starve:10:64", n).unwrap().starve_window(), Some(64));
        assert!(AnyScheduler::from_spec("lru", n).is_err());
        assert!(AnyScheduler::from_spec("zipf:-1", n).is_err());
        assert!(AnyScheduler::from_spec("starve:19", n).is_err(), "must leave a pair");
        assert!(AnyScheduler::from_spec("clustered:0", n).is_err());
        assert!(AnyScheduler::from_spec("clustered:2:0", n).is_err());
        assert!(AnyScheduler::from_spec("uniform", 1).is_err());
        assert!(AnyScheduler::uniform(n).is_uniform_complete());
        assert!(!AnyScheduler::from_spec("zipf", n).unwrap().is_uniform_complete());
    }

    #[test]
    fn reliability_validates_and_defaults() {
        assert!(Reliability::perfect().is_perfect());
        assert!(Reliability::default().is_perfect());
        let r = Reliability::with_omission(0.25).and_one_way();
        assert_eq!(r.omission, 0.25);
        assert!(r.one_way && !r.is_perfect());
        // Perfect reliability must never touch the RNG stream.
        let mut rng = rng_from_seed(27);
        let before = rng.clone().gen::<u64>();
        assert!(!Reliability::perfect().drops(&mut rng));
        assert_eq!(rng.gen::<u64>(), before);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn reliability_rejects_certain_omission() {
        Reliability::with_omission(1.0);
    }

    #[test]
    fn omission_rate_is_respected() {
        let r = Reliability::with_omission(0.3);
        let mut rng = rng_from_seed(28);
        let dropped = (0..50_000).filter(|_| r.drops(&mut rng)).count();
        let frac = dropped as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {frac} should be ≈0.3");
    }
}
