//! Interaction graphs.
//!
//! The paper's protocols assume the **complete** graph (every pair of agents
//! may interact), which it calls "the most difficult case" for
//! self-stabilizing leader election. Related work (\[25\], \[26\], \[57\] in the
//! paper) studies rings, regular graphs, and arbitrary connected graphs; the
//! scheduler supports those too so the setting can be explored with the same
//! engine.

use std::fmt;

/// Which pairs of agents the scheduler may select.
///
/// All variants describe *undirected* adjacency; the scheduler independently
/// picks a uniformly random orientation (initiator/responder) for the chosen
/// pair, matching the paper's ordered-pair scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InteractionGraph {
    /// Every pair of distinct agents may interact (the paper's setting).
    Complete,
    /// Agents `0..n` arranged in a cycle; agent `i` interacts with
    /// `i ± 1 (mod n)`.
    Ring,
    /// An explicit undirected edge list over agent indices `0..n`.
    ///
    /// Construct via [`InteractionGraph::from_edges`] so the edges are
    /// validated against the population size.
    Arbitrary(EdgeList),
}

/// A validated list of undirected edges, used by
/// [`InteractionGraph::Arbitrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl EdgeList {
    /// Builds a validated edge list over agents `0..n` — the same checks as
    /// [`InteractionGraph::from_edges`], for callers (like
    /// [`crate::scheduler::EdgeRates`]) that need the list itself rather than
    /// the graph enum.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the list is empty, an endpoint is out of
    /// range, or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: Vec<(usize, usize)>) -> Result<Self, GraphError> {
        match InteractionGraph::from_edges(n, edges)? {
            InteractionGraph::Arbitrary(list) => Ok(list),
            _ => unreachable!("from_edges only builds Arbitrary"),
        }
    }

    /// The endpoints available to the scheduler.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The population size the edges were validated against.
    pub fn population_size(&self) -> usize {
        self.n
    }
}

/// Error building an [`InteractionGraph::Arbitrary`] from an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The edge list was empty, so the scheduler could never pick a pair.
    NoEdges,
    /// An edge referenced an agent index `≥ n`.
    EndpointOutOfRange {
        /// The offending edge.
        edge: (usize, usize),
        /// The population size the edge was validated against.
        n: usize,
    },
    /// An edge connected an agent to itself; population protocols have no
    /// self-interactions.
    SelfLoop {
        /// The offending agent index.
        agent: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoEdges => write!(f, "interaction graph has no edges"),
            GraphError::EndpointOutOfRange { edge, n } => {
                write!(f, "edge ({}, {}) references an agent outside 0..{}", edge.0, edge.1, n)
            }
            GraphError::SelfLoop { agent } => {
                write!(f, "self-loop on agent {agent} is not a valid interaction")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl InteractionGraph {
    /// Builds an arbitrary graph from undirected edges over agents `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the list is empty, an endpoint is out of
    /// range, or an edge is a self-loop.
    ///
    /// # Examples
    ///
    /// ```
    /// use population::InteractionGraph;
    ///
    /// let path = InteractionGraph::from_edges(3, vec![(0, 1), (1, 2)])?;
    /// assert_eq!(path.degree_sum(3), 4);
    /// # Ok::<(), population::graph::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: Vec<(usize, usize)>) -> Result<Self, GraphError> {
        if edges.is_empty() {
            return Err(GraphError::NoEdges);
        }
        for &(u, v) in &edges {
            if u >= n || v >= n {
                return Err(GraphError::EndpointOutOfRange { edge: (u, v), n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { agent: u });
            }
        }
        Ok(InteractionGraph::Arbitrary(EdgeList { n, edges }))
    }

    /// Sum of degrees (twice the edge count) for a population of `n`,
    /// useful for normalizing interaction rates across graphs.
    pub fn degree_sum(&self, n: usize) -> usize {
        match self {
            InteractionGraph::Complete => n * n.saturating_sub(1),
            InteractionGraph::Ring => {
                if n >= 3 {
                    2 * n
                } else {
                    n.saturating_sub(1) * 2
                }
            }
            InteractionGraph::Arbitrary(list) => 2 * list.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_accepts_valid_graph() {
        let g = InteractionGraph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
        match g {
            InteractionGraph::Arbitrary(list) => {
                assert_eq!(list.edges().len(), 2);
                assert_eq!(list.population_size(), 4);
            }
            other => panic!("expected arbitrary graph, got {other:?}"),
        }
    }

    #[test]
    fn from_edges_rejects_empty() {
        assert_eq!(InteractionGraph::from_edges(4, vec![]), Err(GraphError::NoEdges));
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert_eq!(
            InteractionGraph::from_edges(2, vec![(0, 2)]),
            Err(GraphError::EndpointOutOfRange { edge: (0, 2), n: 2 })
        );
    }

    #[test]
    fn from_edges_rejects_self_loop() {
        assert_eq!(
            InteractionGraph::from_edges(2, vec![(1, 1)]),
            Err(GraphError::SelfLoop { agent: 1 })
        );
    }

    #[test]
    fn degree_sums() {
        assert_eq!(InteractionGraph::Complete.degree_sum(5), 20);
        assert_eq!(InteractionGraph::Ring.degree_sum(5), 10);
        // A 2-ring degenerates to a single edge.
        assert_eq!(InteractionGraph::Ring.degree_sum(2), 2);
        let g = InteractionGraph::from_edges(3, vec![(0, 1)]).unwrap();
        assert_eq!(g.degree_sum(3), 2);
    }

    #[test]
    fn errors_display() {
        let e = InteractionGraph::from_edges(2, vec![(0, 5)]).unwrap_err();
        assert!(e.to_string().contains("outside 0..2"));
    }
}
