#![warn(missing_docs)]

//! Simulation substrate for population protocols.
//!
//! This crate implements the execution model of Angluin, Aspnes, Diamadi,
//! Fischer, and Peralta ("Computation in networks of passively mobile
//! finite-state sensors", 2006), as used by the reproduced paper
//! "Time-Optimal Self-Stabilizing Leader Election in Population Protocols"
//! (PODC 2021 / arXiv:1907.06068):
//!
//! * a population of `n` indistinguishable agents, each holding a state;
//! * at every discrete step a **probabilistic scheduler** picks a uniformly
//!   random *ordered* pair of distinct agents (initiator, responder), which
//!   update their states according to a (possibly randomized) transition
//!   function;
//! * **parallel time** is the number of interactions divided by `n`.
//!
//! The paper's protocols are defined on the complete interaction graph, but
//! the scheduler also supports rings and arbitrary graphs
//! ([`graph::InteractionGraph`]) so that the related-work setting (e.g.
//! self-stabilizing leader election on rings) can be explored.
//!
//! # Architecture
//!
//! | module | contents |
//! |--------|----------|
//! | [`protocol`] | the [`Protocol`] and [`RankingProtocol`] traits |
//! | [`graph`] | interaction graphs: complete, ring, arbitrary edge lists |
//! | [`scheduler`] | pair-selection policies: the uniform scheduler plus the [`scheduler::SchedulerPolicy`] family (Zipf, per-edge rates, epoch starvation, clustered) and [`scheduler::Reliability`] (omission, one-way) |
//! | [`simulation`] | [`Simulation`]: owns the configuration, steps it, counts interactions |
//! | [`counts`] | count-based backend: [`counts::CountConfig`] multisets and the batched [`counts::BatchSimulation`] for huge `n` |
//! | [`backend`] | [`SimulationBackend`]: one interface over the agent-array and count backends |
//! | [`tracker`] | O(1)-per-interaction convergence detection for ranking protocols |
//! | [`runner`] | multi-trial experiment driver with deterministic seed derivation |
//! | [`observer`] | [`Observer`] hooks into the hot loop; [`NoopObserver`] zero-cost default |
//! | [`probe`] | sampled time series and the stabilization-certificate (closure) checker |
//! | [`fault`] | chaos harness: [`FaultPlan`] schedules, mid-run [`Corruptor`] injection, recovery/availability measurement |
//! | [`dynamics`] | dynamic populations: [`ChurnPlan`] membership churn (join/leave/replace) and [`ByzantineSet`] adversarial agents on both backends |
//! | [`telemetry`] | counters, fixed-bucket histograms, throughput meters, [`TelemetryObserver`] |
//! | [`metrics`] | engine telemetry: the zero-cost [`MetricsSink`] seam both backends flush at batch boundaries — batch sizes, exact-fallback/memo rates, compactions, per-section wall time |
//! | [`timeline`] | within-run trajectory tracing: decimated [`timeline::TimelineObserver`] checkpoints and the [`timeline::Progress`] heartbeat |
//! | [`record`] | versioned per-trial [`RunRecord`]s and their JSONL encoding |
//! | [`epidemic`] | one-way/two-way epidemic, bounded epidemic, and roll-call processes |
//! | [`silence`] | structural silence checking for silent protocols |
//!
//! # Examples
//!
//! A one-transition protocol (`ℓ,ℓ → ℓ,f`) that elects a leader from the
//! all-`ℓ` initial configuration:
//!
//! ```
//! use population::{Protocol, Simulation};
//! use rand::rngs::SmallRng;
//!
//! #[derive(Clone, Debug, PartialEq, Eq)]
//! enum S { Leader, Follower }
//!
//! struct FightProtocol;
//!
//! impl Protocol for FightProtocol {
//!     type State = S;
//!     fn interact(&self, a: &mut S, b: &mut S, _rng: &mut SmallRng) {
//!         if *a == S::Leader && *b == S::Leader {
//!             *b = S::Follower;
//!         }
//!     }
//!     fn is_null_pair(&self, a: &S, b: &S) -> bool {
//!         !(*a == S::Leader && *b == S::Leader)
//!     }
//! }
//!
//! let n = 50;
//! let mut sim = Simulation::new(FightProtocol, vec![S::Leader; n], 1);
//! let outcome = sim.run_until(200_000, |states| {
//!     states.iter().filter(|s| **s == S::Leader).count() == 1
//! });
//! assert!(outcome.is_converged());
//! ```

pub mod backend;
pub mod counts;
pub mod driver;
pub mod dynamics;
pub mod epidemic;
pub mod fault;
pub mod gillespie;
pub mod graph;
pub mod metrics;
pub mod observer;
pub mod probe;
pub mod protocol;
pub mod record;
pub mod runner;
pub mod scheduler;
pub mod silence;
pub mod simulation;
pub mod snapshot;
pub mod telemetry;
pub mod timeline;
pub mod tracker;

pub use backend::SimulationBackend;
pub use counts::{BatchSimulation, CountConfig};
pub use driver::{DynamicBackend, SliceOutcome, SteppedDriver};
pub use dynamics::{
    ByzantineSet, ChurnAction, ChurnEvent, ChurnPlan, ChurnTrigger, DynamicsReport,
    DynamicsTrialOutcome,
};
pub use fault::{
    ChaosReport, ChaosTrialOutcome, Corruptor, FaultAction, FaultEvent, FaultInjector, FaultPlan,
    FaultSchedule, FaultSize, FaultTrigger, NoFaults, RecoveryTracker,
};
pub use graph::InteractionGraph;
pub use metrics::{Metrics, MetricsSink, NoopMetrics, Section};
pub use observer::{NoopObserver, Observer};
pub use probe::{
    certify_leader_closure, certify_ranking_closure, ClosureCertificate, ClosureViolation,
};
pub use protocol::{Protocol, RankingProtocol};
pub use record::{
    from_jsonl_lenient, ChurnRecord, FaultRecord, FrontierRecord, LenientParse, MetricsRecord,
    RecordLine, RunRecord, ServerStatsRecord, ServiceRecord, TimelineRecord, TraceRecord,
};
pub use runner::{derive_seed, ConvergenceSample, Runner, TrialOutcome, TrialSettings};
pub use scheduler::{AnyScheduler, Reliability, Scheduler, SchedulerPolicy};
pub use simulation::{RunOutcome, Simulation};
pub use snapshot::{
    restore_agents, restore_counts, snapshot_agents, snapshot_counts, SnapshotDoc, SnapshotError,
    SnapshotProtocol, SNAPSHOT_VERSION,
};
pub use telemetry::TelemetryObserver;
pub use timeline::{Progress, Timeline, TimelineCheckpoint, TimelineObserver};
pub use tracker::RankTracker;
