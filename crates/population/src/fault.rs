//! Fault injection and recovery measurement — the chaos harness.
//!
//! Self-stabilization (Def. 1 of the paper) quantifies over *arbitrary*
//! configurations precisely so that a protocol recovers from any transient
//! fault. The adversarial **initial** configuration machinery
//! (`ssle::adversary`) exercises the worst case once, at time zero; this
//! module corrupts executions **mid-run** and measures what the claim is
//! actually about: how long recovery takes, and how available the leader is
//! while faults keep arriving.
//!
//! # Pieces
//!
//! * [`FaultPlan`] — a declarative schedule of [`FaultEvent`]s: *when*
//!   ([`FaultTrigger`]: at an interaction count, at a parallel time, after
//!   first convergence + Δ, or repeatedly at a rate) and *what*
//!   ([`FaultAction`]: corrupt k random agents, duplicate the leader,
//!   collide k agents onto one state, half-finished reset, full randomize).
//! * [`Corruptor`] — the per-protocol vocabulary of corruption: how to draw
//!   an arbitrary ("adversarial") state and a mid-reset state. Implemented by
//!   the SSR protocols in `ssle::core`, reusing the adversary generators.
//! * [`FaultSchedule`] — the type-level injection point.
//!   [`Simulation`] takes a schedule as its third type
//!   parameter, defaulting to [`NoFaults`] whose `ACTIVE = false` associated
//!   const folds every poll out of the hot loop: a simulation without a fault
//!   plan compiles to the same code as before this module existed.
//! * [`FaultInjector`] — the live schedule bound to a population size. It
//!   draws from its **own** RNG (seeded by [`FaultPlan::seed`]), never from
//!   the simulation's, so `(protocol, plan, seed)` replays bit-identically
//!   and attaching observers still cannot perturb the execution.
//! * [`RecoveryTracker`] / [`ChaosReport`] — per-fault recovery times and
//!   leader-availability fractions, produced by
//!   [`Simulation::run_chaos`](crate::Simulation::run_chaos).
//! * [`ChaosTrialOutcome`] + [`Runner::run_chaos_trials_parallel`] — the
//!   multi-trial driver, emitting versioned [`RunRecord`]/[`FaultRecord`]
//!   JSONL for `ssle report`.
//!
//! # Example
//!
//! ```
//! use population::fault::{FaultAction, FaultPlan, FaultSize};
//!
//! // One corrupted agent a quarter-parallel-time unit after stabilization,
//! // then sustained noise: one random corruption every 50 parallel time units.
//! let plan = FaultPlan::new(7)
//!     .after_convergence(16, FaultAction::CorruptRandom(FaultSize::Exact(1)))
//!     .every_parallel_time(50.0, FaultAction::CorruptRandom(FaultSize::Sqrt));
//! assert_eq!(plan.events.len(), 2);
//! ```

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::metrics::MetricsSink;
use crate::observer::Observer;
use crate::protocol::{Protocol, RankingProtocol};
use crate::record::{FaultRecord, RunRecord};
use crate::runner::{derive_seed, rng_from_seed, Runner};
use crate::scheduler::{AnyScheduler, Reliability, SchedulerPolicy};
use crate::simulation::{RunOutcome, Simulation};
use crate::tracker::RankTracker;

/// How many agents a fault touches, resolved against the **live** population
/// size each time the fault fires — so a size stays valid even when
/// membership churn (see [`crate::dynamics`]) has moved `n` since the plan
/// was written. Oversized requests clamp instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSize {
    /// Exactly `k` agents (clamped to `n`).
    Exact(usize),
    /// `⌈√n⌉` agents.
    Sqrt,
    /// `⌈f·n⌉` agents for a fraction `f ∈ [0, 1]` (clamped to `1..=n`, so an
    /// `εn` fault still touches at least one agent at small `n`).
    Fraction(f64),
    /// All `n` agents.
    All,
}

impl FaultSize {
    /// The concrete agent count for a population of `n`.
    pub fn resolve(&self, n: usize) -> usize {
        match *self {
            FaultSize::Exact(k) => k.min(n).max(1),
            FaultSize::Sqrt => ((n as f64).sqrt().ceil() as usize).clamp(1, n),
            FaultSize::Fraction(f) => ((n as f64 * f).ceil() as usize).clamp(1, n),
            FaultSize::All => n,
        }
    }
}

/// What a fault does to the configuration when it fires.
///
/// Every action corrupts **in place** and consumes only the injector's RNG;
/// none of them count as interactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Overwrite that many distinct random agents with arbitrary states drawn
    /// by [`Corruptor::random_state`] — the transient-memory-fault model.
    CorruptRandom(FaultSize),
    /// Clone the current leader's state onto one other random agent (if no
    /// agent currently leads, a random agent is cloned instead). The classic
    /// "two agents think they are rank 1" scenario of Sec. 2.
    DuplicateLeader,
    /// Clone one random victim's state onto that many *other* distinct
    /// agents, producing a rank/name collision cluster.
    Collide(FaultSize),
    /// Overwrite that many distinct random agents with half-finished reset
    /// states ([`Corruptor::mid_reset_state`]) — the adversary the paper's
    /// Propagate-Reset analysis (Sec. 3) is hardened against.
    PartialReset(FaultSize),
    /// Overwrite **every** agent with an arbitrary state: a fresh adversarial
    /// configuration mid-run.
    Randomize,
}

impl FaultAction {
    /// Stable snake_case name for records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultAction::CorruptRandom(_) => "corrupt_random",
            FaultAction::DuplicateLeader => "duplicate_leader",
            FaultAction::Collide(_) => "collide",
            FaultAction::PartialReset(_) => "partial_reset",
            FaultAction::Randomize => "randomize",
        }
    }
}

/// When a [`FaultEvent`] fires.
///
/// Triggers are checked after each interaction, so a trigger scheduled for
/// interaction `t` fires at the first poll with total count `≥ t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Once, at this total interaction count.
    AtInteraction(u64),
    /// Once, at this parallel time (interactions / n; resolved to an
    /// interaction count when the plan is bound to a population).
    AtParallelTime(f64),
    /// Once, `delta` interactions after the run **first** reaches its goal
    /// (stable ranking for [`run_chaos`](crate::Simulation::run_chaos) and
    /// [`run_until_stably_ranked`](crate::Simulation::run_until_stably_ranked),
    /// the caller's goal for [`run_until`](crate::Simulation::run_until)).
    /// Never fires if the run never converges.
    AfterConvergence {
        /// Interactions to wait after first convergence.
        delta: u64,
    },
    /// Repeatedly: at interaction `offset + period`, then every `period`
    /// further interactions, forever.
    EveryInteractions {
        /// Interval between firings, in interactions (must be positive).
        period: u64,
        /// Shift of the first firing (first fires at `offset + period`).
        offset: u64,
    },
    /// Repeatedly, every `period` units of parallel time (resolved to an
    /// interaction period of at least 1 when bound to a population).
    EveryParallelTime {
        /// Interval between firings, in parallel time units.
        period: f64,
    },
}

/// One scheduled fault: a trigger and an action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub action: FaultAction,
}

/// A declarative fault schedule, independent of any particular population
/// size or execution.
///
/// Plans are bound to a simulation with
/// [`Simulation::with_fault_plan`](crate::Simulation::with_fault_plan); the
/// same plan can be reused across trials. All corruption randomness derives
/// from [`FaultPlan::seed`], so a `(protocol, plan, seed)` triple determines
/// the faulted execution bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
    /// Seed for the injector's private RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no events ever fire.
    ///
    /// Note this still instantiates the [`FaultInjector`] code path (one
    /// predicted branch per interaction); for the *statically* fault-free
    /// simulation, simply never attach a plan — the [`NoFaults`] default
    /// compiles the polls away entirely.
    pub fn none() -> Self {
        FaultPlan { events: Vec::new(), seed: 0 }
    }

    /// An empty plan with corruption randomness seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { events: Vec::new(), seed }
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event with an explicit trigger.
    pub fn with_event(mut self, trigger: FaultTrigger, action: FaultAction) -> Self {
        self.events.push(FaultEvent { trigger, action });
        self
    }

    /// Schedules `action` once at total interaction count `t`.
    pub fn at_interaction(self, t: u64, action: FaultAction) -> Self {
        self.with_event(FaultTrigger::AtInteraction(t), action)
    }

    /// Schedules `action` once at parallel time `t`.
    pub fn at_parallel_time(self, t: f64, action: FaultAction) -> Self {
        self.with_event(FaultTrigger::AtParallelTime(t), action)
    }

    /// Schedules `action` once, `delta` interactions after first convergence.
    pub fn after_convergence(self, delta: u64, action: FaultAction) -> Self {
        self.with_event(FaultTrigger::AfterConvergence { delta }, action)
    }

    /// Schedules `action` every `period` interactions (first at `period`).
    pub fn every_interactions(self, period: u64, action: FaultAction) -> Self {
        self.with_event(FaultTrigger::EveryInteractions { period, offset: 0 }, action)
    }

    /// Schedules `action` every `period` parallel time units.
    pub fn every_parallel_time(self, period: f64, action: FaultAction) -> Self {
        self.with_event(FaultTrigger::EveryParallelTime { period }, action)
    }
}

/// Per-protocol corruption vocabulary.
///
/// The self-stabilizing model's adversary chooses arbitrary states from the
/// protocol's state space; this trait lets the generic fault actions do the
/// same without knowing the state layout. Implementations live next to the
/// protocols (`ssle::core`) and share code with the adversarial
/// initial-configuration generators (`ssle::adversary`), so "arbitrary" means
/// the same thing at time zero and mid-run.
pub trait Corruptor: RankingProtocol {
    /// Draws one state uniformly-ish from the reachable adversarial state
    /// space (what a transient memory fault could leave behind).
    fn random_state(&self, rng: &mut SmallRng) -> Self::State;

    /// Draws a "half-finished reset" state, for protocols with a reset
    /// mechanism; defaults to [`Corruptor::random_state`] for those without.
    fn mid_reset_state(&self, rng: &mut SmallRng) -> Self::State {
        self.random_state(rng)
    }
}

/// One fault that actually fired during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Total interaction count when it fired.
    pub at: u64,
    /// [`FaultAction::label`] of the action.
    pub action: &'static str,
    /// Number of agent states overwritten.
    pub agents: usize,
}

/// The simulation-side fault hook: polled after every interaction.
///
/// This is the fault analogue of [`Observer`]: a type-level
/// plug-in with a const gate. [`NoFaults`] (the default) has `ACTIVE =
/// false`, so the polls vanish at monomorphization; [`FaultInjector`] has
/// `ACTIVE = true` and executes a bound [`FaultPlan`].
pub trait FaultSchedule<P: Protocol> {
    /// Whether the simulation loop should poll this schedule at all. Checked
    /// as an associated const so inactive schedules cost nothing.
    const ACTIVE: bool;

    /// Fires every event due at the given total interaction count, mutating
    /// `states` in place. Returns the number of agent states overwritten (0
    /// when nothing fired).
    fn poll(&mut self, protocol: &P, states: &mut [P::State], interactions: u64) -> usize;

    /// Tells the schedule the run's goal was (first) reached, arming
    /// [`FaultTrigger::AfterConvergence`] events. Idempotent: calls after the
    /// first are ignored.
    fn notify_converged(&mut self, interactions: u64);

    /// The earliest total interaction count at which [`FaultSchedule::poll`]
    /// could fire anything (`u64::MAX` when nothing is armed).
    ///
    /// The agent-array simulation ignores this (its polls are O(1) against a
    /// live state slice). The count-based backend
    /// ([`crate::counts::BatchSimulation`]) uses it twice: to materialize an
    /// agent array for `poll` only when something is actually due, and to cap
    /// batch lengths so a batched execution never jumps past a due fault. The
    /// conservative default of `0` ("always possibly due") keeps custom
    /// schedules correct — they are simply polled every interaction, as on
    /// the agent backend.
    fn next_due(&self) -> u64 {
        0
    }

    /// Every fault fired so far, in firing order.
    fn log(&self) -> &[FiredFault];

    /// Number of faults fired so far.
    fn fired_count(&self) -> usize {
        self.log().len()
    }

    /// Whether no event can ever fire again (all one-shots consumed, no
    /// repeating events, no unarmed after-convergence events).
    fn exhausted(&self) -> bool;
}

/// The default fault schedule: nothing ever fires and `ACTIVE = false`, so
/// `Simulation<P, O>` contains no fault plumbing at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl<P: Protocol> FaultSchedule<P> for NoFaults {
    const ACTIVE: bool = false;

    fn poll(&mut self, _protocol: &P, _states: &mut [P::State], _interactions: u64) -> usize {
        0
    }

    fn notify_converged(&mut self, _interactions: u64) {}

    fn next_due(&self) -> u64 {
        u64::MAX
    }

    fn log(&self) -> &[FiredFault] {
        &[]
    }

    fn exhausted(&self) -> bool {
        true
    }
}

/// A repeating event bound to an interaction period.
#[derive(Debug, Clone, Copy)]
struct Repeat {
    period: u64,
    due: u64,
    action: FaultAction,
}

/// A [`FaultPlan`] bound to a population size: parallel-time triggers are
/// resolved to interaction counts and the corruption RNG is seeded.
///
/// Built by [`Simulation::with_fault_plan`](crate::Simulation::with_fault_plan)
/// (or [`FaultInjector::bind`] directly). Polling is O(1) between firings —
/// a single `interactions < next_due` comparison.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Private corruption RNG; the simulation's RNG is never touched.
    rng: SmallRng,
    /// One-shot events sorted by due time; `next_oneshot` indexes the first
    /// unconsumed one.
    oneshot: Vec<(u64, FaultAction)>,
    next_oneshot: usize,
    repeating: Vec<Repeat>,
    /// After-convergence events waiting to be armed: `(delta, action)`.
    dormant: Vec<(u64, FaultAction)>,
    converged_seen: bool,
    /// Earliest due time of any armed event (`u64::MAX` when none).
    next_due: u64,
    log: Vec<FiredFault>,
}

impl FaultInjector {
    /// Binds a plan to a population of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if a repeating trigger has a non-positive period,
    /// or if a parallel-time value is not finite and non-negative.
    pub fn bind(plan: &FaultPlan, n: usize) -> Self {
        assert!(n > 0, "cannot bind a fault plan to an empty population");
        let to_interactions = |t: f64| -> u64 {
            assert!(t.is_finite() && t >= 0.0, "parallel time {t} must be finite and non-negative");
            (t * n as f64).round() as u64
        };
        let mut oneshot = Vec::new();
        let mut repeating = Vec::new();
        let mut dormant = Vec::new();
        for event in &plan.events {
            match event.trigger {
                FaultTrigger::AtInteraction(t) => oneshot.push((t, event.action)),
                FaultTrigger::AtParallelTime(t) => oneshot.push((to_interactions(t), event.action)),
                FaultTrigger::AfterConvergence { delta } => dormant.push((delta, event.action)),
                FaultTrigger::EveryInteractions { period, offset } => {
                    assert!(period > 0, "repeating fault period must be positive");
                    repeating.push(Repeat { period, due: offset + period, action: event.action });
                }
                FaultTrigger::EveryParallelTime { period } => {
                    let period = to_interactions(period).max(1);
                    repeating.push(Repeat { period, due: period, action: event.action });
                }
            }
        }
        oneshot.sort_by_key(|&(t, _)| t);
        let mut injector = FaultInjector {
            rng: rng_from_seed(plan.seed),
            oneshot,
            next_oneshot: 0,
            repeating,
            dormant,
            converged_seen: false,
            next_due: u64::MAX,
            log: Vec::new(),
        };
        injector.recompute_next_due();
        injector
    }

    fn recompute_next_due(&mut self) {
        let mut due = self.oneshot.get(self.next_oneshot).map_or(u64::MAX, |&(t, _)| t);
        for r in &self.repeating {
            due = due.min(r.due);
        }
        self.next_due = due;
    }
}

impl<P: Corruptor> FaultSchedule<P> for FaultInjector {
    const ACTIVE: bool = true;

    fn poll(&mut self, protocol: &P, states: &mut [P::State], interactions: u64) -> usize {
        if interactions < self.next_due {
            return 0;
        }
        let mut corrupted = 0;
        while let Some(&(due, action)) = self.oneshot.get(self.next_oneshot) {
            if due > interactions {
                break;
            }
            self.next_oneshot += 1;
            let agents = apply_fault(protocol, states, action, &mut self.rng);
            self.log.push(FiredFault { at: interactions, action: action.label(), agents });
            corrupted += agents;
        }
        for idx in 0..self.repeating.len() {
            while self.repeating[idx].due <= interactions {
                let action = self.repeating[idx].action;
                self.repeating[idx].due += self.repeating[idx].period;
                let agents = apply_fault(protocol, states, action, &mut self.rng);
                self.log.push(FiredFault { at: interactions, action: action.label(), agents });
                corrupted += agents;
            }
        }
        self.recompute_next_due();
        corrupted
    }

    fn notify_converged(&mut self, interactions: u64) {
        if self.converged_seen {
            return;
        }
        self.converged_seen = true;
        if self.dormant.is_empty() {
            return;
        }
        for (delta, action) in self.dormant.drain(..) {
            self.oneshot.push((interactions.saturating_add(delta), action));
        }
        // Only the unconsumed tail may be reordered; fired events stay put.
        self.oneshot[self.next_oneshot..].sort_by_key(|&(t, _)| t);
        self.recompute_next_due();
    }

    fn next_due(&self) -> u64 {
        self.next_due
    }

    fn log(&self) -> &[FiredFault] {
        &self.log
    }

    fn exhausted(&self) -> bool {
        self.next_oneshot >= self.oneshot.len()
            && self.repeating.is_empty()
            && self.dormant.is_empty()
    }
}

/// Applies one fault action to the configuration, drawing only from the
/// injector's RNG. Returns the number of agent states overwritten.
fn apply_fault<P: Corruptor>(
    protocol: &P,
    states: &mut [P::State],
    action: FaultAction,
    rng: &mut SmallRng,
) -> usize {
    let n = states.len();
    match action {
        FaultAction::CorruptRandom(size) => {
            let k = size.resolve(n);
            for a in distinct_agents(n, k, rng) {
                states[a] = protocol.random_state(rng);
            }
            k
        }
        FaultAction::DuplicateLeader => {
            let src = states
                .iter()
                .position(|s| protocol.is_leader(s))
                .unwrap_or_else(|| rng.gen_range(0..n));
            let mut dst = rng.gen_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            states[dst] = states[src].clone();
            1
        }
        FaultAction::Collide(size) => {
            let k = size.resolve(n).min(n - 1);
            let victim = rng.gen_range(0..n);
            let mut targets = distinct_agents(n - 1, k, rng);
            for t in &mut targets {
                if *t >= victim {
                    *t += 1;
                }
            }
            let v = states[victim].clone();
            for t in targets {
                states[t] = v.clone();
            }
            k
        }
        FaultAction::PartialReset(size) => {
            let k = size.resolve(n);
            for a in distinct_agents(n, k, rng) {
                states[a] = protocol.mid_reset_state(rng);
            }
            k
        }
        FaultAction::Randomize => {
            for s in states.iter_mut() {
                *s = protocol.random_state(rng);
            }
            n
        }
    }
}

/// `k` distinct agent indices drawn uniformly from `0..n` by a partial
/// Fisher–Yates shuffle. O(n) per call, which is fine: faults are rare.
pub(crate) fn distinct_agents(n: usize, k: usize, rng: &mut SmallRng) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// One fired fault with its measured recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// [`FaultAction::label`] of the action that fired.
    pub action: &'static str,
    /// Number of agent states it overwrote.
    pub agents: usize,
    /// Total interaction count when it fired.
    pub at: u64,
    /// Total interaction count when the configuration was next correctly
    /// ranked, or `None` if the run ended first (censored).
    pub recovered_at: Option<u64>,
}

impl FaultOutcome {
    /// Interactions from injection to recovery, if recovery happened.
    pub fn recovery_interactions(&self) -> Option<u64> {
        self.recovered_at.map(|r| r - self.at)
    }

    /// Parallel time from injection to recovery, if recovery happened.
    pub fn recovery_parallel_time(&self, n: usize) -> Option<f64> {
        self.recovery_interactions().map(|i| i as f64 / n as f64)
    }
}

/// Accumulates recovery and availability statistics as a chaos run proceeds.
///
/// Driven by [`Simulation::run_chaos`](crate::Simulation::run_chaos):
/// [`RecoveryTracker::on_fault`] when an injection fires,
/// [`RecoveryTracker::observe_step`] after every interaction, and
/// [`RecoveryTracker::on_ranked`] whenever the configuration is correctly
/// ranked (closing all open faults).
#[derive(Debug, Clone)]
pub struct RecoveryTracker {
    n: usize,
    first_ranked: Option<u64>,
    faults: Vec<FaultOutcome>,
    /// Indices into `faults` with `recovered_at == None`.
    open: Vec<usize>,
    leader_steps: u64,
    ranked_steps: u64,
    observed_steps: u64,
}

impl RecoveryTracker {
    /// Creates a tracker for a population of `n` agents.
    pub fn new(n: usize) -> Self {
        RecoveryTracker {
            n,
            first_ranked: None,
            faults: Vec::new(),
            open: Vec::new(),
            leader_steps: 0,
            ranked_steps: 0,
            observed_steps: 0,
        }
    }

    /// Records a fired fault; it stays "open" until the next
    /// [`RecoveryTracker::on_ranked`].
    pub fn on_fault(&mut self, action: &'static str, agents: usize, at: u64) {
        self.open.push(self.faults.len());
        self.faults.push(FaultOutcome { action, agents, at, recovered_at: None });
    }

    /// Records that the configuration is correctly ranked at interaction
    /// count `at`: notes the first stabilization and closes every open fault.
    pub fn on_ranked(&mut self, at: u64) {
        if self.first_ranked.is_none() {
            self.first_ranked = Some(at);
        }
        for idx in self.open.drain(..) {
            self.faults[idx].recovered_at = Some(at);
        }
    }

    /// Accounts one interaction's worth of availability: whether the
    /// configuration was correctly ranked and whether exactly one agent held
    /// rank 1 after it.
    pub fn observe_step(&mut self, ranked: bool, unique_leader: bool) {
        self.observe_steps(1, ranked, unique_leader);
    }

    /// Accounts `steps` interactions at once, all sharing the same ranked /
    /// unique-leader status — the batched counterpart of
    /// [`RecoveryTracker::observe_step`] used by the count-based backend,
    /// which only inspects the configuration at batch boundaries.
    pub fn observe_steps(&mut self, steps: u64, ranked: bool, unique_leader: bool) {
        self.observed_steps += steps;
        if ranked {
            self.ranked_steps += steps;
        }
        if unique_leader {
            self.leader_steps += steps;
        }
    }

    /// Number of faults not yet recovered from.
    pub fn open_faults(&self) -> usize {
        self.open.len()
    }

    /// Finalizes into a report; `interactions` is the run's total count.
    pub fn into_report(self, interactions: u64) -> ChaosReport {
        ChaosReport {
            n: self.n,
            interactions,
            first_ranked: self.first_ranked,
            faults: self.faults,
            leader_steps: self.leader_steps,
            ranked_steps: self.ranked_steps,
            observed_steps: self.observed_steps,
        }
    }
}

/// What one chaos run measured: the baseline stabilization, every fault's
/// recovery, and availability fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Population size.
    pub n: usize,
    /// Total interactions the run performed.
    pub interactions: u64,
    /// Interaction count at the **first** stable ranking (the full
    /// self-stabilization time from the initial configuration), or `None` if
    /// the run never ranked.
    pub first_ranked: Option<u64>,
    /// Every fault that fired, with its recovery (in firing order).
    pub faults: Vec<FaultOutcome>,
    /// Interactions after which exactly one agent held rank 1.
    pub leader_steps: u64,
    /// Interactions after which the configuration was correctly ranked.
    pub ranked_steps: u64,
    /// Interactions the availability counters observed.
    pub observed_steps: u64,
}

impl ChaosReport {
    /// Fraction of observed interactions with a unique leader (rank 1 held
    /// by exactly one agent) — the availability number soak runs report.
    /// Vacuously 1.0 if nothing was observed.
    pub fn availability(&self) -> f64 {
        if self.observed_steps == 0 {
            1.0
        } else {
            self.leader_steps as f64 / self.observed_steps as f64
        }
    }

    /// Fraction of observed interactions with a fully correct ranking —
    /// stricter than [`ChaosReport::availability`]. Vacuously 1.0 if nothing
    /// was observed.
    pub fn ranked_availability(&self) -> f64 {
        if self.observed_steps == 0 {
            1.0
        } else {
            self.ranked_steps as f64 / self.observed_steps as f64
        }
    }

    /// Number of faults the run recovered from.
    pub fn recovered(&self) -> usize {
        self.faults.iter().filter(|f| f.recovered_at.is_some()).count()
    }

    /// Whether the run ranked at least once and left no fault unrecovered.
    pub fn fully_recovered(&self) -> bool {
        self.first_ranked.is_some() && self.recovered() == self.faults.len()
    }

    /// Mean interactions from injection to recovery over recovered faults.
    pub fn mean_recovery_interactions(&self) -> Option<f64> {
        let recovered: Vec<u64> =
            self.faults.iter().filter_map(|f| f.recovery_interactions()).collect();
        if recovered.is_empty() {
            None
        } else {
            Some(recovered.iter().sum::<u64>() as f64 / recovered.len() as f64)
        }
    }

    /// Mean parallel-time recovery over recovered faults.
    pub fn mean_recovery_parallel_time(&self) -> Option<f64> {
        self.mean_recovery_interactions().map(|i| i / self.n as f64)
    }

    /// Parallel time of the first stable ranking, if any.
    pub fn first_ranked_parallel_time(&self) -> Option<f64> {
        self.first_ranked.map(|i| i as f64 / self.n as f64)
    }
}

impl<P: Corruptor, O: Observer<P>, F: FaultSchedule<P>, S: SchedulerPolicy, M: MetricsSink>
    Simulation<P, O, F, S, M>
{
    /// Binds `plan` to this simulation's population, replacing any existing
    /// fault schedule. Interactions already performed are preserved; triggers
    /// are measured in **total** interaction counts.
    pub fn with_fault_plan(self, plan: &FaultPlan) -> Simulation<P, O, FaultInjector, S, M> {
        let faults = FaultInjector::bind(plan, self.states.len());
        Simulation {
            protocol: self.protocol,
            scheduler: self.scheduler,
            states: self.states,
            rng: self.rng,
            interactions: self.interactions,
            observer: self.observer,
            faults,
            reliability: self.reliability,
            metrics: self.metrics,
        }
    }

    /// The attached fault schedule.
    pub fn fault_schedule(&self) -> &F {
        &self.faults
    }

    /// Runs under the attached fault schedule, measuring recovery and
    /// availability, until every scheduled fault has fired **and** been
    /// recovered from (the configuration is correctly ranked again), or until
    /// the total interaction count reaches `max_interactions`.
    ///
    /// With a plan containing repeating triggers the first condition never
    /// holds, so the run uses the whole budget — that is the soak mode, and
    /// the availability fractions in the [`ChaosReport`] are the product.
    ///
    /// The report's [`first_ranked`](ChaosReport::first_ranked) is the plain
    /// self-stabilization time from the initial configuration, so one chaos
    /// trial yields both the baseline and the per-fault recovery times.
    pub fn run_chaos(&mut self, max_interactions: u64) -> ChaosReport {
        let n = self.protocol.population_size();
        assert_eq!(n, self.states.len(), "protocol configured for a different population size");
        let mut tracker = RankTracker::new(n);
        for s in &self.states {
            tracker.add(self.protocol.rank_of(s));
        }
        let mut recovery = RecoveryTracker::new(n);
        let mut seen = self.faults.fired_count();

        // The plan may fire at interaction 0, and the initial configuration
        // may already be ranked.
        self.poll_faults();
        if self.faults.fired_count() != seen {
            for f in &self.faults.log()[seen..] {
                recovery.on_fault(f.action, f.agents, f.at);
            }
            seen = self.faults.fired_count();
            tracker = RankTracker::new(n);
            for s in &self.states {
                tracker.add(self.protocol.rank_of(s));
            }
        }
        if tracker.is_correct() {
            recovery.on_ranked(self.interactions);
            self.faults.notify_converged(self.interactions);
        }

        loop {
            if tracker.is_correct() && self.faults.exhausted() && recovery.open_faults() == 0 {
                self.observer.on_converged(self.interactions);
                break;
            }
            if self.interactions >= max_interactions {
                self.observer.on_exhausted(self.interactions);
                break;
            }
            let (i, j) = self.scheduler.sample_at(&mut self.rng, self.interactions);
            let before_i = self.protocol.rank_of(&self.states[i]);
            let before_j = self.protocol.rank_of(&self.states[j]);
            self.interact_observed(i, j);
            tracker.update(before_i, self.protocol.rank_of(&self.states[i]));
            tracker.update(before_j, self.protocol.rank_of(&self.states[j]));
            if M::ENABLED {
                self.note_step_metrics();
            }
            self.poll_faults();
            if self.faults.fired_count() != seen {
                for f in &self.faults.log()[seen..] {
                    recovery.on_fault(f.action, f.agents, f.at);
                }
                seen = self.faults.fired_count();
                tracker = RankTracker::new(n);
                for s in &self.states {
                    tracker.add(self.protocol.rank_of(s));
                }
            }
            let ranked = tracker.is_correct();
            recovery.observe_step(ranked, tracker.count_of(1) == 1);
            if ranked {
                recovery.on_ranked(self.interactions);
                self.faults.notify_converged(self.interactions);
            }
        }
        recovery.into_report(self.interactions)
    }
}

/// One completed chaos trial: index, population size, full report, and
/// wall-clock duration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosTrialOutcome {
    /// Trial index within the experiment.
    pub trial: u64,
    /// Population size of this trial.
    pub n: usize,
    /// Everything the run measured.
    pub report: ChaosReport,
    /// Wall-clock time the execution took.
    pub wall: Duration,
}

impl ChaosTrialOutcome {
    /// The trial-level experiment record (`kind = "trial"`).
    ///
    /// The record converges iff the run ranked at least once and recovered
    /// from every fault; its interaction count is then the **first** stable
    /// ranking, so `parallel_time` stays comparable with fault-free
    /// stabilization records. Availability and the fault count ride along in
    /// the v2 optional fields.
    pub fn trial_record(
        &self,
        experiment: &str,
        protocol: &str,
        h: Option<u64>,
        base_seed: u64,
    ) -> RunRecord {
        let outcome = match self.report.first_ranked {
            Some(t) if self.report.fully_recovered() => RunOutcome::Converged { interactions: t },
            _ => RunOutcome::Exhausted { interactions: self.report.interactions },
        };
        RunRecord {
            experiment: experiment.to_string(),
            protocol: protocol.to_string(),
            n: self.n as u64,
            h,
            trial: self.trial,
            seed: base_seed,
            outcome,
            wall_s: self.wall.as_secs_f64(),
            availability: Some(self.report.availability()),
            faults: Some(self.report.faults.len() as u64),
            scheduler: None,
            omission: None,
            starve_window: None,
        }
    }

    /// One `kind = "fault"` record per fired fault, in firing order.
    pub fn fault_records(
        &self,
        experiment: &str,
        protocol: &str,
        h: Option<u64>,
        base_seed: u64,
    ) -> Vec<FaultRecord> {
        self.report
            .faults
            .iter()
            .map(|f| FaultRecord {
                experiment: experiment.to_string(),
                protocol: protocol.to_string(),
                n: self.n as u64,
                h,
                trial: self.trial,
                seed: base_seed,
                action: f.action.to_string(),
                agents: f.agents as u64,
                injected_at: f.at,
                recovered_at: f.recovered_at,
            })
            .collect()
    }
}

/// Runs one seeded chaos trial. Seed derivation matches
/// [`Runner::run_trials`]: configuration randomness from
/// `derive_seed(base, 2·trial)`, the execution from
/// `derive_seed(base, 2·trial + 1)` — so a chaos trial with an empty plan
/// replays the corresponding plain trial's execution exactly.
fn chaos_trial<P, F>(runner: &Runner, trial: u64, make: &mut F) -> ChaosTrialOutcome
where
    P: Corruptor,
    F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan),
{
    let settings = *runner.settings();
    let mut config_rng = rng_from_seed(derive_seed(settings.base_seed, 2 * trial));
    let (protocol, initial, plan) = make(trial, &mut config_rng);
    let n = initial.len();
    let mut sim =
        Simulation::new(protocol, initial, derive_seed(settings.base_seed, 2 * trial + 1))
            .with_fault_plan(&plan);
    let started = Instant::now();
    let report = sim.run_chaos(settings.max_interactions);
    ChaosTrialOutcome { trial, n, report, wall: started.elapsed() }
}

/// Like [`chaos_trial`], but under an explicit scheduler policy and
/// reliability model. Same seed derivation; with the uniform policy and
/// perfect reliability the execution is identical to [`chaos_trial`]'s.
fn chaos_trial_scheduled<P, F>(runner: &Runner, trial: u64, make: &mut F) -> ChaosTrialOutcome
where
    P: Corruptor,
    F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, AnyScheduler, Reliability),
{
    let settings = *runner.settings();
    let mut config_rng = rng_from_seed(derive_seed(settings.base_seed, 2 * trial));
    let (protocol, initial, plan, policy, reliability) = make(trial, &mut config_rng);
    let n = initial.len();
    let mut sim = Simulation::with_policy(
        protocol,
        initial,
        policy,
        derive_seed(settings.base_seed, 2 * trial + 1),
    )
    .with_reliability(reliability)
    .with_fault_plan(&plan);
    let started = Instant::now();
    let report = sim.run_chaos(settings.max_interactions);
    ChaosTrialOutcome { trial, n, report, wall: started.elapsed() }
}

impl Runner {
    /// Runs every chaos trial sequentially.
    ///
    /// `make` receives the trial index and a seeded RNG (for adversarial
    /// initial configurations) and returns the protocol, initial
    /// configuration, and fault plan for that trial. The settings'
    /// `confirm_window` is unused: a chaos run ends when every fault has
    /// fired and been recovered from, or at the interaction budget.
    pub fn run_chaos_trials<P, F>(&self, mut make: F) -> Vec<ChaosTrialOutcome>
    where
        P: Corruptor,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan),
    {
        (0..self.settings().trials).map(|trial| chaos_trial(self, trial, &mut make)).collect()
    }

    /// Like [`Runner::run_chaos_trials`], but invokes `on_trial` after each
    /// trial completes, in trial order. Seed derivation and outcomes match
    /// the other chaos runners exactly; use this when a live progress
    /// heartbeat needs to observe trials as they finish.
    pub fn run_chaos_trials_observed<P, F, G>(
        &self,
        mut make: F,
        mut on_trial: G,
    ) -> Vec<ChaosTrialOutcome>
    where
        P: Corruptor,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan),
        G: FnMut(&ChaosTrialOutcome),
    {
        (0..self.settings().trials)
            .map(|trial| {
                let outcome = chaos_trial(self, trial, &mut make);
                on_trial(&outcome);
                outcome
            })
            .collect()
    }

    /// [`Runner::run_chaos_trials_observed`] with a recording
    /// [`crate::Metrics`] sink per trial; `on_trial` additionally receives
    /// the trial's metrics. Chaos reports are identical to the
    /// uninstrumented runner's (metrics never touch the simulation RNG).
    pub fn run_chaos_trials_metrics<P, F, G>(
        &self,
        mut make: F,
        mut on_trial: G,
    ) -> Vec<(ChaosTrialOutcome, crate::Metrics)>
    where
        P: Corruptor,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan),
        G: FnMut(&ChaosTrialOutcome, &crate::Metrics),
    {
        (0..self.settings().trials)
            .map(|trial| {
                let settings = *self.settings();
                let mut config_rng = rng_from_seed(derive_seed(settings.base_seed, 2 * trial));
                let (protocol, initial, plan) = make(trial, &mut config_rng);
                let n = initial.len();
                let mut metrics = crate::Metrics::new();
                let mut sim = Simulation::new(
                    protocol,
                    initial,
                    derive_seed(settings.base_seed, 2 * trial + 1),
                )
                .with_metrics(&mut metrics)
                .with_fault_plan(&plan);
                let started = Instant::now();
                let report = sim.run_chaos(settings.max_interactions);
                let wall = started.elapsed();
                drop(sim);
                let outcome = ChaosTrialOutcome { trial, n, report, wall };
                on_trial(&outcome, &metrics);
                (outcome, metrics)
            })
            .collect()
    }

    /// Scheduled-and-unreliable variant of
    /// [`Runner::run_chaos_trials_observed`]: `make` additionally returns
    /// the scheduler policy and reliability model per trial, and `on_trial`
    /// fires after each trial in order.
    pub fn run_chaos_trials_scheduled_observed<P, F, G>(
        &self,
        mut make: F,
        mut on_trial: G,
    ) -> Vec<ChaosTrialOutcome>
    where
        P: Corruptor,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, AnyScheduler, Reliability),
        G: FnMut(&ChaosTrialOutcome),
    {
        (0..self.settings().trials)
            .map(|trial| {
                let outcome = chaos_trial_scheduled(self, trial, &mut make);
                on_trial(&outcome);
                outcome
            })
            .collect()
    }

    /// Like [`Runner::run_chaos_trials`], but distributing trials over
    /// `threads` worker threads. Outcomes are identical to the sequential
    /// version (per-trial seeds do not depend on scheduling); only wall times
    /// differ.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_chaos_trials_parallel<P, F>(&self, threads: usize, make: F) -> Vec<ChaosTrialOutcome>
    where
        P: Corruptor + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan) + Sync,
    {
        assert!(threads > 0, "at least one worker thread is required");
        let make = &make;
        let trials = self.settings().trials;
        let mut results: Vec<ChaosTrialOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let runner = *self;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut trial = worker as u64;
                    while trial < trials {
                        let mut make_fn = |t: u64, rng: &mut SmallRng| make(t, rng);
                        out.push(chaos_trial(&runner, trial, &mut make_fn));
                        trial += threads as u64;
                    }
                    out
                });
                handles.push(handle);
            }
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        results.sort_unstable_by_key(|t| t.trial);
        results
    }

    /// Like [`Runner::run_chaos_trials_parallel`], but each trial also picks
    /// a scheduler policy and reliability model — the robustness-workload
    /// driver. `make` returns `(protocol, initial, plan, scheduler,
    /// reliability)`; outcomes are identical to a sequential run.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_chaos_trials_scheduled_parallel<P, F>(
        &self,
        threads: usize,
        make: F,
    ) -> Vec<ChaosTrialOutcome>
    where
        P: Corruptor + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, AnyScheduler, Reliability)
            + Sync,
    {
        assert!(threads > 0, "at least one worker thread is required");
        let make = &make;
        let trials = self.settings().trials;
        let mut results: Vec<ChaosTrialOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let runner = *self;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut trial = worker as u64;
                    while trial < trials {
                        let mut make_fn = |t: u64, rng: &mut SmallRng| make(t, rng);
                        out.push(chaos_trial_scheduled(&runner, trial, &mut make_fn));
                        trial += threads as u64;
                    }
                    out
                });
                handles.push(handle);
            }
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        results.sort_unstable_by_key(|t| t.trial);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TrialSettings;

    /// Protocol 1 of the paper in miniature: rank collision bumps the
    /// responder (mod n), so it ranks from any configuration.
    #[derive(Clone)]
    struct ModRank {
        n: usize,
    }
    impl Protocol for ModRank {
        type State = usize;
        fn interact(&self, a: &mut usize, b: &mut usize, _rng: &mut SmallRng) {
            if a == b {
                *b = (*b + 1) % self.n;
            }
        }
    }
    impl RankingProtocol for ModRank {
        fn population_size(&self) -> usize {
            self.n
        }
        fn rank_of(&self, s: &usize) -> Option<usize> {
            Some(s + 1)
        }
    }
    impl Corruptor for ModRank {
        fn random_state(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(0..self.n)
        }
    }

    fn ranked(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn fault_size_resolution() {
        assert_eq!(FaultSize::Exact(3).resolve(10), 3);
        assert_eq!(FaultSize::Exact(99).resolve(10), 10);
        assert_eq!(FaultSize::Exact(0).resolve(10), 1, "a fault touches at least one agent");
        assert_eq!(FaultSize::Sqrt.resolve(100), 10);
        assert_eq!(FaultSize::Sqrt.resolve(2), 2);
        assert_eq!(FaultSize::Fraction(0.125).resolve(256), 32);
        assert_eq!(FaultSize::Fraction(0.001).resolve(10), 1);
        assert_eq!(FaultSize::All.resolve(7), 7);
    }

    #[test]
    fn no_faults_is_inactive_and_exhausted() {
        const { assert!(!<NoFaults as FaultSchedule<ModRank>>::ACTIVE) };
        let mut nf = NoFaults;
        let p = ModRank { n: 4 };
        let mut states = ranked(4);
        assert_eq!(FaultSchedule::<ModRank>::poll(&mut nf, &p, &mut states, 10), 0);
        assert!(FaultSchedule::<ModRank>::exhausted(&nf));
        assert!(FaultSchedule::<ModRank>::log(&nf).is_empty());
        assert_eq!(states, ranked(4), "NoFaults must not touch the configuration");
    }

    #[test]
    fn at_interaction_fires_once_at_due_time() {
        let plan =
            FaultPlan::new(1).at_interaction(5, FaultAction::CorruptRandom(FaultSize::Exact(2)));
        let mut inj = FaultInjector::bind(&plan, 8);
        let p = ModRank { n: 8 };
        let mut states = ranked(8);
        assert_eq!(inj.poll(&p, &mut states, 4), 0);
        assert!(!FaultSchedule::<ModRank>::exhausted(&inj));
        assert_eq!(inj.poll(&p, &mut states, 5), 2);
        assert_eq!(FaultSchedule::<ModRank>::log(&inj).len(), 1);
        assert_eq!(FaultSchedule::<ModRank>::log(&inj)[0].action, "corrupt_random");
        assert_eq!(inj.poll(&p, &mut states, 6), 0, "one-shots fire once");
        assert!(FaultSchedule::<ModRank>::exhausted(&inj));
    }

    #[test]
    fn parallel_time_triggers_resolve_against_n() {
        let plan = FaultPlan::new(1).at_parallel_time(2.0, FaultAction::DuplicateLeader);
        let mut inj = FaultInjector::bind(&plan, 10);
        let p = ModRank { n: 10 };
        let mut states = ranked(10);
        assert_eq!(inj.poll(&p, &mut states, 19), 0);
        assert_eq!(inj.poll(&p, &mut states, 20), 1);
    }

    #[test]
    fn repeating_trigger_fires_at_each_period() {
        let plan = FaultPlan::new(1)
            .every_interactions(10, FaultAction::CorruptRandom(FaultSize::Exact(1)));
        let mut inj = FaultInjector::bind(&plan, 8);
        let p = ModRank { n: 8 };
        let mut states = ranked(8);
        assert_eq!(inj.poll(&p, &mut states, 9), 0);
        assert_eq!(inj.poll(&p, &mut states, 10), 1);
        assert_eq!(inj.poll(&p, &mut states, 15), 0);
        // A large jump fires every missed period.
        assert_eq!(inj.poll(&p, &mut states, 40), 3);
        assert_eq!(FaultSchedule::<ModRank>::fired_count(&inj), 4);
        assert!(!FaultSchedule::<ModRank>::exhausted(&inj), "repeating plans never exhaust");
    }

    #[test]
    fn after_convergence_stays_dormant_until_notified() {
        let plan =
            FaultPlan::new(1).after_convergence(7, FaultAction::CorruptRandom(FaultSize::Exact(1)));
        let mut inj = FaultInjector::bind(&plan, 8);
        let p = ModRank { n: 8 };
        let mut states = ranked(8);
        assert_eq!(inj.poll(&p, &mut states, 1_000_000), 0, "dormant until convergence");
        assert!(!FaultSchedule::<ModRank>::exhausted(&inj));
        FaultSchedule::<ModRank>::notify_converged(&mut inj, 100);
        assert_eq!(inj.poll(&p, &mut states, 106), 0);
        assert_eq!(inj.poll(&p, &mut states, 107), 1);
        assert!(FaultSchedule::<ModRank>::exhausted(&inj));
        // Later convergences must not re-arm anything.
        FaultSchedule::<ModRank>::notify_converged(&mut inj, 200);
        assert_eq!(inj.poll(&p, &mut states, 1_000_000), 0);
    }

    #[test]
    fn duplicate_leader_clones_rank_one() {
        let plan = FaultPlan::new(3).at_interaction(0, FaultAction::DuplicateLeader);
        let p = ModRank { n: 6 };
        let mut states = ranked(6);
        let mut inj = FaultInjector::bind(&plan, 6);
        assert_eq!(inj.poll(&p, &mut states, 0), 1);
        assert_eq!(states.iter().filter(|&&s| s == 0).count(), 2, "two agents now output rank 1");
    }

    #[test]
    fn collide_clones_one_victim_onto_k_others() {
        let plan = FaultPlan::new(3).at_interaction(0, FaultAction::Collide(FaultSize::Exact(3)));
        let p = ModRank { n: 8 };
        let mut states = ranked(8);
        let mut inj = FaultInjector::bind(&plan, 8);
        assert_eq!(inj.poll(&p, &mut states, 0), 3);
        let mut counts = [0usize; 8];
        for &s in &states {
            counts[s] += 1;
        }
        assert_eq!(counts.iter().max(), Some(&4), "victim's state held by itself + 3 clones");
    }

    #[test]
    fn randomize_touches_every_agent() {
        let plan = FaultPlan::new(3).at_interaction(0, FaultAction::Randomize);
        let p = ModRank { n: 16 };
        let mut states = ranked(16);
        let mut inj = FaultInjector::bind(&plan, 16);
        assert_eq!(inj.poll(&p, &mut states, 0), 16);
    }

    #[test]
    fn distinct_agents_are_distinct_and_in_range() {
        let mut rng = rng_from_seed(5);
        for _ in 0..20 {
            let picked = distinct_agents(10, 4, &mut rng);
            assert_eq!(picked.len(), 4);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
            assert!(picked.iter().all(|&a| a < 10));
        }
    }

    /// Satellite of the dynamics subsystem: churn makes a shrinking `n`
    /// reachable mid-plan, so oversized fault sizes must clamp at fire
    /// time, never panic.
    #[test]
    fn fault_size_resolves_oversized_requests() {
        assert_eq!(FaultSize::Exact(10).resolve(4), 4);
        assert_eq!(FaultSize::Exact(0).resolve(4), 1);
        assert_eq!(FaultSize::Exact(usize::MAX).resolve(1), 1);
        assert_eq!(FaultSize::All.resolve(3), 3);
        assert_eq!(FaultSize::Sqrt.resolve(1), 1);
        assert_eq!(FaultSize::Fraction(2.0).resolve(5), 5);
        assert_eq!(FaultSize::Fraction(0.0).resolve(5), 1);
    }

    /// A plan written for a larger population must fire (clamped) against a
    /// smaller live one — the fire-time resolution the doc promises.
    #[test]
    fn oversized_fault_clamps_against_live_population() {
        let plan =
            FaultPlan::new(9).at_interaction(0, FaultAction::CorruptRandom(FaultSize::Exact(100)));
        let p = ModRank { n: 6 };
        let mut states = ranked(6);
        let mut inj = FaultInjector::bind(&plan, 6);
        assert_eq!(inj.poll(&p, &mut states, 0), 6);
    }

    #[test]
    fn injection_is_deterministic_in_plan_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed)
                .at_interaction(50, FaultAction::CorruptRandom(FaultSize::Exact(3)));
            let mut sim =
                Simulation::new(ModRank { n: 16 }, vec![0usize; 16], 42).with_fault_plan(&plan);
            sim.run(500);
            sim.into_states()
        };
        assert_eq!(run(9), run(9), "same (protocol, plan, seed) must replay bit-identically");
        assert_ne!(run(9), run(10), "the plan seed must actually steer the corruption");
    }

    #[test]
    fn empty_plan_matches_unfaulted_execution() {
        let mut plain = Simulation::new(ModRank { n: 12 }, vec![0usize; 12], 7);
        let mut chaotic = Simulation::new(ModRank { n: 12 }, vec![0usize; 12], 7)
            .with_fault_plan(&FaultPlan::none());
        let a = plain.run_until_stably_ranked(1_000_000, 8);
        let b = chaotic.run_until_stably_ranked(1_000_000, 8);
        assert_eq!(a, b);
        assert_eq!(plain.states(), chaotic.states());
    }

    #[test]
    fn run_chaos_measures_recovery_after_convergence() {
        let plan = FaultPlan::new(11)
            .after_convergence(5, FaultAction::CorruptRandom(FaultSize::Exact(2)));
        let mut sim = Simulation::new(ModRank { n: 8 }, vec![0usize; 8], 3).with_fault_plan(&plan);
        let report = sim.run_chaos(10_000_000);
        assert!(report.first_ranked.is_some(), "must stabilize from all-zero");
        assert_eq!(report.faults.len(), 1);
        assert!(report.fully_recovered(), "{report:?}");
        let fault = &report.faults[0];
        assert_eq!(fault.action, "corrupt_random");
        assert_eq!(fault.agents, 2);
        assert!(fault.at >= report.first_ranked.unwrap() + 5);
        assert!(fault.recovered_at.unwrap() >= fault.at);
        assert!(report.availability() > 0.0 && report.availability() <= 1.0);
        assert!(report.ranked_availability() <= report.availability() + 1e-12);
        assert_eq!(
            report.mean_recovery_interactions(),
            Some(fault.recovery_interactions().unwrap() as f64)
        );
    }

    #[test]
    fn run_chaos_is_deterministic() {
        let run = || {
            let plan = FaultPlan::new(4)
                .after_convergence(3, FaultAction::Collide(FaultSize::Exact(2)))
                .every_interactions(400, FaultAction::DuplicateLeader);
            let mut sim =
                Simulation::new(ModRank { n: 8 }, vec![0usize; 8], 21).with_fault_plan(&plan);
            sim.run_chaos(5_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn soak_plan_exhausts_the_budget() {
        let plan = FaultPlan::new(2)
            .every_interactions(100, FaultAction::CorruptRandom(FaultSize::Exact(1)));
        let mut sim = Simulation::new(ModRank { n: 8 }, vec![0usize; 8], 5).with_fault_plan(&plan);
        let report = sim.run_chaos(2_000);
        assert_eq!(report.interactions, 2_000, "repeating plans run to the budget");
        assert!(report.faults.len() >= 15, "expected ~19 faults, got {}", report.faults.len());
        assert!(report.observed_steps > 0);
    }

    #[test]
    fn chaos_runner_is_reproducible_and_parallel_matches_sequential() {
        let runner = Runner::new(TrialSettings::new(6, 13, 1_000_000, 0));
        let make = |trial: u64, _rng: &mut SmallRng| {
            let plan = FaultPlan::new(trial)
                .after_convergence(4, FaultAction::CorruptRandom(FaultSize::Exact(1)));
            (ModRank { n: 8 }, vec![0usize; 8], plan)
        };
        let sequential = runner.run_chaos_trials(make);
        assert_eq!(sequential.len(), 6);
        let again = runner.run_chaos_trials(make);
        assert_eq!(
            sequential.iter().map(|t| &t.report).collect::<Vec<_>>(),
            again.iter().map(|t| &t.report).collect::<Vec<_>>()
        );
        for threads in [1, 2, 4] {
            let parallel = runner.run_chaos_trials_parallel(threads, make);
            assert_eq!(
                parallel.iter().map(|t| &t.report).collect::<Vec<_>>(),
                sequential.iter().map(|t| &t.report).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn chaos_records_round_trip_schema() {
        let runner = Runner::new(TrialSettings::new(1, 13, 1_000_000, 0));
        let outcomes = runner.run_chaos_trials(|_, _| {
            let plan = FaultPlan::new(8)
                .after_convergence(4, FaultAction::PartialReset(FaultSize::Exact(2)));
            (ModRank { n: 8 }, vec![0usize; 8], plan)
        });
        let trial = outcomes[0].trial_record("chaos-test", "modrank", None, 13);
        assert!(trial.outcome.is_converged());
        assert_eq!(trial.faults, Some(1));
        assert!(trial.availability.unwrap() > 0.0);
        let parsed = RunRecord::from_json(&trial.to_json()).unwrap();
        assert_eq!(parsed, trial);
        let faults = outcomes[0].fault_records("chaos-test", "modrank", None, 13);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].action, "partial_reset");
        assert_eq!(faults[0].agents, 2);
        assert!(faults[0].recovered_at.is_some());
        let parsed = FaultRecord::from_json(&faults[0].to_json()).unwrap();
        assert_eq!(parsed, faults[0]);
    }
}
