//! Dynamic populations: membership churn and Byzantine agents.
//!
//! The fixed-`n` simulator assumes the population named at construction is
//! the population forever. Self-stabilization is exactly the property that
//! justifies relaxing that: the paper's protocols recover from *any*
//! reachable configuration, so agents joining, leaving, or misbehaving
//! mid-run are the natural stress test. This module turns both backends
//! into dynamic-population simulators:
//!
//! * a [`ChurnPlan`] schedules membership events — rate-based replacement
//!   churn and scheduled [`ChurnAction::Join`]/[`ChurnAction::Leave`]
//!   events — against **parallel time**, so the same plan means the same
//!   thing at every `n`;
//! * a [`ByzantineSet`] pins a fraction `t` of agents to an adversarial
//!   transition function: after every interaction a Byzantine participant
//!   discards the protocol's update and overwrites its own state with an
//!   arbitrary one ([`Corruptor::random_state`]);
//! * [`Simulation::run_dynamics`] and [`BatchSimulation::run_dynamics`]
//!   drive an execution under both, measuring recovery with the same
//!   [`RecoveryTracker`] clock the chaos harness uses — each membership
//!   event is a fault with labels `"join"` / `"leave"` / `"replace"`.
//!
//! # RNG neutrality
//!
//! Churn and Byzantine randomness (victim choice, boot states, adversarial
//! overwrites) come from two private RNGs seeded by [`ChurnPlan::seed`] and
//! [`ByzantineSet::seed`]; the simulation RNG is never touched. With an
//! empty plan and `t = 0`, `run_dynamics` performs bit-identically the same
//! interaction sequence as [`Simulation::run_chaos`] — property-tested in
//! this module for both backends.
//!
//! # Semantics under a changing `n`
//!
//! Ranking protocols provably need the exact population size (Theorem 2.1),
//! so the protocol stays configured for its initial size `n₀` while the
//! live population drifts. A configuration counts as *ranked* only when the
//! live size is back to `n₀` **and** the rank multiset is correct; leader
//! availability (exactly one rank-1 agent) stays meaningful at any size.
//! Parallel time is accumulated piecewise as `1/n_live` per interaction.
//! Joining agents boot in adversarial states — in the self-stabilizing
//! model the adversary picks what a fresh agent's memory holds.

use std::hash::Hash;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::counts::BatchSimulation;
use crate::driver::SteppedDriver;
use crate::fault::{
    distinct_agents, ChaosReport, Corruptor, FaultPlan, FaultSchedule, RecoveryTracker,
};
use crate::graph::InteractionGraph;
use crate::metrics::MetricsSink;
use crate::observer::Observer;
use crate::record::{ChurnRecord, FaultRecord};
use crate::runner::{derive_seed, rng_from_seed, Runner};
use crate::scheduler::{Scheduler, SchedulerPolicy};
use crate::simulation::Simulation;
use crate::tracker::RankTracker;

/// What a membership event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// `k` fresh agents join, each booting in an adversarial state.
    Join(usize),
    /// `k` random agents leave (clamped so the population never drops below
    /// [`ChurnPlan::min_n`]).
    Leave(usize),
    /// `k` random agents are replaced in place — a departure plus a fresh
    /// adversarial join, so the population size is unchanged. This is the
    /// sustained-churn model: turnover without drift.
    Replace(usize),
}

impl ChurnAction {
    /// Stable snake_case name for records and reports (the fault-class
    /// label membership events carry in `"fault"` lines).
    pub fn label(&self) -> &'static str {
        match self {
            ChurnAction::Join(_) => "join",
            ChurnAction::Leave(_) => "leave",
            ChurnAction::Replace(_) => "replace",
        }
    }

    /// The number of agents the event asks to touch (before clamping).
    pub fn agents(&self) -> usize {
        match *self {
            ChurnAction::Join(k) | ChurnAction::Leave(k) | ChurnAction::Replace(k) => k,
        }
    }
}

/// When a [`ChurnEvent`] fires. Triggers are measured in **parallel time**
/// (interactions / live population size, accumulated piecewise), so a plan
/// is meaningful at every population size without rebinding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnTrigger {
    /// Once, at this parallel time.
    AtParallelTime(f64),
    /// Repeatedly, every `period` units of parallel time (first at
    /// `period`).
    EveryParallelTime {
        /// Interval between firings, in parallel time units (must be
        /// positive and finite).
        period: f64,
    },
}

/// One scheduled membership event: a trigger and an action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// When it fires.
    pub trigger: ChurnTrigger,
    /// What it does.
    pub action: ChurnAction,
}

/// A declarative membership-churn schedule, independent of any particular
/// execution.
///
/// All churn randomness (which agents leave, what states joiners boot in)
/// derives from [`ChurnPlan::seed`], never from the simulation RNG — an
/// execution under the empty plan is bit-identical to an undisturbed one.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<ChurnEvent>,
    /// Seed for the private churn RNG.
    pub seed: u64,
    /// Leaves are clamped so the live population never drops below this
    /// (floored at 2 — a population needs an interaction pair).
    pub min_n: usize,
    /// Joins are clamped so the live population never exceeds this, if set.
    pub max_n: Option<usize>,
}

impl ChurnPlan {
    /// The empty plan: no membership ever changes.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// An empty plan with churn randomness seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        ChurnPlan { events: Vec::new(), seed, min_n: 2, max_n: None }
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event with an explicit trigger.
    pub fn with_event(mut self, trigger: ChurnTrigger, action: ChurnAction) -> Self {
        self.events.push(ChurnEvent { trigger, action });
        self
    }

    /// Schedules `k` agents to join once at parallel time `t`.
    pub fn join_at(self, t: f64, k: usize) -> Self {
        self.with_event(ChurnTrigger::AtParallelTime(t), ChurnAction::Join(k))
    }

    /// Schedules `k` agents to leave once at parallel time `t`.
    pub fn leave_at(self, t: f64, k: usize) -> Self {
        self.with_event(ChurnTrigger::AtParallelTime(t), ChurnAction::Leave(k))
    }

    /// Schedules `k` agents to be replaced once at parallel time `t`.
    pub fn replace_at(self, t: f64, k: usize) -> Self {
        self.with_event(ChurnTrigger::AtParallelTime(t), ChurnAction::Replace(k))
    }

    /// Sustained replacement churn at `rate` replacements per unit of
    /// parallel time: one agent is replaced every `1/rate` units (first at
    /// `1/rate`). A rate of 0 adds nothing.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn rate(self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "churn rate {rate} must be finite and ≥ 0");
        if rate == 0.0 {
            return self;
        }
        self.with_event(
            ChurnTrigger::EveryParallelTime { period: 1.0 / rate },
            ChurnAction::Replace(1),
        )
    }

    /// Sets the population bounds leaves and joins are clamped against.
    pub fn with_bounds(mut self, min_n: usize, max_n: Option<usize>) -> Self {
        self.min_n = min_n;
        self.max_n = max_n;
        self
    }

    /// Parses a CLI churn spec into a plan.
    ///
    /// The spec is a comma-separated list of tokens:
    ///
    /// * a bare number is a sustained **replacement rate** per unit of
    ///   parallel time (`"2.0"` = one replacement every 0.5 units; `"0"`
    ///   adds nothing);
    /// * `join:<k>@<t>`, `leave:<k>@<t>`, `replace:<k>@<t>` schedule one
    ///   event of `k` agents at parallel time `t`.
    ///
    /// `"none"` and the empty string parse to the empty plan.
    pub fn parse(spec: &str, seed: u64) -> Result<ChurnPlan, String> {
        let mut plan = ChurnPlan::new(seed);
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for token in spec.split(',') {
            let token = token.trim();
            if let Ok(rate) = token.parse::<f64>() {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(format!("churn rate {token:?} must be finite and ≥ 0"));
                }
                plan = plan.rate(rate);
                continue;
            }
            let (kind, rest) = token.split_once(':').ok_or_else(|| {
                format!("bad churn token {token:?} (expected a rate or kind:<k>@<t>)")
            })?;
            let (k, t) = rest
                .split_once('@')
                .ok_or_else(|| format!("bad churn token {token:?} (expected kind:<k>@<t>)"))?;
            let k: usize = k
                .trim()
                .parse()
                .map_err(|e| format!("bad agent count in churn token {token:?}: {e}"))?;
            if k == 0 {
                return Err(format!("churn token {token:?} touches zero agents"));
            }
            let t: f64 = t
                .trim()
                .parse()
                .map_err(|e| format!("bad parallel time in churn token {token:?}: {e}"))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!("parallel time in churn token {token:?} must be ≥ 0"));
            }
            plan = match kind.trim() {
                "join" => plan.join_at(t, k),
                "leave" => plan.leave_at(t, k),
                "replace" => plan.replace_at(t, k),
                other => return Err(format!("unknown churn event kind {other:?}")),
            };
        }
        Ok(plan)
    }
}

/// A Byzantine adversary pinning a fraction `t` of agents to an adversarial
/// transition function.
///
/// On the agent-array backend membership is literal: `⌊t·n⌋` agents are
/// marked at the start (and joiners are marked with probability `t`), and
/// after every interaction each marked participant discards the protocol's
/// update, overwriting its state via [`Corruptor::random_state`]. The
/// count-based backend has no agent identities, so it runs the lumped
/// stand-in instead: every unit of parallel time, `⌊t·n⌋` uniformly random
/// agents are overwritten — the same expected corruption volume without
/// pinned identities. Grid results label the backend for this reason.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineSet {
    /// Fraction of agents under adversarial control, in `[0, 1)`.
    pub fraction: f64,
    /// Seed for the private adversary RNG (membership draws and state
    /// overwrites).
    pub seed: u64,
}

impl ByzantineSet {
    /// No Byzantine agents.
    pub fn none() -> Self {
        ByzantineSet { fraction: 0.0, seed: 0 }
    }

    /// An adversary controlling fraction `t` of the population.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1)` — a fully Byzantine population has
    /// nothing left to stabilize.
    pub fn new(fraction: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "byzantine fraction {fraction} must lie in [0, 1)");
        ByzantineSet { fraction, seed }
    }

    /// Whether the adversary controls nobody.
    pub fn is_empty(&self) -> bool {
        self.fraction == 0.0
    }

    /// Parses a CLI fraction spec (a bare number in `[0, 1)`).
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let fraction: f64 =
            spec.trim().parse().map_err(|e| format!("bad byzantine fraction {spec:?}: {e}"))?;
        if !fraction.is_finite() || !(0.0..1.0).contains(&fraction) {
            return Err(format!("byzantine fraction {spec:?} must lie in [0, 1)"));
        }
        Ok(ByzantineSet { fraction, seed })
    }
}

/// A [`ChurnPlan`] armed for one execution: due times resolved against the
/// piecewise parallel-time clock. Timing only — the driver owns the churn
/// RNG and applies the actions.
#[derive(Debug, Clone)]
pub(crate) struct ChurnInjector {
    /// One-shot events sorted by due time; `next_oneshot` indexes the first
    /// unconsumed one.
    oneshot: Vec<(f64, ChurnAction)>,
    next_oneshot: usize,
    /// Repeating events as `(next_due, period, action)`.
    repeating: Vec<(f64, f64, ChurnAction)>,
}

impl ChurnInjector {
    pub(crate) fn bind(plan: &ChurnPlan) -> Self {
        let mut oneshot = Vec::new();
        let mut repeating = Vec::new();
        for event in &plan.events {
            match event.trigger {
                ChurnTrigger::AtParallelTime(t) => {
                    assert!(
                        t.is_finite() && t >= 0.0,
                        "churn time {t} must be finite and non-negative"
                    );
                    oneshot.push((t, event.action));
                }
                ChurnTrigger::EveryParallelTime { period } => {
                    assert!(
                        period.is_finite() && period > 0.0,
                        "churn period {period} must be finite and positive"
                    );
                    repeating.push((period, period, event.action));
                }
            }
        }
        oneshot.sort_by(|a, b| a.0.total_cmp(&b.0));
        ChurnInjector { oneshot, next_oneshot: 0, repeating }
    }

    /// The earliest parallel time at which [`ChurnInjector::poll`] could
    /// return anything (`f64::INFINITY` when nothing is armed).
    pub(crate) fn next_due(&self) -> f64 {
        let mut due = self.oneshot.get(self.next_oneshot).map_or(f64::INFINITY, |&(t, _)| t);
        for &(d, _, _) in &self.repeating {
            due = due.min(d);
        }
        due
    }

    /// Whether no event can ever fire again.
    pub(crate) fn exhausted(&self) -> bool {
        self.next_oneshot >= self.oneshot.len() && self.repeating.is_empty()
    }

    /// Every action due at parallel time `pt`, in firing order.
    pub(crate) fn poll(&mut self, pt: f64) -> Vec<ChurnAction> {
        let mut due = Vec::new();
        while let Some(&(t, action)) = self.oneshot.get(self.next_oneshot) {
            if t > pt {
                break;
            }
            self.next_oneshot += 1;
            due.push(action);
        }
        for (next, period, action) in self.repeating.iter_mut() {
            while *next <= pt {
                *next += *period;
                due.push(*action);
            }
        }
        due
    }
}

/// What one dynamic-population run measured: the chaos-harness recovery
/// report plus the membership and adversary tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsReport {
    /// Recovery and availability statistics, with membership events logged
    /// as faults (labels `"join"` / `"leave"` / `"replace"`). The report's
    /// `n` is the *configured* size `n₀`; parallel-time conversions in it
    /// are relative to `n₀`.
    pub chaos: ChaosReport,
    /// Agents that joined (grew the population).
    pub joins: u64,
    /// Agents that left (shrank the population).
    pub leaves: u64,
    /// Agents replaced in place.
    pub replacements: u64,
    /// Byzantine state overwrites applied.
    pub byz_strikes: u64,
    /// Live population size when the run ended.
    pub final_n: usize,
    /// Parallel time executed, accumulated piecewise as `1/n_live` per
    /// interaction (exact under a varying population).
    pub parallel_time: f64,
}

impl<P, O, F, M> Simulation<P, O, F, Scheduler, M>
where
    P: Corruptor,
    O: Observer<P>,
    F: FaultSchedule<P>,
    M: MetricsSink,
{
    /// Runs under the attached fault schedule **plus** membership churn and
    /// a Byzantine adversary, measuring recovery and availability like
    /// [`Simulation::run_chaos`].
    ///
    /// Ends when the configuration is correctly ranked at the configured
    /// size with every fault and one-shot churn event consumed and
    /// recovered from — or at the interaction budget. Sustained churn or a
    /// non-empty Byzantine set never exhausts, so those runs use the whole
    /// budget (soak semantics) and the availability fractions are the
    /// product.
    ///
    /// With an empty plan and an empty Byzantine set this performs the
    /// bit-identical interaction sequence of [`Simulation::run_chaos`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation is not on the complete interaction graph
    /// (membership changes re-derive the scheduler, which is only defined
    /// there) or if the population does not match the protocol's configured
    /// size.
    pub fn run_dynamics(
        &mut self,
        churn: &ChurnPlan,
        byzantine: &ByzantineSet,
        max_interactions: u64,
    ) -> DynamicsReport {
        let n0 = self.protocol.population_size();
        assert_eq!(n0, self.states.len(), "protocol configured for a different population size");
        assert!(
            matches!(self.scheduler.graph(), InteractionGraph::Complete),
            "dynamic populations are only defined on the complete interaction graph"
        );
        let min_n = churn.min_n.max(2);
        let mut churn_rng = rng_from_seed(churn.seed);
        let mut byz_rng = rng_from_seed(byzantine.seed);
        let mut injector = ChurnInjector::bind(churn);
        let byz_active = !byzantine.is_empty();

        let mut byz = vec![false; n0];
        if byz_active {
            let k = (byzantine.fraction * n0 as f64).floor() as usize;
            for idx in distinct_agents(n0, k, &mut byz_rng) {
                byz[idx] = true;
            }
        }
        let mut joins = 0u64;
        let mut leaves = 0u64;
        let mut replacements = 0u64;
        let mut byz_strikes = 0u64;
        let mut pt = self.interactions as f64 / n0 as f64;

        let mut tracker = RankTracker::new(n0);
        for s in &self.states {
            tracker.add(self.protocol.rank_of(s));
        }
        let mut recovery = RecoveryTracker::new(n0);
        let mut seen = self.faults.fired_count();

        // The fault plan may fire at interaction 0, and the initial
        // configuration may already be ranked — mirror `run_chaos` exactly.
        self.poll_faults();
        if self.faults.fired_count() != seen {
            for f in &self.faults.log()[seen..] {
                recovery.on_fault(f.action, f.agents, f.at);
            }
            seen = self.faults.fired_count();
            tracker = RankTracker::new(n0);
            for s in &self.states {
                tracker.add(self.protocol.rank_of(s));
            }
        }
        if tracker.is_correct() && self.states.len() == n0 {
            recovery.on_ranked(self.interactions);
            self.faults.notify_converged(self.interactions);
        }

        loop {
            if tracker.is_correct()
                && self.states.len() == n0
                && self.faults.exhausted()
                && injector.exhausted()
                && !byz_active
                && recovery.open_faults() == 0
            {
                self.observer.on_converged(self.interactions);
                break;
            }
            if self.interactions >= max_interactions {
                self.observer.on_exhausted(self.interactions);
                break;
            }
            let n_live = self.states.len();
            let (i, j) = self.scheduler.sample_at(&mut self.rng, self.interactions);
            let before_i = self.protocol.rank_of(&self.states[i]);
            let before_j = self.protocol.rank_of(&self.states[j]);
            self.interact_observed(i, j);
            tracker.update(before_i, self.protocol.rank_of(&self.states[i]));
            tracker.update(before_j, self.protocol.rank_of(&self.states[j]));
            if M::ENABLED {
                self.note_step_metrics();
            }
            pt += 1.0 / n_live as f64;

            // Byzantine participants discard the protocol's update and
            // overwrite their own state adversarially.
            if byz_active {
                for a in [i, j] {
                    if byz[a] {
                        let before = self.protocol.rank_of(&self.states[a]);
                        self.states[a] = self.protocol.random_state(&mut byz_rng);
                        tracker.update(before, self.protocol.rank_of(&self.states[a]));
                        byz_strikes += 1;
                    }
                }
            }

            self.poll_faults();
            if self.faults.fired_count() != seen {
                for f in &self.faults.log()[seen..] {
                    recovery.on_fault(f.action, f.agents, f.at);
                }
                seen = self.faults.fired_count();
                tracker = RankTracker::new(n0);
                for s in &self.states {
                    tracker.add(self.protocol.rank_of(s));
                }
            }

            // Membership events due at this parallel time.
            if injector.next_due() <= pt {
                let mut changed = false;
                let len_before = self.states.len();
                for action in injector.poll(pt) {
                    let applied = match action {
                        ChurnAction::Join(k) => {
                            let room = churn
                                .max_n
                                .map_or(usize::MAX, |m| m.saturating_sub(self.states.len()));
                            let k = k.min(room);
                            for _ in 0..k {
                                self.states.push(self.protocol.random_state(&mut churn_rng));
                                byz.push(byz_active && byz_rng.gen_bool(byzantine.fraction));
                            }
                            joins += k as u64;
                            k
                        }
                        ChurnAction::Leave(k) => {
                            let k = k.min(self.states.len().saturating_sub(min_n));
                            for _ in 0..k {
                                let victim = churn_rng.gen_range(0..self.states.len());
                                self.states.swap_remove(victim);
                                byz.swap_remove(victim);
                            }
                            leaves += k as u64;
                            k
                        }
                        ChurnAction::Replace(k) => {
                            let k = k.min(self.states.len());
                            for _ in 0..k {
                                let victim = churn_rng.gen_range(0..self.states.len());
                                self.states[victim] = self.protocol.random_state(&mut churn_rng);
                                byz[victim] = byz_active && byz_rng.gen_bool(byzantine.fraction);
                            }
                            replacements += k as u64;
                            k
                        }
                    };
                    if applied > 0 {
                        recovery.on_fault(action.label(), applied, self.interactions);
                        changed = true;
                    }
                }
                if changed {
                    if self.states.len() != len_before {
                        self.scheduler =
                            Scheduler::new(self.states.len(), InteractionGraph::Complete);
                    }
                    tracker = RankTracker::new(n0);
                    for s in &self.states {
                        tracker.add(self.protocol.rank_of(s));
                    }
                }
            }

            let ranked = tracker.is_correct() && self.states.len() == n0;
            recovery.observe_step(ranked, tracker.count_of(1) == 1);
            if ranked {
                recovery.on_ranked(self.interactions);
                self.faults.notify_converged(self.interactions);
            }
        }
        DynamicsReport {
            final_n: self.states.len(),
            chaos: recovery.into_report(self.interactions),
            joins,
            leaves,
            replacements,
            byz_strikes,
            parallel_time: pt,
        }
    }
}

impl<P, O, F, M> BatchSimulation<P, O, F, M>
where
    P: Corruptor,
    P::State: Eq + Hash,
    O: Observer<P>,
    F: FaultSchedule<P>,
    M: MetricsSink,
{
    /// Overwrites the agent at zero-based position `r` with an adversarial
    /// state drawn from `rng` via [`Corruptor::random_state`], returning
    /// the displaced state. Safe only between batches.
    ///
    /// # Panics
    ///
    /// Panics if `r >= population()`.
    pub fn corrupt_agent_at(&mut self, r: u64, rng: &mut SmallRng) -> P::State {
        let state = self.protocol().random_state(rng);
        self.replace_agent_at(r, state)
    }

    /// Joins `k` fresh agents, each booting in an adversarial state drawn
    /// from `rng` (the self-stabilizing model: the adversary picks what a
    /// fresh agent's memory holds). Safe only between batches.
    pub fn join_adversarial_agents(&mut self, k: u64, rng: &mut SmallRng) {
        for _ in 0..k {
            let state = self.protocol().random_state(rng);
            self.add_agents(state, 1);
        }
    }

    /// Count-backend counterpart of [`Simulation::run_dynamics`]: advances
    /// whole collision-free batches capped at the next due churn or
    /// Byzantine strike (converted from parallel time against the live
    /// size), resolving ranked / unique-leader status at batch boundaries
    /// like [`BatchSimulation::run_chaos`].
    ///
    /// Counts are anonymous, so Byzantine membership cannot be pinned;
    /// this backend runs the lumped stand-in (see [`ByzantineSet`]):
    /// every unit of parallel time, `⌊t·n⌋` uniformly random agents are
    /// overwritten adversarially.
    ///
    /// With an empty plan and an empty Byzantine set this performs the
    /// bit-identical batch sequence of [`BatchSimulation::run_chaos`].
    ///
    /// This is the [`SteppedDriver`] loop run to completion — the daemon in
    /// `crates/serve` drives the same driver one slice at a time.
    pub fn run_dynamics(
        &mut self,
        churn: &ChurnPlan,
        byzantine: &ByzantineSet,
        max_interactions: u64,
    ) -> DynamicsReport {
        let driver = SteppedDriver::bind(self, churn, byzantine);
        driver.run(self, max_interactions)
    }
}

/// One completed dynamics trial: index, configured population size, full
/// report, and wall-clock duration.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsTrialOutcome {
    /// Trial index within the experiment.
    pub trial: u64,
    /// Population size the protocol was configured for.
    pub n: usize,
    /// Everything the run measured.
    pub report: DynamicsReport,
    /// Wall-clock time the execution took.
    pub wall: Duration,
}

impl DynamicsTrialOutcome {
    /// The trial-level churn record (`kind = "churn"`, schema v6).
    #[allow(clippy::too_many_arguments)]
    pub fn churn_record(
        &self,
        experiment: &str,
        protocol: &str,
        backend: &str,
        h: Option<u64>,
        base_seed: u64,
        churn_spec: &str,
        byzantine: f64,
    ) -> ChurnRecord {
        let chaos = &self.report.chaos;
        ChurnRecord {
            experiment: experiment.to_string(),
            protocol: protocol.to_string(),
            backend: backend.to_string(),
            n: self.n as u64,
            final_n: self.report.final_n as u64,
            h,
            trial: self.trial,
            seed: base_seed,
            churn: if churn_spec.trim().is_empty() { "none" } else { churn_spec.trim() }
                .to_string(),
            byzantine,
            joins: self.report.joins,
            leaves: self.report.leaves,
            replacements: self.report.replacements,
            byz_strikes: self.report.byz_strikes,
            faults: chaos.faults.len() as u64,
            availability: chaos.availability(),
            ranked_availability: chaos.ranked_availability(),
            recovered: chaos.recovered() as u64,
            mean_recovery_pt: chaos.mean_recovery_parallel_time(),
            first_ranked_pt: chaos.first_ranked_parallel_time(),
            interactions: chaos.interactions,
            parallel_time: self.report.parallel_time,
            wall_s: self.wall.as_secs_f64(),
        }
    }

    /// One `kind = "fault"` record per fired fault — membership events
    /// included, under their `"join"` / `"leave"` / `"replace"` labels.
    pub fn fault_records(
        &self,
        experiment: &str,
        protocol: &str,
        h: Option<u64>,
        base_seed: u64,
    ) -> Vec<FaultRecord> {
        self.report
            .chaos
            .faults
            .iter()
            .map(|f| FaultRecord {
                experiment: experiment.to_string(),
                protocol: protocol.to_string(),
                n: self.n as u64,
                h,
                trial: self.trial,
                seed: base_seed,
                action: f.action.to_string(),
                agents: f.agents as u64,
                injected_at: f.at,
                recovered_at: f.recovered_at,
            })
            .collect()
    }
}

/// Runs one seeded dynamics trial on the agent-array backend. Seed
/// derivation matches [`Runner::run_trials`]: configuration randomness from
/// `derive_seed(base, 2·trial)`, the execution from
/// `derive_seed(base, 2·trial + 1)` — so a dynamics trial with empty plans
/// replays the corresponding chaos trial's execution exactly.
fn dynamics_trial<P, F>(runner: &Runner, trial: u64, make: &mut F) -> DynamicsTrialOutcome
where
    P: Corruptor,
    F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet),
{
    let settings = *runner.settings();
    let mut config_rng = rng_from_seed(derive_seed(settings.base_seed, 2 * trial));
    let (protocol, initial, plan, churn, byzantine) = make(trial, &mut config_rng);
    let n = initial.len();
    let mut sim =
        Simulation::new(protocol, initial, derive_seed(settings.base_seed, 2 * trial + 1))
            .with_fault_plan(&plan);
    let started = Instant::now();
    let report = sim.run_dynamics(&churn, &byzantine, settings.max_interactions);
    DynamicsTrialOutcome { trial, n, report, wall: started.elapsed() }
}

/// Count-backend twin of [`dynamics_trial`], same seed derivation.
fn dynamics_trial_counts<P, F>(runner: &Runner, trial: u64, make: &mut F) -> DynamicsTrialOutcome
where
    P: Corruptor,
    P::State: Eq + Hash,
    F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet),
{
    let settings = *runner.settings();
    let mut config_rng = rng_from_seed(derive_seed(settings.base_seed, 2 * trial));
    let (protocol, initial, plan, churn, byzantine) = make(trial, &mut config_rng);
    let n = initial.len();
    let mut sim =
        BatchSimulation::new(protocol, initial, derive_seed(settings.base_seed, 2 * trial + 1))
            .with_fault_plan(&plan);
    let started = Instant::now();
    let report = sim.run_dynamics(&churn, &byzantine, settings.max_interactions);
    DynamicsTrialOutcome { trial, n, report, wall: started.elapsed() }
}

impl Runner {
    /// Runs every dynamics trial sequentially on the agent-array backend.
    ///
    /// `make` receives the trial index and a seeded RNG (for adversarial
    /// initial configurations) and returns the protocol, initial
    /// configuration, fault plan, churn plan, and Byzantine set for that
    /// trial. `confirm_window` is unused, as for the chaos runners.
    pub fn run_dynamics_trials<P, F>(&self, mut make: F) -> Vec<DynamicsTrialOutcome>
    where
        P: Corruptor,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet),
    {
        (0..self.settings().trials).map(|trial| dynamics_trial(self, trial, &mut make)).collect()
    }

    /// Like [`Runner::run_dynamics_trials`], but invokes `on_trial` after
    /// each trial completes, in trial order — for live progress heartbeats.
    pub fn run_dynamics_trials_observed<P, F, G>(
        &self,
        mut make: F,
        mut on_trial: G,
    ) -> Vec<DynamicsTrialOutcome>
    where
        P: Corruptor,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet),
        G: FnMut(&DynamicsTrialOutcome),
    {
        (0..self.settings().trials)
            .map(|trial| {
                let outcome = dynamics_trial(self, trial, &mut make);
                on_trial(&outcome);
                outcome
            })
            .collect()
    }

    /// Like [`Runner::run_dynamics_trials`], but distributing trials over
    /// `threads` worker threads. Outcomes are identical to the sequential
    /// version (per-trial seeds do not depend on scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_dynamics_trials_parallel<P, F>(
        &self,
        threads: usize,
        make: F,
    ) -> Vec<DynamicsTrialOutcome>
    where
        P: Corruptor + Send,
        P::State: Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet) + Sync,
    {
        assert!(threads > 0, "at least one worker thread is required");
        let make = &make;
        let trials = self.settings().trials;
        let mut results: Vec<DynamicsTrialOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let runner = *self;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut trial = worker as u64;
                    while trial < trials {
                        let mut make_fn = |t: u64, rng: &mut SmallRng| make(t, rng);
                        out.push(dynamics_trial(&runner, trial, &mut make_fn));
                        trial += threads as u64;
                    }
                    out
                });
                handles.push(handle);
            }
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        results.sort_unstable_by_key(|t| t.trial);
        results
    }

    /// Count-backend twin of [`Runner::run_dynamics_trials`].
    pub fn run_dynamics_trials_counts<P, F>(&self, mut make: F) -> Vec<DynamicsTrialOutcome>
    where
        P: Corruptor,
        P::State: Eq + Hash,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet),
    {
        (0..self.settings().trials)
            .map(|trial| dynamics_trial_counts(self, trial, &mut make))
            .collect()
    }

    /// Count-backend twin of [`Runner::run_dynamics_trials_observed`].
    pub fn run_dynamics_trials_counts_observed<P, F, G>(
        &self,
        mut make: F,
        mut on_trial: G,
    ) -> Vec<DynamicsTrialOutcome>
    where
        P: Corruptor,
        P::State: Eq + Hash,
        F: FnMut(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet),
        G: FnMut(&DynamicsTrialOutcome),
    {
        (0..self.settings().trials)
            .map(|trial| {
                let outcome = dynamics_trial_counts(self, trial, &mut make);
                on_trial(&outcome);
                outcome
            })
            .collect()
    }

    /// Count-backend twin of [`Runner::run_dynamics_trials_parallel`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_dynamics_trials_counts_parallel<P, F>(
        &self,
        threads: usize,
        make: F,
    ) -> Vec<DynamicsTrialOutcome>
    where
        P: Corruptor + Send,
        P::State: Eq + Hash + Send,
        F: Fn(u64, &mut SmallRng) -> (P, Vec<P::State>, FaultPlan, ChurnPlan, ByzantineSet) + Sync,
    {
        assert!(threads > 0, "at least one worker thread is required");
        let make = &make;
        let trials = self.settings().trials;
        let mut results: Vec<DynamicsTrialOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let runner = *self;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut trial = worker as u64;
                    while trial < trials {
                        let mut make_fn = |t: u64, rng: &mut SmallRng| make(t, rng);
                        out.push(dynamics_trial_counts(&runner, trial, &mut make_fn));
                        trial += threads as u64;
                    }
                    out
                });
                handles.push(handle);
            }
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        results.sort_unstable_by_key(|t| t.trial);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultSize};
    use crate::protocol::{Protocol, RankingProtocol};
    use crate::runner::TrialSettings;

    /// Protocol 1 of the paper (Silent-n-state-SSR), minimal: states are
    /// ranks `0..n`, colliding ranks bump the responder mod n.
    struct ModRank {
        n: usize,
    }

    impl Protocol for ModRank {
        type State = usize;
        const DETERMINISTIC_INTERACT: bool = true;
        fn interact(&self, a: &mut usize, b: &mut usize, _rng: &mut SmallRng) {
            if a == b {
                *b = (*b + 1) % self.n;
            }
        }
        fn is_null_pair(&self, a: &usize, b: &usize) -> bool {
            a != b
        }
    }

    impl RankingProtocol for ModRank {
        fn population_size(&self) -> usize {
            self.n
        }
        fn rank_of(&self, state: &usize) -> Option<usize> {
            Some(state + 1)
        }
    }

    impl Corruptor for ModRank {
        fn random_state(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(0..self.n)
        }
    }

    const N: usize = 16;
    const BUDGET: u64 = 400_000;

    fn all_zero(n: usize) -> Vec<usize> {
        vec![0; n]
    }

    #[test]
    fn churn_plan_parses_specs() {
        let plan = ChurnPlan::parse("2.0", 7).unwrap();
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.events[0].trigger, ChurnTrigger::EveryParallelTime { period: 0.5 });
        assert_eq!(plan.events[0].action, ChurnAction::Replace(1));

        let plan = ChurnPlan::parse("join:4@8, leave:2@16, replace:1@24", 7).unwrap();
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0].action, ChurnAction::Join(4));
        assert_eq!(plan.events[1].action, ChurnAction::Leave(2));
        assert_eq!(plan.events[2].trigger, ChurnTrigger::AtParallelTime(24.0));

        let plan = ChurnPlan::parse("0.5, join:1@100", 7).unwrap();
        assert_eq!(plan.events.len(), 2);

        assert!(ChurnPlan::parse("none", 0).unwrap().is_empty());
        assert!(ChurnPlan::parse("", 0).unwrap().is_empty());
        assert!(ChurnPlan::parse("0", 0).unwrap().is_empty());

        assert!(ChurnPlan::parse("-1", 0).is_err());
        assert!(ChurnPlan::parse("drop:1@2", 0).is_err());
        assert!(ChurnPlan::parse("join:0@2", 0).is_err());
        assert!(ChurnPlan::parse("join:1", 0).is_err());
        assert!(ChurnPlan::parse("join:1@-3", 0).is_err());
        assert!(ChurnPlan::parse("banana", 0).is_err());
    }

    #[test]
    fn byzantine_set_parses_and_validates() {
        assert_eq!(ByzantineSet::parse("0.25", 3).unwrap().fraction, 0.25);
        assert!(ByzantineSet::parse("0", 0).unwrap().is_empty());
        assert!(ByzantineSet::parse("1.0", 0).is_err());
        assert!(ByzantineSet::parse("-0.1", 0).is_err());
        assert!(ByzantineSet::parse("x", 0).is_err());
    }

    #[test]
    fn churn_injector_fires_in_order_and_repeats() {
        let plan = ChurnPlan::new(0).join_at(2.0, 1).leave_at(1.0, 1).rate(1.0);
        let mut inj = ChurnInjector::bind(&plan);
        assert!(!inj.exhausted());
        assert_eq!(inj.next_due(), 1.0);
        let fired = inj.poll(2.5);
        assert_eq!(
            fired,
            vec![
                ChurnAction::Leave(1),
                ChurnAction::Join(1),
                ChurnAction::Replace(1),
                ChurnAction::Replace(1)
            ]
        );
        // Repeats rearm; one-shots are consumed.
        assert_eq!(inj.next_due(), 3.0);
        assert!(!inj.exhausted());

        let mut oneshots = ChurnInjector::bind(&ChurnPlan::new(0).join_at(1.0, 1));
        oneshots.poll(1.0);
        assert!(oneshots.exhausted());
        assert_eq!(oneshots.next_due(), f64::INFINITY);
    }

    /// The RNG-neutrality acceptance criterion, agents backend: empty plan
    /// and t = 0 replay `run_chaos` bit-identically.
    #[test]
    fn empty_dynamics_replays_chaos_agents() {
        for seed in 0..8u64 {
            let plan = FaultPlan::new(seed)
                .at_parallel_time(5.0, FaultAction::CorruptRandom(FaultSize::Exact(3)));
            let mut chaos =
                Simulation::new(ModRank { n: N }, all_zero(N), seed).with_fault_plan(&plan);
            let chaos_report = chaos.run_chaos(BUDGET);

            let mut dynamics =
                Simulation::new(ModRank { n: N }, all_zero(N), seed).with_fault_plan(&plan);
            let report = dynamics.run_dynamics(&ChurnPlan::none(), &ByzantineSet::none(), BUDGET);

            assert_eq!(report.chaos, chaos_report, "seed {seed}");
            assert_eq!(report.joins + report.leaves + report.replacements, 0);
            assert_eq!(report.byz_strikes, 0);
            assert_eq!(report.final_n, N);
            assert_eq!(dynamics.states(), chaos.states(), "seed {seed}");
            assert_eq!(dynamics.interactions(), chaos.interactions(), "seed {seed}");
        }
    }

    /// The RNG-neutrality acceptance criterion, counts backend.
    #[test]
    fn empty_dynamics_replays_chaos_counts() {
        for seed in 0..8u64 {
            let plan = FaultPlan::new(seed)
                .at_parallel_time(5.0, FaultAction::CorruptRandom(FaultSize::Exact(3)));
            let mut chaos =
                BatchSimulation::new(ModRank { n: N }, all_zero(N), seed).with_fault_plan(&plan);
            let chaos_report = chaos.run_chaos(BUDGET);

            let mut dynamics =
                BatchSimulation::new(ModRank { n: N }, all_zero(N), seed).with_fault_plan(&plan);
            let report = dynamics.run_dynamics(&ChurnPlan::none(), &ByzantineSet::none(), BUDGET);

            assert_eq!(report.chaos, chaos_report, "seed {seed}");
            assert_eq!(report.final_n, N);
            assert_eq!(dynamics.interactions(), chaos.interactions(), "seed {seed}");
            let want: Vec<(usize, u64)> = chaos.counts().iter().map(|(s, c)| (*s, c)).collect();
            let got: Vec<(usize, u64)> = dynamics.counts().iter().map(|(s, c)| (*s, c)).collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn scheduled_join_and_leave_change_membership_agents() {
        let churn = ChurnPlan::new(11).join_at(3.0, 4).leave_at(40.0, 4);
        let mut sim =
            Simulation::new(ModRank { n: N }, all_zero(N), 5).with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&churn, &ByzantineSet::none(), BUDGET);
        assert_eq!(report.joins, 4);
        assert_eq!(report.leaves, 4);
        assert_eq!(report.final_n, N);
        // Both membership events opened a recovery clock.
        let labels: Vec<&str> = report.chaos.faults.iter().map(|f| f.action).collect();
        assert_eq!(labels, vec!["join", "leave"]);
        // Back at n₀ with one-shot churn: the run should re-stabilize.
        assert!(report.chaos.fully_recovered(), "report: {report:?}");
    }

    #[test]
    fn scheduled_join_and_leave_change_membership_counts() {
        let churn = ChurnPlan::new(11).join_at(3.0, 4).leave_at(40.0, 4);
        let mut sim = BatchSimulation::new(ModRank { n: N }, all_zero(N), 5)
            .with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&churn, &ByzantineSet::none(), BUDGET);
        assert_eq!(report.joins, 4);
        assert_eq!(report.leaves, 4);
        assert_eq!(report.final_n, N);
        assert_eq!(sim.counts().population(), N as u64);
        assert!(report.chaos.fully_recovered(), "report: {report:?}");
    }

    #[test]
    fn leaves_clamp_at_the_population_floor() {
        // Ask to remove far more agents than exist: the event clamps to the
        // floor instead of panicking (mirrors FaultSize::resolve).
        let churn = ChurnPlan::new(3).leave_at(1.0, 10 * N).with_bounds(4, None);
        let mut sim =
            Simulation::new(ModRank { n: N }, all_zero(N), 5).with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&churn, &ByzantineSet::none(), 50_000);
        assert_eq!(report.leaves, (N - 4) as u64);
        assert_eq!(report.final_n, 4);
        // Shrunken population can never be ranked for n₀ again.
        assert_eq!(report.chaos.first_ranked, None);
    }

    #[test]
    fn joins_clamp_at_the_population_ceiling() {
        let churn = ChurnPlan::new(3).join_at(1.0, 100).with_bounds(2, Some(N + 5));
        let mut sim = BatchSimulation::new(ModRank { n: N }, all_zero(N), 5)
            .with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&churn, &ByzantineSet::none(), 50_000);
        assert_eq!(report.joins, 5);
        assert_eq!(report.final_n, N + 5);
    }

    #[test]
    fn replacement_churn_keeps_size_and_opens_recovery_clocks() {
        let churn = ChurnPlan::parse("0.25", 13).unwrap();
        let mut sim =
            Simulation::new(ModRank { n: N }, all_zero(N), 5).with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&churn, &ByzantineSet::none(), 100_000);
        assert_eq!(report.final_n, N);
        assert!(report.replacements > 0);
        assert_eq!(report.replacements, report.chaos.faults.len() as u64);
        // Sustained churn never exhausts: the whole budget is used.
        assert_eq!(report.chaos.interactions, 100_000);
    }

    #[test]
    fn byzantine_agents_strike_and_depress_availability() {
        let byzantine = ByzantineSet::new(0.25, 21);
        let mut sim =
            Simulation::new(ModRank { n: N }, all_zero(N), 5).with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&ChurnPlan::none(), &byzantine, 100_000);
        assert!(report.byz_strikes > 0);
        // A Byzantine run never ends early.
        assert_eq!(report.chaos.interactions, 100_000);
        assert!(report.chaos.ranked_availability() < 1.0, "report: {report:?}");
    }

    #[test]
    fn byzantine_strikes_hit_the_counts_backend() {
        let byzantine = ByzantineSet::new(0.25, 21);
        let mut sim = BatchSimulation::new(ModRank { n: N }, all_zero(N), 5)
            .with_fault_plan(&FaultPlan::none());
        let report = sim.run_dynamics(&ChurnPlan::none(), &byzantine, 100_000);
        // ⌊0.25·16⌋ = 4 strikes per parallel-time unit, budget/n units.
        assert!(report.byz_strikes > 0);
        assert_eq!(report.final_n, N);
        assert_eq!(sim.counts().population(), N as u64);
        assert_eq!(report.chaos.interactions, 100_000);
    }

    #[test]
    fn dynamics_runs_are_deterministic() {
        let churn = ChurnPlan::parse("0.5, join:2@10, leave:2@30", 17).unwrap();
        let byzantine = ByzantineSet::new(0.1, 23);
        let run = || {
            let mut sim = Simulation::new(ModRank { n: N }, all_zero(N), 5)
                .with_fault_plan(&FaultPlan::none());
            let report = sim.run_dynamics(&churn, &byzantine, 60_000);
            (report, sim.states().to_vec())
        };
        assert_eq!(run(), run());

        let run_counts = || {
            let mut sim = BatchSimulation::new(ModRank { n: N }, all_zero(N), 5)
                .with_fault_plan(&FaultPlan::none());
            let report = sim.run_dynamics(&churn, &byzantine, 60_000);
            let counts: Vec<(usize, u64)> = sim.counts().iter().map(|(s, c)| (*s, c)).collect();
            (report, counts)
        };
        assert_eq!(run_counts(), run_counts());
    }

    #[test]
    fn runner_dynamics_trials_match_parallel() {
        let runner = Runner::new(TrialSettings::new(4, 99, 60_000, 0));
        let make = |_t: u64, _rng: &mut SmallRng| {
            (
                ModRank { n: N },
                all_zero(N),
                FaultPlan::none(),
                ChurnPlan::parse("0.5", 31).unwrap(),
                ByzantineSet::new(0.1, 37),
            )
        };
        let sequential = runner.run_dynamics_trials(make);
        let parallel = runner.run_dynamics_trials_parallel(2, make);
        assert_eq!(sequential.len(), 4);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.trial, p.trial);
            assert_eq!(s.report, p.report);
        }
        let counts_seq = runner.run_dynamics_trials_counts(make);
        let counts_par = runner.run_dynamics_trials_counts_parallel(2, make);
        for (s, p) in counts_seq.iter().zip(&counts_par) {
            assert_eq!(s.report, p.report);
        }
    }

    #[test]
    fn churn_record_reports_the_trial() {
        let runner = Runner::new(TrialSettings::new(1, 42, 60_000, 0));
        let outcome = &runner.run_dynamics_trials(|_t, _rng| {
            (
                ModRank { n: N },
                all_zero(N),
                FaultPlan::none(),
                ChurnPlan::parse("1.0", 7).unwrap(),
                ByzantineSet::none(),
            )
        })[0];
        let record = outcome.churn_record("dyn", "modrank", "agents", None, 42, "1.0", 0.0);
        assert_eq!(record.n, N as u64);
        assert_eq!(record.final_n, N as u64);
        assert_eq!(record.churn, "1.0");
        assert_eq!(record.replacements, outcome.report.replacements);
        assert_eq!(record.faults, outcome.report.chaos.faults.len() as u64);
        let faults = outcome.fault_records("dyn", "modrank", None, 42);
        assert_eq!(faults.len(), outcome.report.chaos.faults.len());
        assert!(faults.iter().all(|f| f.action == "replace"));
        // The record round-trips through JSONL.
        let json = record.to_json();
        assert_eq!(ChurnRecord::from_json(&json).unwrap(), record);
    }
}
