//! Versioned on-disk checkpoints of live executions.
//!
//! The service daemon (`ssle serve`) keeps populations alive between
//! requests; a checkpoint lets them outlive the *process* — graceful
//! shutdown snapshots every population, and the next boot restores them.
//! Because the two backends are exact state machines over a seeded RNG, a
//! checkpoint captures everything a continuation depends on:
//!
//! * the configuration — the agent array (run-length encoded) for the
//!   agent backend, the raw count entries **in entry order, including
//!   zero-count tombstones** for the count backend (entry order is the
//!   sampling order, so dropping tombstones would change the trajectory);
//! * the interaction count;
//! * the RNG stream position ([`rand::rngs::SmallRng::state`] — reseeding
//!   cannot reproduce a mid-stream position).
//!
//! Restoring and continuing is **bit-identical** to never having stopped —
//! property-tested on both backends in `crates/serve`.
//!
//! # Wire format
//!
//! A snapshot is line-delimited JSON (the repository's only serialization
//! idiom — see [`crate::record`]): a header line, one `snapshot-run` line
//! per run/entry, and a footer line whose `runs` count detects
//! truncation. The RNG state rides as a 64-hex-digit string because JSON
//! numbers are `f64` and lose `u64` precision above 2⁵³.
//!
//! ```text
//! {"v":1,"kind":"snapshot","protocol":"ciw","backend":"counts","param":50,"live":50,"interactions":1200,"rng":"<64 hex>"}
//! {"kind":"snapshot-run","s":"17","c":3}
//! {"kind":"snapshot-end","runs":12}
//! ```
//!
//! Protocol states are encoded by [`SnapshotProtocol`], implemented in
//! `crates/core` for the protocols whose state is plain data.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::SmallRng;

use crate::counts::{BatchSimulation, CountConfig};
use crate::fault::FaultSchedule;
use crate::metrics::MetricsSink;
use crate::observer::Observer;
use crate::protocol::Protocol;
use crate::record::{parse_flat_json, JsonObject, JsonScalar};
use crate::scheduler::Scheduler;
use crate::simulation::Simulation;

/// The snapshot format version this build writes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A protocol whose states can round-trip through a snapshot.
///
/// `decode_state` must invert `encode_state` exactly — the restored
/// configuration feeds the same transition function, so a lossy encoding
/// would silently fork the trajectory. Implementations validate
/// ranges (a rank beyond `n`, a timer beyond `t_max`) and reject rather
/// than clamp: a malformed snapshot is corruption, not input.
pub trait SnapshotProtocol: Protocol {
    /// Stable protocol tag stored in the header (`"ciw"`, `"oss"`, …).
    /// Restore refuses a snapshot whose tag does not match.
    const TAG: &'static str;

    /// The protocol's configuring parameter — the population size for the
    /// ranking protocols, `T_max` for the loosely-stabilizing protocol.
    /// Restore refuses a snapshot taken under a different parameter, since
    /// the transition function would differ.
    fn snapshot_param(&self) -> u64;

    /// Encodes one agent state as a compact string without `"` or `\`.
    fn encode_state(&self, state: &Self::State) -> String;

    /// Decodes a state previously produced by
    /// [`SnapshotProtocol::encode_state`].
    fn decode_state(&self, text: &str) -> Result<Self::State, String>;
}

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file ended before the footer — a partial write.
    Truncated,
    /// A line failed to parse or validate.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The header's format version is newer than this build understands.
    Version(u64),
    /// The snapshot does not match what the caller asked to restore
    /// (wrong protocol tag, backend, or population size).
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated (missing footer)"),
            SnapshotError::Corrupt { line, reason } => {
                write!(f, "snapshot corrupt at line {line}: {reason}")
            }
            SnapshotError::Version(v) => {
                write!(f, "snapshot version {v} is newer than supported ({SNAPSHOT_VERSION})")
            }
            SnapshotError::Mismatch(reason) => write!(f, "snapshot mismatch: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A parsed (or to-be-written) snapshot document.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDoc {
    /// Protocol tag ([`SnapshotProtocol::TAG`]).
    pub protocol: String,
    /// Backend name (`"agents"` or `"counts"`).
    pub backend: String,
    /// The protocol's configuring parameter ([`SnapshotProtocol::snapshot_param`]).
    pub param: u64,
    /// Live population size (may differ from `n0` under churn).
    pub live: u64,
    /// Interactions performed when the snapshot was taken.
    pub interactions: u64,
    /// Write-ahead-journal command sequence number this snapshot covers —
    /// boot-time recovery replays only journal entries with `seq >` this
    /// value. `0` for snapshots taken outside the journaled service path
    /// (the field is optional on the wire for back-compat).
    pub seq: u64,
    /// RNG stream position.
    pub rng: [u64; 4],
    /// `(encoded state, count)` runs. For the agent backend these are
    /// maximal runs of consecutive equal states (counts ≥ 1); for the
    /// count backend they are the raw entries in entry order, tombstones
    /// included (counts ≥ 0).
    pub runs: Vec<(String, u64)>,
}

impl SnapshotDoc {
    /// Serializes to the versioned JSONL format.
    pub fn to_jsonl(&self) -> String {
        let mut rng_hex = String::with_capacity(64);
        for word in self.rng {
            rng_hex.push_str(&format!("{word:016x}"));
        }
        let mut out = String::new();
        let mut header = JsonObject::new();
        header
            .field_u64("v", SNAPSHOT_VERSION)
            .field_str("kind", "snapshot")
            .field_str("protocol", &self.protocol)
            .field_str("backend", &self.backend)
            .field_u64("param", self.param)
            .field_u64("live", self.live)
            .field_u64("interactions", self.interactions)
            .field_str("rng", &rng_hex);
        if self.seq != 0 {
            header.field_u64("seq", self.seq);
        }
        out.push_str(&header.finish());
        out.push('\n');
        for (state, count) in &self.runs {
            let mut line = JsonObject::new();
            line.field_str("kind", "snapshot-run").field_str("s", state).field_u64("c", *count);
            out.push_str(&line.finish());
            out.push('\n');
        }
        let mut footer = JsonObject::new();
        footer.field_str("kind", "snapshot-end").field_u64("runs", self.runs.len() as u64);
        out.push_str(&footer.finish());
        out.push('\n');
        out
    }

    /// Parses the versioned JSONL format, validating structure: header
    /// first, footer last, run count matching the footer, and run counts
    /// summing to `live`. Any violation is a clean [`SnapshotError`],
    /// never a panic.
    pub fn from_jsonl(input: &str) -> Result<SnapshotDoc, SnapshotError> {
        let mut lines = input.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (lineno, header) = lines.next().ok_or(SnapshotError::Truncated)?;
        let header = parse_line(lineno, header)?;
        if kind(&header) != Some("snapshot") {
            return Err(corrupt(lineno, "expected a snapshot header"));
        }
        let version = get_u64(&header, "v").ok_or_else(|| corrupt(lineno, "missing version"))?;
        if version > SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(version));
        }
        let rng_hex = get_str(&header, "rng").ok_or_else(|| corrupt(lineno, "missing rng"))?;
        let rng = parse_rng_hex(rng_hex).map_err(|reason| corrupt(lineno, &reason))?;
        let mut doc = SnapshotDoc {
            protocol: get_str(&header, "protocol")
                .ok_or_else(|| corrupt(lineno, "missing protocol"))?
                .to_string(),
            backend: get_str(&header, "backend")
                .ok_or_else(|| corrupt(lineno, "missing backend"))?
                .to_string(),
            param: get_u64(&header, "param").ok_or_else(|| corrupt(lineno, "missing param"))?,
            live: get_u64(&header, "live").ok_or_else(|| corrupt(lineno, "missing live"))?,
            interactions: get_u64(&header, "interactions")
                .ok_or_else(|| corrupt(lineno, "missing interactions"))?,
            // Absent on snapshots written before the write-ahead journal
            // existed (and on non-service snapshots): they cover no
            // journaled commands.
            seq: get_u64(&header, "seq").unwrap_or(0),
            rng,
            runs: Vec::new(),
        };
        let mut footer_runs = None;
        for (lineno, line) in lines {
            if footer_runs.is_some() {
                return Err(corrupt(lineno, "content after the footer"));
            }
            let obj = parse_line(lineno, line)?;
            match kind(&obj) {
                Some("snapshot-run") => {
                    let state = get_str(&obj, "s")
                        .ok_or_else(|| corrupt(lineno, "run line missing state"))?;
                    let count = get_u64(&obj, "c")
                        .ok_or_else(|| corrupt(lineno, "run line missing count"))?;
                    doc.runs.push((state.to_string(), count));
                }
                Some("snapshot-end") => {
                    footer_runs = Some(
                        get_u64(&obj, "runs")
                            .ok_or_else(|| corrupt(lineno, "footer missing run count"))?,
                    );
                }
                _ => return Err(corrupt(lineno, "unexpected line kind")),
            }
        }
        match footer_runs {
            None => return Err(SnapshotError::Truncated),
            Some(runs) if runs != doc.runs.len() as u64 => {
                return Err(corrupt(
                    0,
                    &format!("footer promises {runs} runs, found {}", doc.runs.len()),
                ));
            }
            Some(_) => {}
        }
        let total: u64 = doc.runs.iter().map(|(_, c)| c).sum();
        if total != doc.live {
            return Err(corrupt(
                0,
                &format!("runs sum to {total} agents, header says {} live", doc.live),
            ));
        }
        Ok(doc)
    }
}

fn corrupt(lineno: usize, reason: &str) -> SnapshotError {
    SnapshotError::Corrupt { line: lineno + 1, reason: reason.to_string() }
}

fn parse_line(lineno: usize, line: &str) -> Result<BTreeMap<String, JsonScalar>, SnapshotError> {
    parse_flat_json(line).map_err(|reason| corrupt(lineno, &reason))
}

fn kind(obj: &BTreeMap<String, JsonScalar>) -> Option<&str> {
    get_str(obj, "kind")
}

fn get_str<'a>(obj: &'a BTreeMap<String, JsonScalar>, key: &str) -> Option<&'a str> {
    match obj.get(key) {
        Some(JsonScalar::Str(s)) => Some(s),
        _ => None,
    }
}

fn get_u64(obj: &BTreeMap<String, JsonScalar>, key: &str) -> Option<u64> {
    match obj.get(key) {
        Some(JsonScalar::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
            Some(*x as u64)
        }
        _ => None,
    }
}

fn parse_rng_hex(hex: &str) -> Result<[u64; 4], String> {
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("rng state must be 64 hex digits, got {:?}", hex));
    }
    let mut words = [0u64; 4];
    for (i, word) in words.iter_mut().enumerate() {
        *word = u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16)
            .map_err(|e| format!("bad rng word: {e}"))?;
    }
    if words == [0; 4] {
        return Err("the all-zero rng state is invalid".to_string());
    }
    Ok(words)
}

/// Snapshots an agent-array execution. States are run-length encoded over
/// consecutive equal agents, preserving agent order (the scheduler draws
/// agent *indices*, so order is part of the trajectory).
pub fn snapshot_agents<P, O, F, M>(sim: &Simulation<P, O, F, Scheduler, M>) -> SnapshotDoc
where
    P: SnapshotProtocol,
    O: Observer<P>,
    F: FaultSchedule<P>,
    M: MetricsSink,
{
    let protocol = sim.protocol();
    let mut runs: Vec<(String, u64)> = Vec::new();
    for state in sim.states() {
        let encoded = protocol.encode_state(state);
        match runs.last_mut() {
            Some((last, count)) if *last == encoded => *count += 1,
            _ => runs.push((encoded, 1)),
        }
    }
    SnapshotDoc {
        protocol: P::TAG.to_string(),
        backend: "agents".to_string(),
        param: protocol.snapshot_param(),
        live: sim.states().len() as u64,
        interactions: sim.interactions(),
        seq: 0,
        rng: sim.rng_state(),
        runs,
    }
}

/// Snapshots a count-based execution: the raw entries in entry order,
/// **including zero-count tombstones** — entry order is the sampling
/// order, so it must survive the round trip exactly.
pub fn snapshot_counts<P, O, F, M>(sim: &BatchSimulation<P, O, F, M>) -> SnapshotDoc
where
    P: SnapshotProtocol,
    P::State: Eq + std::hash::Hash,
    O: Observer<P>,
    F: FaultSchedule<P>,
    M: MetricsSink,
{
    let protocol = sim.protocol();
    let config = sim.counts();
    let mut runs = Vec::with_capacity(config.raw_len());
    for idx in 0..config.raw_len() {
        runs.push((protocol.encode_state(config.state_at(idx)), config.count_at(idx)));
    }
    SnapshotDoc {
        protocol: P::TAG.to_string(),
        backend: "counts".to_string(),
        param: protocol.snapshot_param(),
        live: config.population(),
        interactions: sim.interactions(),
        seq: 0,
        rng: sim.rng_state(),
        runs,
    }
}

fn check_doc<P: SnapshotProtocol>(
    protocol: &P,
    doc: &SnapshotDoc,
    backend: &str,
) -> Result<(), SnapshotError> {
    if doc.protocol != P::TAG {
        return Err(SnapshotError::Mismatch(format!(
            "snapshot is for protocol {:?}, restoring {:?}",
            doc.protocol,
            P::TAG
        )));
    }
    if doc.backend != backend {
        return Err(SnapshotError::Mismatch(format!(
            "snapshot is for backend {:?}, restoring {backend:?}",
            doc.backend
        )));
    }
    if doc.param != protocol.snapshot_param() {
        return Err(SnapshotError::Mismatch(format!(
            "snapshot taken under protocol parameter {}, restoring under {}",
            doc.param,
            protocol.snapshot_param()
        )));
    }
    Ok(())
}

/// Restores an agent-array execution from a snapshot. Continuing it is
/// bit-identical to continuing the snapshotted simulation.
pub fn restore_agents<P: SnapshotProtocol>(
    protocol: P,
    doc: &SnapshotDoc,
) -> Result<Simulation<P>, SnapshotError> {
    check_doc(&protocol, doc, "agents")?;
    let mut states = Vec::with_capacity(doc.live as usize);
    for (encoded, count) in &doc.runs {
        if *count == 0 {
            return Err(SnapshotError::Mismatch(
                "agent snapshots cannot contain zero-length runs".to_string(),
            ));
        }
        let state = protocol.decode_state(encoded).map_err(|reason| {
            SnapshotError::Mismatch(format!("bad state {encoded:?}: {reason}"))
        })?;
        for _ in 0..*count {
            states.push(state.clone());
        }
    }
    if states.len() < 2 {
        return Err(SnapshotError::Mismatch("fewer than two agents".to_string()));
    }
    Ok(Simulation::from_checkpoint(
        protocol,
        states,
        doc.interactions,
        SmallRng::from_state(doc.rng),
    ))
}

/// Restores a count-based execution from a snapshot. Continuing it is
/// bit-identical to continuing the snapshotted simulation.
pub fn restore_counts<P>(
    protocol: P,
    doc: &SnapshotDoc,
) -> Result<BatchSimulation<P>, SnapshotError>
where
    P: SnapshotProtocol,
    P::State: Eq + std::hash::Hash,
{
    check_doc(&protocol, doc, "counts")?;
    let mut config = CountConfig::new();
    for (encoded, count) in &doc.runs {
        let state = protocol.decode_state(encoded).map_err(|reason| {
            SnapshotError::Mismatch(format!("bad state {encoded:?}: {reason}"))
        })?;
        let idx = config.ensure_entry(state);
        if idx != config.raw_len() - 1 {
            return Err(SnapshotError::Mismatch(format!(
                "duplicate count entry for state {encoded:?}"
            )));
        }
        config.add_at(idx, *count);
    }
    if config.population() < 2 {
        return Err(SnapshotError::Mismatch("fewer than two agents".to_string()));
    }
    Ok(BatchSimulation::from_checkpoint(
        protocol,
        config,
        doc.interactions,
        SmallRng::from_state(doc.rng),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Test protocol: states are u32 tokens; collision bumps mod n.
    #[derive(Debug, Clone)]
    struct TokenRank {
        n: usize,
    }

    impl crate::protocol::Protocol for TokenRank {
        type State = u32;
        const DETERMINISTIC_INTERACT: bool = true;
        fn interact(&self, a: &mut u32, b: &mut u32, _rng: &mut SmallRng) {
            if *a == *b {
                *b = (*b + 1) % self.n as u32;
            }
        }
    }

    impl crate::protocol::RankingProtocol for TokenRank {
        fn population_size(&self) -> usize {
            self.n
        }
        fn rank_of(&self, state: &u32) -> Option<usize> {
            Some(*state as usize + 1)
        }
    }

    impl SnapshotProtocol for TokenRank {
        const TAG: &'static str = "token";
        fn snapshot_param(&self) -> u64 {
            self.n as u64
        }
        fn encode_state(&self, state: &u32) -> String {
            state.to_string()
        }
        fn decode_state(&self, text: &str) -> Result<u32, String> {
            let v: u32 = text.parse().map_err(|e| format!("{e}"))?;
            if v as usize >= self.n {
                return Err(format!("token {v} out of range for n = {}", self.n));
            }
            Ok(v)
        }
    }

    fn doc_round_trip(doc: &SnapshotDoc) -> SnapshotDoc {
        SnapshotDoc::from_jsonl(&doc.to_jsonl()).expect("round trip")
    }

    #[test]
    fn agents_snapshot_restore_continue_is_bit_identical() {
        let n = 20;
        let mut sim = Simulation::new(TokenRank { n }, vec![0; n], 42);
        sim.run(5_000);
        let doc = doc_round_trip(&snapshot_agents(&sim));
        let mut restored = restore_agents(TokenRank { n }, &doc).expect("restore");
        sim.run(5_000);
        restored.run(5_000);
        assert_eq!(sim.states(), restored.states());
        assert_eq!(sim.interactions(), restored.interactions());
        assert_eq!(sim.rng_state(), restored.rng_state());
    }

    #[test]
    fn counts_snapshot_restore_continue_is_bit_identical() {
        let n = 20;
        let mut sim = BatchSimulation::new(TokenRank { n }, vec![0; n], 42);
        sim.run(5_000);
        let doc = doc_round_trip(&snapshot_counts(&sim));
        let mut restored = restore_counts(TokenRank { n }, &doc).expect("restore");
        sim.run(5_000);
        restored.run(5_000);
        assert_eq!(sim.counts().to_states(), restored.counts().to_states());
        assert_eq!(sim.interactions(), restored.interactions());
        assert_eq!(sim.rng_state(), restored.rng_state());
    }

    #[test]
    fn counts_snapshot_preserves_tombstones_and_entry_order() {
        let n = 12;
        let mut sim = BatchSimulation::new(TokenRank { n }, vec![0; n], 7);
        // Long enough that some token counts have dropped to zero.
        sim.run(2_000);
        let doc = snapshot_counts(&sim);
        let restored = restore_counts(TokenRank { n }, &doc).expect("restore");
        assert_eq!(restored.counts().raw_len(), sim.counts().raw_len());
        for idx in 0..sim.counts().raw_len() {
            assert_eq!(restored.counts().state_at(idx), sim.counts().state_at(idx));
            assert_eq!(restored.counts().count_at(idx), sim.counts().count_at(idx));
        }
    }

    #[test]
    fn truncated_snapshot_is_a_clean_error() {
        let n = 8;
        let mut sim = Simulation::new(TokenRank { n }, vec![0; n], 3);
        sim.run(500);
        let text = snapshot_agents(&sim).to_jsonl();
        // Drop the footer.
        let without_footer: String =
            text.lines().take(text.lines().count() - 1).map(|l| format!("{l}\n")).collect();
        assert_eq!(SnapshotDoc::from_jsonl(&without_footer), Err(SnapshotError::Truncated));
        // Drop a run line too: the footer count no longer matches.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        let missing_run = lines.join("\n");
        assert!(matches!(
            SnapshotDoc::from_jsonl(&missing_run),
            Err(SnapshotError::Corrupt { .. })
        ));
        assert_eq!(SnapshotDoc::from_jsonl(""), Err(SnapshotError::Truncated));
    }

    #[test]
    fn corrupted_snapshots_are_clean_errors() {
        let n = 8;
        let mut sim = Simulation::new(TokenRank { n }, vec![0; n], 3);
        sim.run(500);
        let doc = snapshot_agents(&sim);
        let text = doc.to_jsonl();

        // Unparseable JSON.
        let garbled = text.replacen('{', "[", 1);
        assert!(matches!(SnapshotDoc::from_jsonl(&garbled), Err(SnapshotError::Corrupt { .. })));

        // Future version.
        let future = text.replacen("\"v\":1", "\"v\":99", 1);
        assert_eq!(SnapshotDoc::from_jsonl(&future), Err(SnapshotError::Version(99)));

        // Bad RNG hex.
        let mut bad_rng = doc.clone();
        bad_rng.rng = [0; 4];
        assert!(matches!(
            SnapshotDoc::from_jsonl(&bad_rng.to_jsonl()),
            Err(SnapshotError::Corrupt { .. })
        ));

        // Out-of-range state is rejected at restore.
        let mut bad_state = doc.clone();
        bad_state.runs[0].0 = "999".to_string();
        let reparsed = doc_round_trip(&bad_state);
        assert!(matches!(
            restore_agents(TokenRank { n }, &reparsed),
            Err(SnapshotError::Mismatch(_))
        ));

        // Wrong protocol tag / backend / size are mismatches.
        let mut wrong = doc.clone();
        wrong.protocol = "galaxy".to_string();
        assert!(matches!(restore_agents(TokenRank { n }, &wrong), Err(SnapshotError::Mismatch(_))));
        let mut wrong = doc.clone();
        wrong.backend = "counts".to_string();
        assert!(matches!(restore_agents(TokenRank { n }, &wrong), Err(SnapshotError::Mismatch(_))));
        assert!(matches!(
            restore_agents(TokenRank { n: n + 1 }, &doc),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn rng_hex_round_trips_extreme_words() {
        let mut rng = crate::runner::rng_from_seed(9);
        let _: u64 = rng.gen();
        let doc = SnapshotDoc {
            protocol: "token".to_string(),
            backend: "agents".to_string(),
            param: 2,
            live: 2,
            interactions: (1 << 53) - 1,
            seq: 7,
            rng: [u64::MAX, 1, 0, rng.state()[0]],
            runs: vec![("0".to_string(), 2)],
        };
        assert_eq!(doc_round_trip(&doc).rng, doc.rng);
    }
}
